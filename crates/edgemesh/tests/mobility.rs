//! Client mobility across ingress shards: mid-session handovers force the
//! departing controller to tear its flows down while the new ingress
//! re-learns them on the next PacketIn. These tests hold the two mesh
//! engines in lockstep under mobility, pin thread-invariance of the mesh
//! hash, and prove the session-continuity analysis end to end — including a
//! seeded-fault mutation run that must be *caught*, so a regression that
//! silently disables the analysis fails loudly.

use edgemesh::MeshSim;
use edgeverify::Violation;
use simcore::SimRng;
use testbed::{MeshParams, ScenarioConfig};
use workload::{ingress_at, Trace, TraceConfig, WorkloadConfig};

/// Generate a mobility workload the same way `testbed::generate_workload`
/// does (same seed derivation), so scenario-file runs replay these traces.
fn mobile_trace(seed: u64, model: &str, handovers_per_client: f64) -> Trace {
    let wl = WorkloadConfig {
        model: model.into(),
        handovers_per_client,
        mix: TraceConfig::default(),
        ..WorkloadConfig::default()
    };
    wl.generate(&mut SimRng::seed_from_u64(seed ^ 0xB16F_1085))
        .expect("builtin model")
}

fn mesh_cfg(seed: u64, shards: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        mesh: MeshParams {
            shards,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    }
}

/// Reference vs windowed equivalence with mobile clients: every
/// workload-visible counter, including the handover count, must agree.
#[test]
fn handover_scenarios_run_in_lockstep() {
    for (seed, model) in [(11, "bigflows"), (12, "poisson")] {
        let trace = mobile_trace(seed, model, 2.0);
        assert!(
            !trace.handovers.is_empty(),
            "{model}: no mobility generated"
        );
        let cfg = mesh_cfg(seed, 2);
        let r = MeshSim::build(cfg.clone(), trace.service_addrs.clone()).run_trace(&trace);
        let p = edgemesh::run_windowed(cfg, &trace, 1);
        let pair = |a: u64, b: u64, what: &str| {
            assert_eq!(a, b, "{model}: reference {what} {a} != parallel {what} {b}");
        };
        pair(r.completed, p.completed, "completed");
        pair(r.lost, p.lost, "lost");
        pair(r.handovers, p.handovers, "handovers");
        pair(r.deployments, p.deployments, "deployments");
        pair(r.retargets, p.retargets, "retargets");
        pair(r.scale_downs, p.scale_downs, "scale_downs");
        assert!(r.handovers > 0, "{model}: no handover was processed");
        assert_eq!(
            r.completed + r.lost,
            trace.requests.len() as u64,
            "{model}: requests leaked"
        );
    }
}

/// The mesh trace hash must not depend on the worker-thread count, mobility
/// included: handover teardown happens inside a shard's own event stream, so
/// the windowed merge order is unchanged.
#[test]
fn mesh_hash_is_thread_invariant_under_mobility() {
    let trace = mobile_trace(21, "mmpp", 3.0);
    let a = edgemesh::run_windowed(mesh_cfg(21, 4), &trace, 1);
    let b = edgemesh::run_windowed(mesh_cfg(21, 4), &trace, 2);
    let c = edgemesh::run_windowed(mesh_cfg(21, 4), &trace, 4);
    assert!(a.handovers > 0);
    assert_eq!(a.mesh_hash(), b.mesh_hash(), "1 vs 2 threads");
    assert_eq!(a.mesh_hash(), c.mesh_hash(), "1 vs 4 threads");
}

/// The mobility acceptance bar: every session in a handover-heavy run either
/// completes exactly once or is explicitly accounted lost — the audited run
/// (which includes the continuity analysis) reports zero violations.
#[test]
fn mobile_sessions_complete_exactly_once() {
    let trace = mobile_trace(31, "bigflows", 2.0);
    let (result, violations) = edgemesh::run_windowed_audited(mesh_cfg(31, 2), &trace, 2);
    assert!(result.handovers > 0, "no handovers exercised");
    assert!(
        violations.is_empty(),
        "continuity/coherence violations: {violations:?}"
    );
    assert_eq!(
        result.completed + result.lost,
        trace.requests.len() as u64,
        "a session fell through the handover gap"
    );
    let view = edgemesh::continuity_view(&trace, &result).expect("multi-shard run");
    assert_eq!(view.completions.len(), trace.requests.len());
}

/// Mutation test: seed a fault that swallows one mobile client's
/// post-handover requests (served nowhere, accounted nowhere) and assert the
/// continuity analysis flags exactly that client's sessions as blackholed.
/// This is the proof the `mobile_sessions_complete_exactly_once` green run
/// is meaningful — the analysis can actually fail.
#[test]
fn blackholed_handover_is_flagged() {
    let trace = mobile_trace(31, "bigflows", 2.0);
    let shards = 2;
    // Pick a client that issues at least one request from its post-handover
    // ingress — the requests the seeded fault will swallow.
    let victim = (0..trace.config.clients)
        .find(|&c| {
            trace.requests.iter().any(|r| {
                r.client == c && ingress_at(&trace.handovers, c, r.at, shards) != c % shards
            })
        })
        .expect("some client must issue post-handover requests");
    let (result, violations) =
        edgemesh::par::run_windowed_blackholed(mesh_cfg(31, shards), &trace, 2, victim);
    let blackholed: Vec<_> = violations
        .iter()
        .filter_map(|v| match v {
            Violation::BlackholedSession { tag, client } => Some((*tag, *client)),
            _ => None,
        })
        .collect();
    assert!(
        !blackholed.is_empty(),
        "seeded blackhole was not flagged — the continuity analysis is dead"
    );
    assert!(
        blackholed.iter().all(|&(_, c)| c as usize == victim),
        "only the victim's sessions may be blackholed: {blackholed:?}"
    );
    assert!(
        (result.completed + result.lost) < trace.requests.len() as u64,
        "the seeded fault swallowed nothing"
    );
}

/// The flash-crowd acceptance bar: thousands of arrivals slam one cold
/// service across >= 2 ingress shards inside the spike window. With leases
/// on, the lease gate must convert every would-be concurrent deployment into
/// an avoided duplicate — zero split-brain, `avoided > 0`.
#[test]
fn flash_crowd_contention_is_resolved_by_leases() {
    let trace = mobile_trace(41, "flash-crowd", 0.0);
    let cfg = mesh_cfg(41, 4);
    let result = edgemesh::run_windowed(cfg, &trace, 2);
    assert_eq!(
        result.duplicate_deployments, 0,
        "split-brain deployments under flash crowd"
    );
    assert!(
        result.duplicate_deployments_avoided > 0,
        "flash crowd produced no lease contention — the spike is not \
         concentrated enough to exercise the protocol"
    );
    assert_eq!(result.completed + result.lost, trace.requests.len() as u64);
}
