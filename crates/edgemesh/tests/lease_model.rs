//! Model-based lockstep test of the lease table: random interleavings of
//! acquire/release across four shards, checked against a trivially-correct
//! `BTreeMap` reference model at every step.

use std::collections::BTreeMap;

use edgectl::{ClusterId, DeployGate, ServiceId};
use edgemesh::LeaseTable;
use proptest::prelude::*;
use simcore::SimTime;

const SHARDS: usize = 4;

/// Decode one op from a raw `u32`:
/// bit 0 = acquire (1) / release (0), bits 1..3 = shard,
/// bits 3..5 = cluster, bits 5..7 = service.
fn decode(op: u32) -> (bool, usize, ClusterId, ServiceId) {
    let acquire = op & 1 == 1;
    let shard = ((op >> 1) & 0b11) as usize;
    let cluster = ClusterId(((op >> 3) & 0b11) as usize % 3);
    let service = ServiceId(((op >> 5) & 0b11) % 3);
    (acquire, shard, cluster, service)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lease_table_matches_reference_model(ops in prop::collection::vec(any::<u32>(), 1..200)) {
        let table = LeaseTable::new();
        let mut handles: Vec<_> = (0..SHARDS).map(|s| table.handle(s)).collect();
        // The reference model: holder per (cluster, service), first
        // acquirer wins, only the holder can release.
        let mut model: BTreeMap<(ClusterId, ServiceId), usize> = BTreeMap::new();

        for op in ops {
            let (acquire, shard, cluster, service) = decode(op);
            let now = SimTime::ZERO;
            if acquire {
                let got = handles[shard].try_acquire(now, cluster, service);
                let expect = match model.get(&(cluster, service)) {
                    Some(&holder) => holder == shard,
                    None => {
                        model.insert((cluster, service), shard);
                        true
                    }
                };
                prop_assert_eq!(got, expect, "acquire by shard {} diverged", shard);
            } else {
                handles[shard].release(now, cluster, service);
                if model.get(&(cluster, service)) == Some(&shard) {
                    model.remove(&(cluster, service));
                }
            }
            prop_assert_eq!(table.held(), model.len());
            for (&(c, s), &holder) in &model {
                prop_assert_eq!(table.holder(c, s), Some(holder));
            }
        }
    }
}
