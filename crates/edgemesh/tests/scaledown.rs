//! Idle scale-down and Remove-phase churn through the federated mesh: with
//! `scale_down_idle` on and a short idle window, a sharded run of the
//! bigFlows workload must actually scale services to zero and remove them
//! (gossiping `Gone` deltas), and stay deterministic while doing so.
//! `BENCH_mesh.json`'s churn rows pin the same behaviour in CI.

use edgemesh::run_mesh_bigflows;
use simcore::SimDuration;
use testbed::{MeshParams, ScenarioConfig};

/// The mesh bench's churn configuration: the standard seed-42 bigFlows
/// replay with a 30 s flow-memory idle timeout and a 60 s Remove deadline —
/// short enough that sparsely-requested services churn inside the
/// five-minute trace window.
fn churn_cfg(shards: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed: 42,
        mesh: MeshParams {
            shards,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = SimDuration::from_secs(30);
    cfg.controller.remove_after = Some(SimDuration::from_secs(60));
    cfg
}

#[test]
fn sharded_mesh_scales_down_and_removes_idle_services() {
    for shards in [2, 4] {
        let (_, result) = run_mesh_bigflows(churn_cfg(shards));
        assert!(
            result.scale_downs > 0,
            "no idle scale-downs at {shards} shards: {result:?}"
        );
        assert!(
            result.removes > 0,
            "no Remove-phase deletions at {shards} shards (scale_downs={})",
            result.scale_downs
        );
        assert_eq!(
            result.duplicate_deployments, 0,
            "churn caused split-brain at {shards} shards"
        );
    }
}

#[test]
fn churn_run_is_deterministic() {
    let (_, a) = run_mesh_bigflows(churn_cfg(2));
    let (_, b) = run_mesh_bigflows(churn_cfg(2));
    assert!(a.scale_downs > 0 && a.removes > 0, "{a:?}");
    assert_eq!(a.mesh_hash(), b.mesh_hash(), "churn replay diverged");
    assert_eq!(a.mesh_trace(), b.mesh_trace());
}
