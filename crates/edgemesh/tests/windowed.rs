//! Cross-thread determinism of the windowed parallel engine: the worker
//! thread count picks the execution schedule, never the result. These tests
//! replay the two shipped federation scenarios —
//! `examples/scenarios/mesh_lossy_wan.yaml` (lossy metro WAN) and
//! `examples/scenarios/mesh_scaledown.yaml` (instance churn) — at
//! threads ∈ {1, 2, 8} and assert byte-identical mesh traces, then prove
//! the check is *live* with a mutation test: perturbing the window-boundary
//! merge tie-break must change the hash.

use edgemesh::{run_mesh_bigflows, validate_threads, ThreadsExceedShards};
use simcore::{SimDuration, SimTime};
use simnet::{IpAddr, SocketAddr};
use testbed::{MeshParams, ScenarioConfig};
use workload::{Trace, TraceConfig, TraceRequest};

/// `examples/scenarios/mesh_lossy_wan.yaml`, parameterized over shard and
/// thread count: 5 ms one-way gossip latency, 10% delta loss, leases on.
fn lossy_wan_cfg(shards: usize, threads: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed: 3,
        mesh: MeshParams {
            shards,
            threads,
            link_latency: SimDuration::from_micros(5000),
            loss: 0.1,
            gossip_interval: SimDuration::from_millis(50),
            leases: true,
        },
        ..ScenarioConfig::default()
    }
}

/// `examples/scenarios/mesh_scaledown.yaml`: two shards under idle
/// scale-down and Remove-phase churn (30 s idle timeout, 60 s deadline).
fn scaledown_cfg(threads: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed: 42,
        mesh: MeshParams {
            shards: 2,
            threads,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = SimDuration::from_secs(30);
    cfg.controller.remove_after = Some(SimDuration::from_secs(60));
    cfg
}

/// The tentpole determinism contract: for a fixed shard count the mesh
/// trace is byte-identical for every worker-thread count. The engine clamps
/// `threads` to the shard count, so `threads = 8` at two shards also
/// exercises the clamp (user-facing entry points reject it instead — see
/// [`threads_above_shards_is_a_typed_error`]).
#[test]
fn lossy_wan_trace_is_thread_invariant_across_shard_counts() {
    for shards in [2, 4, 8] {
        let (_, base) = run_mesh_bigflows(lossy_wan_cfg(shards, 1));
        assert!(
            base.deltas_lost >= 1,
            "a 10% lossy WAN must drop deliveries at {shards} shards"
        );
        for threads in [2, 8] {
            let (_, run) = run_mesh_bigflows(lossy_wan_cfg(shards, threads));
            assert_eq!(
                base.mesh_trace(),
                run.mesh_trace(),
                "trace diverged at {shards} shards, {threads} threads"
            );
            assert_eq!(
                base.mesh_hash(),
                run.mesh_hash(),
                "hash diverged at {shards} shards, {threads} threads"
            );
        }
    }
}

#[test]
fn scaledown_churn_trace_is_thread_invariant() {
    let (_, base) = run_mesh_bigflows(scaledown_cfg(1));
    assert!(
        base.scale_downs > 0 && base.removes > 0,
        "churn lifecycle must fire: {base:?}"
    );
    for threads in [2, 8] {
        let (_, run) = run_mesh_bigflows(scaledown_cfg(threads));
        assert_eq!(
            base.mesh_trace(),
            run.mesh_trace(),
            "churn trace diverged at {threads} threads"
        );
        assert_eq!(base.mesh_hash(), run.mesh_hash());
    }
}

/// Mutation test: the thread-invariance above is only evidence if the hash
/// actually reacts to merge-order changes. Under engineered contention —
/// every client asking for the same cold service at the same instant — the
/// shards' lease acquires tie on time, so the `(origin, seq)` tie-break
/// alone decides which shard wins the deployment. Reversing it must change
/// the winner and with it the trace; if it doesn't, the determinism
/// regression above is checking nothing.
#[test]
fn perturbed_merge_tie_break_changes_the_hash() {
    let config = TraceConfig {
        services: 1,
        total_requests: 8,
        clients: 8,
        min_per_service: 1,
        ..TraceConfig::default()
    };
    let trace = Trace {
        requests: (0..8)
            .map(|client| TraceRequest {
                at: SimTime::ZERO,
                service: 0,
                client,
            })
            .collect(),
        service_addrs: vec![SocketAddr::new(IpAddr::new(93, 184, 1, 1), 80)],
        config,
        handovers: Vec::new(),
    };
    let cfg = ScenarioConfig {
        seed: 7,
        clients: 8,
        mesh: MeshParams {
            shards: 4,
            link_latency: SimDuration::from_millis(100),
            gossip_interval: SimDuration::from_millis(20),
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    let canonical = edgemesh::run_windowed(cfg.clone(), &trace, 1);
    let perturbed = edgemesh::par::run_windowed_perturbed(cfg, &trace, 1);
    assert_ne!(
        canonical.mesh_hash(),
        perturbed.mesh_hash(),
        "reversed merge tie-break left the mesh trace untouched — the \
         determinism regression test would pass vacuously"
    );
}

/// The user-facing contract for the `threads` knob: `0` normalizes to 1,
/// in-range values pass through, and anything above the shard count is a
/// typed error naming both numbers.
#[test]
fn threads_above_shards_is_a_typed_error() {
    assert_eq!(validate_threads(0, 4).unwrap(), 1);
    assert_eq!(validate_threads(4, 4).unwrap(), 4);
    let err = validate_threads(8, 4).unwrap_err();
    assert_eq!(
        err,
        ThreadsExceedShards {
            threads: 8,
            shards: 4
        }
    );
    let msg = err.to_string();
    assert!(msg.contains('8') && msg.contains('4'), "{msg}");
}
