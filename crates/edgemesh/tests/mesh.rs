//! End-to-end mesh federation tests: the lease protocol under engineered
//! contention, split-brain without it, determinism under loss, and the
//! `shards = 1` byte-identity guarantee.

use edgemesh::{run_mesh_bigflows, run_mesh_scenario, MeshSim};
use simcore::{SimDuration, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};
use testbed::{MeshParams, ScenarioConfig};
use workload::{Trace, TraceConfig, TraceRequest};

/// The worst case the lease protocol exists for: every client asks for the
/// same cold service at the same instant, so every shard sees a PacketIn for
/// an undeployed service and wants to deploy it at the same BEST cluster.
fn contention_trace() -> Trace {
    let config = TraceConfig {
        services: 1,
        total_requests: 8,
        clients: 8,
        min_per_service: 1,
        ..TraceConfig::default()
    };
    Trace {
        requests: (0..8)
            .map(|client| TraceRequest {
                at: SimTime::ZERO,
                service: 0,
                client,
            })
            .collect(),
        service_addrs: vec![SocketAddr::new(IpAddr::new(93, 184, 1, 1), 80)],
        config,
        handovers: Vec::new(),
    }
}

fn contention_cfg(shards: usize, leases: bool, loss: f64) -> ScenarioConfig {
    ScenarioConfig {
        seed: 7,
        clients: 8,
        mesh: MeshParams {
            shards,
            leases,
            loss,
            link_latency: SimDuration::from_millis(100),
            gossip_interval: SimDuration::from_millis(20),
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    }
}

#[test]
fn leases_prevent_duplicate_deployments() {
    for shards in [2, 4, 8] {
        let trace = contention_trace();
        let result = run_mesh_scenario(contention_cfg(shards, true, 0.0), &trace);
        assert_eq!(
            result.duplicate_deployments, 0,
            "split-brain with leases on at {shards} shards"
        );
        assert!(
            result.duplicate_deployments_avoided >= 1,
            "contention never reached the lease gate at {shards} shards"
        );
        assert_eq!(
            result.deployments, 1,
            "exactly one shard deploys the service at {shards} shards"
        );
        assert_eq!(
            result.completed, 8,
            "all requests served at {shards} shards"
        );
        assert_eq!(result.lost, 0);
        assert!(
            result.retargets >= 1,
            "losers must retarget to the edge once the holder's Ready delta lands \
             ({shards} shards)"
        );
        // Every delta delivery crossed the mesh link at least once.
        assert!(result.mean_staleness_ms() >= 100.0);
    }
}

#[test]
fn without_leases_the_same_contention_splits_brains() {
    let trace = contention_trace();
    let result = run_mesh_scenario(contention_cfg(4, false, 0.0), &trace);
    assert!(
        result.duplicate_deployments >= 1,
        "4 shards racing a cold service without leases must duplicate the deployment"
    );
    assert_eq!(result.duplicate_deployments_avoided, 0);
}

#[test]
fn audited_contention_without_leases_reports_split_brain() {
    let trace = contention_trace();
    let cfg = contention_cfg(4, false, 0.0);
    let (result, violations) =
        MeshSim::build(cfg, trace.service_addrs.clone()).run_trace_audited(&trace);
    assert!(result.duplicate_deployments >= 1);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, edgeverify::Violation::SplitBrainDeployment { .. })),
        "audit must surface the observed split-brain: {violations:?}"
    );
}

#[test]
fn audited_contention_with_leases_is_clean_of_split_brain() {
    let trace = contention_trace();
    let cfg = contention_cfg(4, true, 0.0);
    let (result, violations) =
        MeshSim::build(cfg, trace.service_addrs.clone()).run_trace_audited(&trace);
    assert_eq!(result.duplicate_deployments, 0);
    assert!(
        !violations
            .iter()
            .any(|v| matches!(v, edgeverify::Violation::SplitBrainDeployment { .. })),
        "lease-protected run must not split-brain: {violations:?}"
    );
}

#[test]
fn lossy_mesh_replays_byte_identically() {
    let run = || {
        let trace = contention_trace();
        run_mesh_scenario(contention_cfg(4, true, 0.3), &trace)
    };
    let a = run();
    let b = run();
    assert!(
        a.deltas_lost >= 1,
        "loss 0.3 should drop at least one delivery"
    );
    assert_eq!(a.mesh_trace(), b.mesh_trace());
    assert_eq!(a.mesh_hash(), b.mesh_hash());
}

#[test]
fn one_shard_mesh_is_the_plain_testbed_byte_for_byte() {
    let cfg = ScenarioConfig {
        seed: 42,
        ..ScenarioConfig::default()
    };
    let (_, single) = testbed::run_bigflows(cfg.clone());
    let (_, mesh) = run_mesh_bigflows(cfg);
    assert_eq!(mesh.shards, 1);
    assert_eq!(mesh.mesh_trace(), single.metrics_trace());
    assert_eq!(mesh.mesh_hash(), single.metrics_hash());
}

#[test]
fn sharded_bigflows_accounts_for_every_request() {
    let cfg = ScenarioConfig {
        seed: 42,
        mesh: MeshParams {
            shards: 2,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    let (trace, result) = run_mesh_bigflows(cfg);
    assert_eq!(
        result.completed + result.lost,
        trace.requests.len() as u64,
        "every request either completes or is accounted lost"
    );
    assert_eq!(result.duplicate_deployments, 0);
    assert_eq!(result.shard_stats.len(), 2);
    assert!(result.deltas_sent > 0, "a real run gossips");
}

#[test]
fn lease_contention_converges_deterministically_across_shard_counts() {
    // Same seed, increasing shard count: the single deployment invariant
    // holds throughout, and each count replays itself.
    for shards in [2, 4, 8] {
        let trace = contention_trace();
        let a = run_mesh_scenario(contention_cfg(shards, true, 0.1), &trace);
        let trace = contention_trace();
        let b = run_mesh_scenario(contention_cfg(shards, true, 0.1), &trace);
        assert_eq!(a.mesh_hash(), b.mesh_hash(), "{shards} shards must replay");
        assert_eq!(a.deployments, 1);
    }
}

#[test]
fn trace_rng_is_isolated_from_mesh_gossip_rng() {
    // The gossip stream must not perturb trace generation: mesh and
    // single-controller runs of the same cfg see the same trace.
    let cfg_single = ScenarioConfig {
        seed: 9,
        ..ScenarioConfig::default()
    };
    let mut cfg_mesh = cfg_single.clone();
    cfg_mesh.mesh.shards = 2;
    let (trace_single, _) = testbed::run_bigflows(cfg_single);
    let (trace_mesh, _) = run_mesh_bigflows(cfg_mesh);
    assert_eq!(trace_single.requests, trace_mesh.requests);
    assert_eq!(trace_single.service_addrs, trace_mesh.service_addrs);
    // And the derivation matches the documented seed split.
    let mut rng = SimRng::seed_from_u64(9 ^ 0xB16F_1085);
    let expect = Trace::generate(
        TraceConfig {
            clients: 20,
            ..TraceConfig::default()
        },
        &mut rng,
    );
    assert_eq!(expect.requests, trace_mesh.requests);
}
