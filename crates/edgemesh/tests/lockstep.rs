//! Model-based lockstep equivalence: the interleaved reference engine
//! ([`edgemesh::MeshSim`]) is the executable specification the windowed
//! parallel engine ([`edgemesh::par`]) is held to. Both replay the same
//! scenarios — lossy WAN, engineered lease contention, instance churn —
//! and must agree on every workload-visible counter. The one accepted
//! divergence is *how* lease losers lose (DESIGN.md §5f): the reference
//! gate rejects synchronously inside the shared event loop, while the
//! windowed engine's optimistic losers acquire tentatively and are revoked
//! at the next barrier, so the rejected/revoked split and the extra `Gone`
//! deltas from aborted machines differ while the outcome (one deployment,
//! zero duplicates, every loser retargeted) does not.

use edgemesh::MeshSim;
use simcore::{SimDuration, SimRng, SimTime};
use simnet::{IpAddr, SocketAddr};
use testbed::{MeshParams, ScenarioConfig};
use workload::{Trace, TraceConfig, TraceRequest};

fn bigflows(seed: u64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xB16F_1085);
    Trace::generate(
        TraceConfig {
            clients: 20,
            ..TraceConfig::default()
        },
        &mut rng,
    )
}

fn contention_trace() -> Trace {
    let config = TraceConfig {
        services: 1,
        total_requests: 8,
        clients: 8,
        min_per_service: 1,
        ..TraceConfig::default()
    };
    Trace {
        requests: (0..8)
            .map(|client| TraceRequest {
                at: SimTime::ZERO,
                service: 0,
                client,
            })
            .collect(),
        service_addrs: vec![SocketAddr::new(IpAddr::new(93, 184, 1, 1), 80)],
        config,
        handovers: Vec::new(),
    }
}

/// Run both engines on the same input and assert the workload-visible
/// counters match exactly. Used for the scenarios where the engines are in
/// true lockstep (no lease contention, so the optimistic-vs-pessimistic
/// loser path never activates).
fn assert_lockstep(name: &str, cfg: ScenarioConfig, trace: &Trace) {
    let r = MeshSim::build(cfg.clone(), trace.service_addrs.clone()).run_trace(trace);
    let p = edgemesh::run_windowed(cfg, trace, 1);
    let pair = |a: u64, b: u64, what: &str| {
        assert_eq!(a, b, "{name}: reference {what} {a} != parallel {what} {b}");
    };
    pair(r.completed, p.completed, "completed");
    pair(r.lost, p.lost, "lost");
    pair(r.deployments, p.deployments, "deployments");
    pair(
        r.duplicate_deployments,
        p.duplicate_deployments,
        "duplicate_deployments",
    );
    pair(
        r.duplicate_deployments_avoided,
        p.duplicate_deployments_avoided,
        "duplicate_deployments_avoided",
    );
    pair(r.scale_downs, p.scale_downs, "scale_downs");
    pair(r.removes, p.removes, "removes");
    pair(r.retargets, p.retargets, "retargets");
    pair(r.deltas_sent, p.deltas_sent, "deltas_sent");
    pair(r.deltas_lost, p.deltas_lost, "deltas_lost");
    pair(r.delta_deliveries, p.delta_deliveries, "delta_deliveries");
    assert_eq!(
        r.completed + r.lost,
        trace.requests.len() as u64,
        "{name}: reference engine dropped requests"
    );
}

#[test]
fn lossy_wan_runs_in_lockstep() {
    let trace = bigflows(3);
    let cfg = ScenarioConfig {
        seed: 3,
        mesh: MeshParams {
            shards: 2,
            link_latency: SimDuration::from_micros(5000),
            loss: 0.1,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    assert_lockstep("lossy", cfg, &trace);
}

#[test]
fn churning_mesh_runs_in_lockstep() {
    let trace = bigflows(42);
    let mut cfg = ScenarioConfig {
        seed: 42,
        mesh: MeshParams {
            shards: 2,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = SimDuration::from_secs(30);
    cfg.controller.remove_after = Some(SimDuration::from_secs(60));
    assert_lockstep("churn", cfg, &trace);
}

/// Engineered contention is where the engines' lease mechanics differ by
/// design, so the equivalence is over the protocol *outcome*: exactly one
/// deployment, zero split-brain duplicates, all requests served, at least
/// one loser per engine retargeted to the winner's instance.
#[test]
fn contended_leases_reach_the_same_outcome() {
    let trace = contention_trace();
    let cfg = ScenarioConfig {
        seed: 7,
        clients: 8,
        mesh: MeshParams {
            shards: 4,
            link_latency: SimDuration::from_millis(100),
            gossip_interval: SimDuration::from_millis(20),
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    let r = MeshSim::build(cfg.clone(), trace.service_addrs.clone()).run_trace(&trace);
    let p = edgemesh::run_windowed(cfg.clone(), &trace, 1);
    for (engine, res) in [("reference", &r), ("parallel", &p)] {
        assert_eq!(res.deployments, 1, "{engine}: exactly one shard deploys");
        assert_eq!(res.duplicate_deployments, 0, "{engine}: split-brain");
        assert_eq!(res.completed, 8, "{engine}: all requests served");
        assert_eq!(res.lost, 0, "{engine}");
        assert!(
            res.duplicate_deployments_avoided >= 1,
            "{engine}: the lease protocol never fired"
        );
        assert!(res.retargets >= 1, "{engine}: losers never retargeted");
    }
    // And without leases, both engines must exhibit the same split-brain
    // failure mode the protocol exists to close.
    let mut cfg_off = cfg;
    cfg_off.mesh.leases = false;
    let r = MeshSim::build(cfg_off.clone(), trace.service_addrs.clone()).run_trace(&trace);
    let p = edgemesh::run_windowed(cfg_off, &trace, 1);
    assert!(r.duplicate_deployments >= 1, "reference: no split-brain");
    assert!(p.duplicate_deployments >= 1, "parallel: no split-brain");
}
