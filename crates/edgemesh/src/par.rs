//! The windowed parallel mesh engine: thread-per-shard conservative PDES.
//!
//! Each ingress shard owns its controller, its switch, its event queue
//! ([`simcore::ShardRunner`]) and a full set of *replica* site backends, all
//! living on one worker thread of a [`simcore::ShardCrew`]. Shards advance
//! freely to a common window end `T_min + lookahead` (`T_min` = earliest
//! pending activity across the mesh, lookahead = the inter-shard link
//! latency), then exchange everything cross-shard at a barrier:
//!
//! * **gossip deltas** drained during the window, delivered at
//!   `drain time + link_latency` (losses pre-rolled by the coordinator from
//!   the `"mesh-gossip"` stream, exactly like the reference engine);
//! * **lease operations**, resolved by the coordinator against the canonical
//!   lease table in merged order — the commit point of the coordination
//!   service. A shard that optimistically started a deployment and lost the
//!   merge receives a *revocation* and aborts the machine
//!   ([`edgectl::Controller::abort_deployment`]) at the next window start;
//! * **site backend mutations**, logged by a `LoggingBackend` wrapper and
//!   replayed onto every peer's replicas at the barrier instant.
//!
//! Everything cross-shard is merged in one canonical order — sorted by
//! `(time, origin shard, per-shard sequence)` — on the coordinator thread,
//! so the merge does not depend on which worker finished first. A shard's
//! window is a sequential computation over its own state plus its barrier
//! inbox, so the whole run is a pure function of `(config, seed)`: the
//! thread count only chooses which worker executes a shard and the mesh
//! trace hash is byte-identical for any `threads`, including 1 (which runs
//! the same windowed algorithm on a single worker).
//!
//! ## Divergence envelope
//!
//! Replicas are *eventually* identical, not continuously: shard `A`'s own
//! backend ops apply at their true instants while peers replay them at the
//! next barrier, and a revoked (optimistic loser) machine's already-logged
//! ops are not compensated. Both model the real federation — a controller
//! acts on its own view immediately and peers converge at gossip latency —
//! and both are deterministic, so they live inside the accepted divergence
//! envelope documented in DESIGN.md §5f alongside the reference engine's
//! shared-backend idealization.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use cluster::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, DockerCluster, K8sCluster, K8sTimings,
    ScaleReceipt, ServiceStatus, ServiceTemplate,
};
use containers::{ImageRef, Runtime};
use edgectl::{
    ClusterId, Controller, ControllerOutput, DeployGate, RoundRobinLocal, SchedulerRegistry,
    ServiceId, StatusDelta,
};
use edgeverify::{MeshView, Verifier, Violation};
use registry::RegistrySet;
use simcore::{ShardActor, ShardCrew, ShardRunner, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PacketVerdict, PortId, Switch};
use simnet::{Packet, SocketAddr};
use testbed::topology::NodeClass;
use testbed::{C3Topology, PhaseSetup, ScenarioConfig, CLOUD_PORT};
use workload::{departures, ingress_at, ServiceProfile, Trace};

use crate::result::{MeshRecord, MeshRunResult, ShardSummary};
use crate::shared::{share, SharedHandle};

/// Latency of each shard's SDN control channel (same figure as the
/// reference engine and the single-controller testbed).
const CTRL_LATENCY: SimDuration = SimDuration::from_micros(150);

/// Retransmission cap per delta delivery (see `reference::MAX_RETRANSMITS`).
const MAX_RETRANSMITS: u32 = 64;

/// `--threads` asked for more workers than there are shards. Extra workers
/// could only idle, so the CLI and bench reject the request outright rather
/// than silently clamping a user-visible knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadsExceedShards {
    pub threads: usize,
    pub shards: usize,
}

impl fmt::Display for ThreadsExceedShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threads ({}) exceeds mesh shards ({}): each worker thread owns whole \
             shards, so at most `shards` threads can do work",
            self.threads, self.shards
        )
    }
}

impl std::error::Error for ThreadsExceedShards {}

/// Validate a user-supplied thread count against a shard count: `0` means
/// "default" and maps to 1; anything above `shards` is a typed error.
pub fn validate_threads(threads: usize, shards: usize) -> Result<usize, ThreadsExceedShards> {
    let threads = threads.max(1);
    if threads > shards.max(1) {
        return Err(ThreadsExceedShards { threads, shards });
    }
    Ok(threads)
}

// ---------------------------------------------------------------------------
// Cross-shard messages. Everything here is plain `Send` data: the only values
// that ever cross a thread boundary.
// ---------------------------------------------------------------------------

/// A mutating call performed on one site's backend, by argument value so a
/// peer can replay it on its own replica.
#[derive(Debug, Clone)]
enum SiteCall {
    Pull { template: String },
    Create { template: String },
    ScaleUp { service: String, replicas: u32 },
    ScaleDown { service: String, replicas: u32 },
    Remove { service: String },
    DeleteImage { image: String },
    InjectCrash { service: String },
}

#[derive(Debug, Clone)]
struct SiteOp {
    time: SimTime,
    origin: usize,
    seq: u64,
    site: usize,
    call: SiteCall,
}

#[derive(Debug, Clone, Copy)]
enum LeaseCall {
    Acquire,
    Release,
}

#[derive(Debug, Clone, Copy)]
struct LeaseOp {
    time: SimTime,
    origin: usize,
    seq: u64,
    cluster: ClusterId,
    service: ServiceId,
    call: LeaseCall,
}

#[derive(Debug, Clone, Copy)]
struct DeltaOut {
    time: SimTime,
    origin: usize,
    seq: u64,
    delta: StatusDelta,
}

/// What the coordinator hands a shard at a barrier, to apply at the window
/// start (revocations, foreign ops, canonical lease holders) or inject as
/// future events (delta deliveries).
#[derive(Debug, Default)]
struct Inbox {
    deliveries: Vec<(SimTime, StatusDelta)>,
    foreign_ops: Vec<SiteOp>,
    lease_holders: Vec<(ClusterId, ServiceId, usize)>,
    revocations: Vec<(ClusterId, ServiceId)>,
}

impl Inbox {
    fn needs_barrier_work(&self) -> bool {
        !self.foreign_ops.is_empty() || !self.revocations.is_empty()
    }
}

struct WindowCmd {
    /// Exclusive end of the window. `end == horizon` is the initial probe.
    end: SimTime,
    inbox: Inbox,
}

struct WindowReport {
    next_time: Option<SimTime>,
    lease_ops: Vec<LeaseOp>,
    site_ops: Vec<SiteOp>,
    deltas: Vec<DeltaOut>,
    /// `(service, cluster)` pairs with a deployment machine in flight at the
    /// window end, for the split-brain scan.
    in_flight: Vec<(ServiceId, ClusterId)>,
}

struct ShardFinal {
    summary: ShardSummary,
    records: Vec<MeshRecord>,
    lost: u64,
    /// Tags this shard accounted as lost (continuity loss ledger).
    lost_tags: Vec<u64>,
    /// Client handovers this shard's controller processed.
    handovers: u64,
    in_flight: Vec<(u32, usize)>,
    redirects: Vec<(u32, usize)>,
    /// `(service index, site)` pairs ready on this shard's replicas. The
    /// audit uses shard 0's set (replicas converge at barriers).
    ready: Vec<(u32, usize)>,
    stalls: u64,
    events: u64,
}

// ---------------------------------------------------------------------------
// Shard-local lease view.
// ---------------------------------------------------------------------------

/// Shard-local view of the lease table: the canonical holders as of the last
/// barrier plus a tentative overlay of this window's own operations. The
/// *canonical* state only ever changes at a barrier, when the coordinator
/// replays every shard's logged operations in merged order — that replay is
/// the linearization point of each acquire/release.
#[derive(Debug, Default)]
struct GateState {
    canonical: BTreeMap<(ClusterId, ServiceId), usize>,
    /// `true`: tentatively acquired this window; `false`: released.
    tentative: BTreeMap<(ClusterId, ServiceId), bool>,
}

/// The [`DeployGate`] a windowed controller plugs in: optimistic acquire
/// against the last canonical snapshot, logged for the coordinator to commit
/// (or revoke) at the barrier.
struct WindowGate {
    shard: usize,
    state: Rc<RefCell<GateState>>,
    outbox: Rc<RefCell<Outbox>>,
}

impl WindowGate {
    fn log(&self, now: SimTime, cluster: ClusterId, service: ServiceId, call: LeaseCall) {
        let mut ob = self.outbox.borrow_mut();
        let seq = ob.next_seq();
        ob.lease_ops.push(LeaseOp {
            time: now,
            origin: self.shard,
            seq,
            cluster,
            service,
            call,
        });
    }
}

impl DeployGate for WindowGate {
    fn try_acquire(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId) -> bool {
        let key = (cluster, service);
        let held = {
            let st = self.state.borrow();
            st.tentative
                .get(&key)
                .copied()
                .or_else(|| st.canonical.get(&key).map(|&h| h == self.shard))
        };
        match held {
            // Tentatively ours (or canonically ours with no overlay):
            // idempotent re-acquire, logged so the canonical replay sees it.
            Some(true) => {
                self.log(now, cluster, service, LeaseCall::Acquire);
                true
            }
            // Overlay says we released it this window — reacquire unless the
            // canonical holder is a peer.
            Some(false)
                if self
                    .state
                    .borrow()
                    .canonical
                    .get(&key)
                    .is_some_and(|&h| h != self.shard) =>
            {
                false
            }
            Some(false) | None => {
                if self
                    .state
                    .borrow()
                    .canonical
                    .get(&key)
                    .is_some_and(|&h| h != self.shard)
                {
                    // A peer holds it as of the last barrier: reject, no log
                    // (a rejection changes nothing canonically).
                    return false;
                }
                self.state.borrow_mut().tentative.insert(key, true);
                self.log(now, cluster, service, LeaseCall::Acquire);
                true
            }
        }
    }

    fn release(&mut self, now: SimTime, cluster: ClusterId, service: ServiceId) {
        let key = (cluster, service);
        let ours = {
            let st = self.state.borrow();
            st.tentative
                .get(&key)
                .copied()
                .unwrap_or_else(|| st.canonical.get(&key).copied() == Some(self.shard))
        };
        if ours {
            self.state.borrow_mut().tentative.insert(key, false);
            self.log(now, cluster, service, LeaseCall::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Backend op logging.
// ---------------------------------------------------------------------------

/// Everything a shard produced this window, tagged by one per-shard lifetime
/// sequence counter so the coordinator's `(time, origin, seq)` sort is a
/// total order that respects intra-shard causality.
#[derive(Debug, Default)]
struct Outbox {
    seq: u64,
    lease_ops: Vec<LeaseOp>,
    site_ops: Vec<SiteOp>,
    deltas: Vec<DeltaOut>,
}

impl Outbox {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// One shard's view of its own replica of a site: delegates every call and
/// logs the successful mutations for barrier broadcast (reads don't gossip;
/// failed mutations have no side effect to replicate).
struct LoggingBackend {
    site: usize,
    origin: usize,
    name: String,
    kind: ClusterKind,
    inner: SharedHandle,
    outbox: Rc<RefCell<Outbox>>,
}

impl LoggingBackend {
    fn new(site: usize, origin: usize, inner: SharedHandle, outbox: Rc<RefCell<Outbox>>) -> Self {
        let (name, kind) = {
            let b = inner.borrow();
            (b.cluster_name().to_string(), b.kind())
        };
        LoggingBackend {
            site,
            origin,
            name,
            kind,
            inner,
            outbox,
        }
    }

    fn log(&self, time: SimTime, call: SiteCall) {
        let mut ob = self.outbox.borrow_mut();
        let seq = ob.next_seq();
        ob.site_ops.push(SiteOp {
            time,
            origin: self.origin,
            seq,
            site: self.site,
            call,
        });
    }
}

impl ClusterBackend for LoggingBackend {
    fn cluster_name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ClusterKind {
        self.kind
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        let r = self.inner.borrow_mut().pull(now, template, registries);
        if r.is_ok() {
            self.log(
                now,
                SiteCall::Pull {
                    template: template.name.clone(),
                },
            );
        }
        r
    }

    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        let r = self.inner.borrow_mut().create(now, template);
        if r.is_ok() {
            self.log(
                now,
                SiteCall::Create {
                    template: template.name.clone(),
                },
            );
        }
        r
    }

    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        let r = self.inner.borrow_mut().scale_up(now, service, replicas);
        if r.is_ok() {
            self.log(
                now,
                SiteCall::ScaleUp {
                    service: service.to_string(),
                    replicas,
                },
            );
        }
        r
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        let r = self.inner.borrow_mut().scale_down(now, service, replicas);
        if r.is_ok() {
            self.log(
                now,
                SiteCall::ScaleDown {
                    service: service.to_string(),
                    replicas,
                },
            );
        }
        r
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        let r = self.inner.borrow_mut().remove(now, service);
        if r.is_ok() {
            self.log(
                now,
                SiteCall::Remove {
                    service: service.to_string(),
                },
            );
        }
        r
    }

    fn delete_image(&mut self, now: SimTime, image: &ImageRef) -> bool {
        let deleted = self.inner.borrow_mut().delete_image(now, image);
        if deleted {
            self.log(
                now,
                SiteCall::DeleteImage {
                    image: image.0.clone(),
                },
            );
        }
        deleted
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        self.inner.borrow().status(now, service)
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        self.inner.borrow().has_images(template)
    }

    fn replica_endpoints(&self, now: SimTime, service: &str) -> Vec<SocketAddr> {
        self.inner.borrow().replica_endpoints(now, service)
    }

    fn services(&self) -> Vec<String> {
        self.inner.borrow().services()
    }

    fn load(&self) -> f64 {
        self.inner.borrow().load()
    }

    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        let outcome = self.inner.borrow_mut().inject_crash(now, service);
        self.log(
            now,
            SiteCall::InjectCrash {
                service: service.to_string(),
            },
        );
        outcome
    }
}

// ---------------------------------------------------------------------------
// The shard actor.
// ---------------------------------------------------------------------------

/// Events of one windowed shard (same dispatch as the reference engine's
/// global `Ev`, minus the shard index — the queue itself is per shard).
enum Ev2 {
    Syn {
        tag: u64,
    },
    CtrlPacketIn {
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    },
    Apply {
        output: ControllerOutput,
    },
    Wakeup,
    Deliver {
        delta: StatusDelta,
    },
    /// `client` hands over away from this ingress: tear down its flows.
    Handover {
        client: usize,
    },
}

struct MeshShard {
    shard: usize,
    c3: C3Topology,
    /// This shard's replicas of every site, in site order.
    handles: Vec<SharedHandle>,
    templates: Vec<ServiceTemplate>,
    registries: RegistrySet,
    service_addrs: Vec<SocketAddr>,
    controller: Controller,
    switch: Switch,
    gate: Option<Rc<RefCell<GateState>>>,
    outbox: Rc<RefCell<Outbox>>,
    runner: ShardRunner<Ev2>,
    /// `tag -> (client, service)` for this shard's not-yet-released requests.
    in_flight: BTreeMap<u64, (usize, usize)>,
    records: Vec<MeshRecord>,
    lost: u64,
    lost_tags: Vec<u64>,
    revocations: u64,
    wakeup_armed: Option<SimTime>,
}

impl MeshShard {
    fn drain_deltas(&mut self, now: SimTime) {
        let deltas = self.controller.drain_status_deltas();
        if deltas.is_empty() {
            return;
        }
        let mut ob = self.outbox.borrow_mut();
        for delta in deltas {
            let seq = ob.next_seq();
            ob.deltas.push(DeltaOut {
                time: now,
                origin: self.shard,
                seq,
                delta,
            });
        }
    }

    fn arm_wakeup(&mut self, now: SimTime) {
        if let Some(at) = self.controller.next_wakeup() {
            let at = at.max(now);
            if self.wakeup_armed.is_none_or(|t| at < t) {
                self.runner.inject(at, Ev2::Wakeup);
                self.wakeup_armed = Some(at);
            }
        }
    }

    /// Replay a peer's backend op on the local replica at the barrier
    /// instant. Errors are swallowed: they mean this replica had already
    /// diverged inside the accepted envelope (e.g. a revoked machine's
    /// uncompensated ops), and the replay is the convergence mechanism, not
    /// a correctness gate.
    fn replay(&mut self, at: SimTime, op: &SiteOp) {
        let mut b = self.handles[op.site].borrow_mut();
        match &op.call {
            SiteCall::Pull { template } => {
                if let Some(t) = self.templates.iter().find(|t| &t.name == template) {
                    let _ = b.pull(at, t, &self.registries);
                }
            }
            SiteCall::Create { template } => {
                if let Some(t) = self.templates.iter().find(|t| &t.name == template) {
                    let _ = b.create(at, t);
                }
            }
            SiteCall::ScaleUp { service, replicas } => {
                let _ = b.scale_up(at, service, *replicas);
            }
            SiteCall::ScaleDown { service, replicas } => {
                let _ = b.scale_down(at, service, *replicas);
            }
            SiteCall::Remove { service } => {
                let _ = b.remove(at, service);
            }
            SiteCall::DeleteImage { image } => {
                let _ = b.delete_image(at, &ImageRef::new(image.clone()));
            }
            SiteCall::InjectCrash { service } => {
                let _ = b.inject_crash(at, service);
            }
        }
    }

    fn complete(&mut self, now: SimTime, tag: u64, out_port: PortId) {
        if self.in_flight.remove(&tag).is_some() {
            self.records.push(MeshRecord {
                tag,
                shard: self.shard,
                released: now,
                port: out_port.0,
            });
        }
    }

    fn on_syn(&mut self, now: SimTime, tag: u64) {
        let Some(&(client, service)) = self.in_flight.get(&tag) else {
            return;
        };
        let src = SocketAddr::new(self.c3.client_ips[client], 40000 + service as u16);
        let packet = Packet::syn(src, self.service_addrs[service], tag);
        match self.switch.receive(now, packet) {
            PacketVerdict::Forward { out_port, .. } => self.complete(now, tag, out_port),
            PacketVerdict::PacketIn { buffer_id, packet } => {
                let in_port = self.c3.client_port(client);
                self.runner.inject(
                    now + CTRL_LATENCY,
                    Ev2::CtrlPacketIn {
                        packet,
                        buffer_id,
                        in_port,
                    },
                );
            }
            PacketVerdict::Dropped => {
                self.lost += 1;
                self.lost_tags.push(tag);
                self.in_flight.remove(&tag);
            }
        }
    }

    fn on_apply(&mut self, now: SimTime, output: ControllerOutput) {
        match output {
            ControllerOutput::FlowMod { spec, .. } => {
                self.switch.flow_mod(now, spec);
            }
            ControllerOutput::ReleaseViaTable { buffer_id, .. } => {
                let tag = self.switch.buffered_packet(buffer_id).map(|p| p.tag);
                match self.switch.packet_out_via_table(now, buffer_id) {
                    Some(PacketVerdict::Forward { packet, out_port }) => {
                        self.complete(now, packet.tag, out_port);
                    }
                    Some(_) | None => {
                        self.lost += 1;
                        if let Some(tag) = tag {
                            self.lost_tags.push(tag);
                            self.in_flight.remove(&tag);
                        }
                    }
                }
            }
            ControllerOutput::DropBuffered { buffer_id, .. } => {
                if let Some(packet) = self.switch.discard_buffer(buffer_id) {
                    self.lost_tags.push(packet.tag);
                    self.in_flight.remove(&packet.tag);
                }
                self.lost += 1;
            }
            ControllerOutput::FlowDelete { matcher, .. } => {
                self.switch.table.delete_matching(now, &matcher);
            }
        }
    }

    fn push_outputs(&mut self, outputs: Vec<ControllerOutput>) {
        for output in outputs {
            // An output stamped before the horizon applies "now": abort
            // fallout re-stamps waiters with their original decision times,
            // which lie in the executed past of the windowed clock.
            let at = (output.at() + CTRL_LATENCY).max(self.runner.horizon());
            self.runner.inject(at, Ev2::Apply { output });
        }
    }
}

impl ShardActor for MeshShard {
    type Cmd = WindowCmd;
    type Report = WindowReport;
    type Final = ShardFinal;

    fn run_window(&mut self, cmd: WindowCmd) -> WindowReport {
        let at = self.runner.horizon();
        // Barrier inbox, in order: canonical lease state first (so revocation
        // fallout sees it), then peer backend ops (already merged-sorted),
        // then revocations, then future delta deliveries.
        if let Some(gate) = &self.gate {
            let mut st = gate.borrow_mut();
            st.canonical = cmd
                .inbox
                .lease_holders
                .iter()
                .map(|&(c, s, h)| ((c, s), h))
                .collect();
            st.tentative.clear();
        }
        for op in &cmd.inbox.foreign_ops {
            self.replay(at, op);
        }
        let barrier_work = cmd.inbox.needs_barrier_work();
        for &(cluster, service) in &cmd.inbox.revocations {
            if let Some(outputs) = self.controller.abort_deployment(at, cluster, service) {
                self.revocations += 1;
                self.push_outputs(outputs);
            }
        }
        if barrier_work {
            // Aborts emit `Gone` deltas and change machine timing; gossip and
            // re-arm exactly as after an ordinary event.
            self.drain_deltas(at);
            self.arm_wakeup(at);
        }
        for &(t, delta) in &cmd.inbox.deliveries {
            self.runner.inject(t, Ev2::Deliver { delta });
        }
        // The window body: free-running dispatch up to the horizon.
        self.runner.begin_window(cmd.end);
        while let Some((now, ev)) = self.runner.pop() {
            self.switch.sweep(now);
            match ev {
                Ev2::Syn { tag } => self.on_syn(now, tag),
                Ev2::CtrlPacketIn {
                    packet,
                    buffer_id,
                    in_port,
                } => {
                    let outputs = self
                        .controller
                        .on_packet_in(now, packet, buffer_id, in_port);
                    self.push_outputs(outputs);
                }
                Ev2::Apply { output } => self.on_apply(now, output),
                Ev2::Wakeup => {
                    self.wakeup_armed = None;
                    let outputs = self.controller.on_wakeup(now);
                    self.push_outputs(outputs);
                }
                Ev2::Deliver { delta } => {
                    self.controller.apply_remote_delta(now, &delta);
                }
                Ev2::Handover { client } => {
                    let ip = self.c3.client_ips[client];
                    let outputs = self.controller.on_client_handover(now, ip);
                    self.push_outputs(outputs);
                }
            }
            self.drain_deltas(now);
            self.arm_wakeup(now);
        }
        self.runner.end_window();
        let mut ob = self.outbox.borrow_mut();
        WindowReport {
            next_time: self.runner.next_time(),
            lease_ops: std::mem::take(&mut ob.lease_ops),
            site_ops: std::mem::take(&mut ob.site_ops),
            deltas: std::mem::take(&mut ob.deltas),
            in_flight: self.controller.in_flight_deployments(self.runner.horizon()),
        }
    }

    fn finish(self) -> ShardFinal {
        let now = self.runner.horizon();
        let st = &self.controller.stats;
        let summary = ShardSummary {
            deployments: st.deployments.len() as u64,
            memory_hits: st.memory_hits,
            cloud_forwards: st.cloud_forwards,
            held_requests: st.held_requests,
            detoured_requests: st.detoured_requests,
            retargets: st.retargets,
            scale_downs: st.scale_downs,
            removes: st.removals,
            lease_rejections: st.lease_rejections,
            lease_revocations: self.revocations,
            remote_deltas: st.remote_deltas,
        };
        let in_flight = self
            .controller
            .in_flight_deployments(now)
            .into_iter()
            .map(|(svc, c)| (svc.0, c.0))
            .collect();
        let redirects = self
            .controller
            .memory()
            .iter()
            .filter(|f| !f.pending)
            .filter_map(|f| f.cluster.map(|c| (f.service.0, c.0)))
            .collect();
        let mut ready = Vec::new();
        for (c, handle) in self.handles.iter().enumerate() {
            let cluster = handle.borrow();
            for (i, template) in self.templates.iter().enumerate() {
                if cluster.status(now, &template.name).is_ready() {
                    ready.push((i as u32, c));
                }
            }
        }
        ShardFinal {
            summary,
            records: self.records,
            lost: self.lost,
            lost_tags: self.lost_tags,
            handovers: st.handovers,
            in_flight,
            redirects,
            ready,
            stalls: self.runner.stalls(),
            events: self.runner.events(),
        }
    }
}

/// Build shard `shard`'s full state. Runs *on the worker thread that owns
/// the shard* ([`ShardCrew::spawn`]'s contract), so everything here —
/// `Rc`/`RefCell` graphs, trait objects — stays thread-local. Every shard
/// derives its replica RNG streams from the same `(seed, stream name)`
/// pairs, so all replicas of a site are byte-identical at birth and stay so
/// under the identical prewarm performed here.
fn build_shard(
    shard: usize,
    cfg: &ScenarioConfig,
    trace: &Trace,
    blackhole_victim: Option<usize>,
) -> MeshShard {
    let n = cfg.mesh.shards;
    let rng = SimRng::seed_from_u64(cfg.seed);
    let sites = cfg.resolved_sites();
    let c3 = C3Topology::build_sites(
        &sites.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
        cfg.clients,
    );
    let profile = ServiceProfile::of(cfg.service);
    let service_addrs = trace.service_addrs.clone();

    let mut handles: Vec<SharedHandle> = Vec::with_capacity(sites.len());
    for (i, (spec, kind)) in sites.iter().enumerate() {
        let nodes = spec.nodes.max(1) as u32;
        let runtime = match spec.class {
            NodeClass::Egs => Runtime::new(
                containers::CostModel::egs(),
                rng.stream(&format!("rt-{i}")),
                12_000 * nodes,
                32 * (1u64 << 30) * nodes as u64,
            ),
            NodeClass::RaspberryPi => Runtime::new(
                containers::CostModel::raspberry_pi(),
                rng.stream(&format!("rt-{i}")),
                4_000 * nodes,
                4 * (1u64 << 30) * nodes as u64,
            ),
        };
        let ip = c3.site_ips[i];
        let backend: Box<dyn ClusterBackend> = match kind {
            ClusterKind::Docker => Box::new(DockerCluster::new(
                format!("{}-docker", spec.name),
                ip,
                runtime,
                rng.stream(&format!("docker-{i}")),
            )),
            ClusterKind::Kubernetes => Box::new(K8sCluster::new(
                format!("{}-k8s", spec.name),
                ip,
                runtime,
                rng.stream(&format!("k8s-{i}")),
                cfg.k8s_timings.clone().unwrap_or_else(K8sTimings::egs),
            )),
            ClusterKind::Wasm => Box::new(cluster::WasmEdgeCluster::new(
                format!("{}-wasm", spec.name),
                ip,
                rng.stream(&format!("wasm-{i}")),
                cluster::WasmTimings::egs(),
            )),
        };
        handles.push(share(backend));
    }

    let mut templates = Vec::with_capacity(service_addrs.len());
    for i in 0..service_addrs.len() {
        let mut template = profile.template.clone();
        template.name = format!("{}-{i:02}", profile.template.name);
        templates.push(template);
    }

    let outbox = Rc::new(RefCell::new(Outbox::default()));
    let gate = cfg
        .mesh
        .leases
        .then(|| Rc::new(RefCell::new(GateState::default())));

    let global = SchedulerRegistry::builtin()
        .create(&cfg.scheduler)
        .unwrap_or_else(|e| panic!("scenario scheduler: {e}"));
    let mut builder = Controller::builder(cfg.controller.clone())
        .global(global)
        .local(RoundRobinLocal::default())
        .registries(workload::services::standard_registries(
            cfg.private_registry,
        ))
        .cloud_port(CLOUD_PORT)
        .emit_status_deltas();
    if let Some(state) = &gate {
        builder = builder.deploy_gate(WindowGate {
            shard,
            state: Rc::clone(state),
            outbox: Rc::clone(&outbox),
        });
    }
    let mut controller = builder.build();
    for (i, handle) in handles.iter().enumerate() {
        let id = controller.attach_cluster(
            Box::new(LoggingBackend::new(
                i,
                shard,
                handle.clone(),
                Rc::clone(&outbox),
            )),
            c3.switch_site_latency(i),
            c3.site_port(i),
        );
        controller.configure_site(id, sites[i].0.capacity, sites[i].0.labels.clone());
    }
    for (i, addr) in service_addrs.iter().enumerate() {
        controller.catalog.register(*addr, templates[i].clone());
    }
    let mut switch = Switch::new(c3.port_count());
    for spec in cfg.seed_flows.clone() {
        switch.flow_mod(SimTime::ZERO, spec);
    }

    // Identical prewarm on every shard's replicas, applied directly (not
    // through the LoggingBackend — broadcasting it would double-apply).
    let registries = workload::services::standard_registries(cfg.private_registry);
    let setup = cfg.phase_setup;
    let mut setup_end = SimTime::ZERO;
    if setup != PhaseSetup::Cold {
        for (c, handle) in handles.iter().enumerate() {
            if let Some(only) = &cfg.prewarm_sites {
                if !only.contains(&c) {
                    continue;
                }
            }
            let mut cluster = handle.borrow_mut();
            let mut t = SimTime::ZERO;
            for template in &templates {
                t = cluster
                    .pull(t, template, &registries)
                    .expect("prewarm pull");
                if matches!(setup, PhaseSetup::Created | PhaseSetup::Running) {
                    t = cluster.create(t, template).expect("prewarm create");
                }
                if setup == PhaseSetup::Running {
                    t = cluster
                        .scale_up(t, &template.name, 1)
                        .expect("prewarm scale-up")
                        .expected_ready;
                }
            }
            setup_end = setup_end.max(t);
        }
    }

    let mut runner = ShardRunner::new();
    let mut in_flight = BTreeMap::new();
    let offset = (setup_end - SimTime::ZERO) + SimDuration::from_secs(5);
    for (idx, req) in trace.requests.iter().enumerate() {
        // Static ingress assignment (home shard advanced by the client's
        // prior handovers) — a pure function of the trace, so every shard
        // and the reference engine partition identically with no cross-shard
        // machinery.
        if ingress_at(&trace.handovers, req.client, req.at, n) != shard {
            continue;
        }
        // Seeded-fault hook: swallow the victim's post-handover requests —
        // the session is neither served nor accounted lost, exactly the
        // blackhole the continuity analysis exists to catch.
        if blackhole_victim == Some(req.client)
            && ingress_at(&trace.handovers, req.client, req.at, n) != req.client % n
        {
            continue;
        }
        let at = req.at + offset + c3.client_switch_latency(req.client);
        in_flight.insert(idx as u64, (req.client, req.service));
        runner.inject(at, Ev2::Syn { tag: idx as u64 });
    }
    for (old, h) in departures(&trace.handovers, n) {
        if old != shard {
            continue;
        }
        runner.inject(h.at + offset, Ev2::Handover { client: h.client });
    }

    MeshShard {
        shard,
        c3,
        handles,
        templates,
        registries,
        service_addrs,
        controller,
        switch,
        gate,
        outbox,
        runner,
        in_flight,
        records: Vec::new(),
        lost: 0,
        lost_tags: Vec::new(),
        revocations: 0,
        wakeup_armed: None,
    }
}

// ---------------------------------------------------------------------------
// The coordinator.
// ---------------------------------------------------------------------------

fn merge_cmp(a: (SimTime, usize, u64), b: (SimTime, usize, u64), perturb: bool) -> Ordering {
    match a.0.cmp(&b.0) {
        Ordering::Equal => {
            let tie = (a.1, a.2).cmp(&(b.1, b.2));
            if perturb {
                tie.reverse()
            } else {
                tie
            }
        }
        other => other,
    }
}

/// Run `trace` through the windowed engine with `threads` worker threads
/// (clamped to the shard count). Requires `cfg.mesh.shards >= 2`.
pub fn run_windowed(cfg: ScenarioConfig, trace: &Trace, threads: usize) -> MeshRunResult {
    run_inner(cfg, trace, threads, false, None).0
}

/// [`run_windowed`] plus the mesh-coherence audit over the final state and
/// the split-brain duplicates observed at barriers.
pub fn run_windowed_audited(
    cfg: ScenarioConfig,
    trace: &Trace,
    threads: usize,
) -> (MeshRunResult, Vec<Violation>) {
    run_inner(cfg, trace, threads, false, None)
}

/// Test-only sensitivity hook: run with the barrier merge order perturbed
/// (tie-break and fan-out order reversed). The determinism regression suite
/// asserts the canonical hash *changes* under this mutation — proof the
/// pinned hashes actually pin the merge order.
#[doc(hidden)]
pub fn run_windowed_perturbed(cfg: ScenarioConfig, trace: &Trace, threads: usize) -> MeshRunResult {
    run_inner(cfg, trace, threads, true, None).0
}

/// Seeded-fault hook for the session-continuity analysis: run with
/// `victim`'s post-handover requests silently swallowed (never served, never
/// accounted lost). The mutation test asserts the continuity check flags the
/// blackholed sessions — proof the analysis is live, not vacuously green.
#[doc(hidden)]
pub fn run_windowed_blackholed(
    cfg: ScenarioConfig,
    trace: &Trace,
    threads: usize,
    victim: usize,
) -> (MeshRunResult, Vec<Violation>) {
    run_inner(cfg, trace, threads, false, Some(victim))
}

fn run_inner(
    cfg: ScenarioConfig,
    trace: &Trace,
    threads: usize,
    perturb: bool,
    blackhole_victim: Option<usize>,
) -> (MeshRunResult, Vec<Violation>) {
    let n = cfg.mesh.shards;
    assert!(
        n >= 2,
        "windowed engine needs >= 2 shards; one controller is the plain Testbed"
    );
    let threads = threads.clamp(1, n);
    let leases = cfg.mesh.leases;
    let link_latency = cfg.mesh.link_latency;
    let gossip_interval = cfg.mesh.gossip_interval;
    let loss = cfg.mesh.loss;
    let lookahead = if link_latency > SimDuration::ZERO {
        link_latency
    } else {
        SimDuration::from_nanos(1)
    };
    let mut gossip_rng = SimRng::seed_from_u64(cfg.seed).stream("mesh-gossip");

    let shared = Arc::new((cfg, trace.clone()));
    let build_input = Arc::clone(&shared);
    let mut crew: ShardCrew<MeshShard> = ShardCrew::spawn(n, threads, move |shard| {
        build_shard(shard, &build_input.0, &build_input.1, blackhole_victim)
    });
    let effective_threads = crew.effective_threads();

    // Canonical (coordinator-side) state.
    let mut canonical: BTreeMap<(ClusterId, ServiceId), usize> = BTreeMap::new();
    let mut duplicates: BTreeMap<(u32, usize), BTreeSet<usize>> = BTreeMap::new();
    let mut deltas_sent = 0u64;
    let mut deltas_lost = 0u64;
    let mut delta_deliveries = 0u64;
    let mut staleness_ns_total = 0u128;
    let mut convergence_ns_total = 0u128;
    let mut converged_deltas = 0u64;
    let mut windows = 0u64;
    let mut horizon = SimTime::ZERO;

    // Probe round: learn each shard's first pending time without executing
    // anything (window end == horizon == 0).
    let probe: Vec<WindowCmd> = (0..n)
        .map(|_| WindowCmd {
            end: SimTime::ZERO,
            inbox: Inbox::default(),
        })
        .collect();
    let mut reports = crew.run_windows(probe);

    loop {
        // --- Merge phase (coordinator thread, deterministic order). ---
        let mut lease_ops: Vec<LeaseOp> = Vec::new();
        let mut site_ops: Vec<SiteOp> = Vec::new();
        let mut deltas: Vec<DeltaOut> = Vec::new();
        for r in &reports {
            lease_ops.extend(r.lease_ops.iter().copied());
            site_ops.extend(r.site_ops.iter().cloned());
            deltas.extend(r.deltas.iter().copied());
        }
        lease_ops.sort_by(|a, b| {
            merge_cmp(
                (a.time, a.origin, a.seq),
                (b.time, b.origin, b.seq),
                perturb,
            )
        });
        site_ops.sort_by(|a, b| {
            merge_cmp(
                (a.time, a.origin, a.seq),
                (b.time, b.origin, b.seq),
                perturb,
            )
        });
        deltas.sort_by(|a, b| {
            merge_cmp(
                (a.time, a.origin, a.seq),
                (b.time, b.origin, b.seq),
                perturb,
            )
        });

        // Lease resolution: replay every logged op against the canonical
        // table in merged order. First committed acquirer wins; a tentative
        // holder that lost is revoked.
        let mut inboxes: Vec<Inbox> = (0..n).map(|_| Inbox::default()).collect();
        let mut revoked_keys: BTreeSet<(ClusterId, ServiceId)> = BTreeSet::new();
        let mut revoked_once: BTreeSet<(usize, ClusterId, ServiceId)> = BTreeSet::new();
        for op in &lease_ops {
            let key = (op.cluster, op.service);
            match op.call {
                LeaseCall::Acquire => match canonical.get(&key).copied() {
                    None => {
                        canonical.insert(key, op.origin);
                    }
                    Some(holder) if holder == op.origin => {}
                    Some(_) => {
                        if revoked_once.insert((op.origin, op.cluster, op.service)) {
                            inboxes[op.origin].revocations.push(key);
                        }
                        revoked_keys.insert(key);
                    }
                },
                LeaseCall::Release => {
                    if canonical.get(&key).copied() == Some(op.origin) {
                        canonical.remove(&key);
                    }
                }
            }
        }
        if leases {
            let snapshot: Vec<(ClusterId, ServiceId, usize)> =
                canonical.iter().map(|(&(c, s), &h)| (c, s, h)).collect();
            for inbox in &mut inboxes {
                inbox.lease_holders = snapshot.clone();
            }
        }

        // Route backend ops to every peer for barrier replay.
        for op in &site_ops {
            for (s, inbox) in inboxes.iter_mut().enumerate() {
                if s != op.origin {
                    inbox.foreign_ops.push(op.clone());
                }
            }
        }

        // Gossip fan-out with pre-rolled loss, in merged delta order. A
        // delivery computed behind the current horizon (a barrier-instant
        // drain) arrives "now" at the earliest — the clamp that keeps every
        // injection at or after the receiving shard's horizon.
        let mut next_activity: Option<SimTime> = None;
        fn bump(t: SimTime, next_activity: &mut Option<SimTime>) {
            *next_activity = Some(next_activity.map_or(t, |n: SimTime| n.min(t)));
        }
        let targets: Vec<usize> = if perturb {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        };
        for d in &deltas {
            let mut latest = SimTime::ZERO;
            for &t in &targets {
                if t == d.origin {
                    continue;
                }
                deltas_sent += 1;
                let mut at = d.time + link_latency;
                let mut tries = 0;
                while tries < MAX_RETRANSMITS && gossip_rng.chance(loss) {
                    deltas_lost += 1;
                    at += gossip_interval;
                    tries += 1;
                }
                let at = at.max(horizon);
                delta_deliveries += 1;
                staleness_ns_total += at.since(d.delta.origin).as_nanos() as u128;
                latest = latest.max(at);
                bump(at, &mut next_activity);
                inboxes[t].deliveries.push((at, d.delta));
            }
            convergence_ns_total += latest.since(d.delta.origin).as_nanos() as u128;
            converged_deltas += 1;
        }

        // Split-brain scan over the window-end in-flight sets, minus the
        // keys this barrier just revoked (the revocation *is* the protocol
        // resolving the race — only a key still contested after resolution
        // is a real duplicate).
        let mut holders: BTreeMap<(u32, usize), Vec<usize>> = BTreeMap::new();
        for (s, r) in reports.iter().enumerate() {
            for &(svc, cluster) in &r.in_flight {
                if revoked_keys.contains(&(cluster, svc)) {
                    continue;
                }
                holders.entry((svc.0, cluster.0)).or_default().push(s);
            }
        }
        for (key, involved) in holders {
            if involved.len() >= 2 {
                duplicates.entry(key).or_default().extend(involved);
            }
        }

        // Earliest pending activity across the mesh: queue heads, scheduled
        // deliveries (bumped above), and the barrier instant itself when a
        // shard has revocations or foreign ops to apply at window start.
        for (s, r) in reports.iter().enumerate() {
            if let Some(t) = r.next_time {
                bump(t, &mut next_activity);
            }
            if inboxes[s].needs_barrier_work() {
                bump(horizon, &mut next_activity);
            }
        }

        let Some(t_min) = next_activity else {
            break;
        };
        let end = t_min + lookahead;
        windows += 1;
        let cmds: Vec<WindowCmd> = inboxes
            .into_iter()
            .map(|inbox| WindowCmd { end, inbox })
            .collect();
        reports = crew.run_windows(cmds);
        horizon = end;
    }

    let finals = crew.finish();

    // Deterministic cross-shard record order: completion time, then shard,
    // then tag — a pure function of the simulation, never of the workers.
    let mut records: Vec<MeshRecord> = finals
        .iter()
        .flat_map(|f| f.records.iter().copied())
        .collect();
    records.sort_by_key(|r| (r.released, r.shard, r.tag));

    let mut lost_tags: Vec<u64> = finals
        .iter()
        .flat_map(|f| f.lost_tags.iter().copied())
        .collect();
    lost_tags.sort_unstable();

    let mut violations = audit(&finals, &duplicates);
    violations.extend(
        Verifier::new()
            .check_continuity(&crate::continuity_view_parts(trace, &records, &lost_tags)),
    );

    let shard_stats: Vec<ShardSummary> = finals.iter().map(|f| f.summary.clone()).collect();
    let total = |f: fn(&ShardSummary) -> u64| shard_stats.iter().map(f).sum::<u64>();
    let result = MeshRunResult {
        shards: n,
        threads: effective_threads,
        leases,
        completed: records.len() as u64,
        lost: finals.iter().map(|f| f.lost).sum(),
        deployments: total(|s| s.deployments),
        duplicate_deployments: duplicates.len() as u64,
        duplicate_deployments_avoided: total(|s| s.lease_rejections)
            + total(|s| s.lease_revocations),
        lease_revocations: total(|s| s.lease_revocations),
        deltas_sent,
        deltas_lost,
        delta_deliveries,
        staleness_ns_total,
        convergence_ns_total,
        converged_deltas,
        scale_downs: total(|s| s.scale_downs),
        removes: total(|s| s.removes),
        retargets: total(|s| s.retargets),
        handovers: finals.iter().map(|f| f.handovers).sum(),
        windows,
        barrier_stalls: finals.iter().map(|f| f.stalls).sum(),
        events: finals.iter().map(|f| f.events).sum(),
        shard_stats,
        records,
        lost_tags,
        single: None,
    };
    (result, violations)
}

/// The mesh-coherence audit over the final shard states: `edgeverify`'s
/// static checks (using shard 0's replica-derived ready set — replicas
/// converge at barriers) plus the split-brain duplicates observed live.
fn audit(
    finals: &[ShardFinal],
    duplicates: &BTreeMap<(u32, usize), BTreeSet<usize>>,
) -> Vec<Violation> {
    let verifier = Verifier::new();
    let view = MeshView {
        in_flight: finals.iter().map(|f| f.in_flight.to_vec()).collect(),
        redirects: finals.iter().map(|f| f.redirects.to_vec()).collect(),
        ready: finals
            .first()
            .map(|f| f.ready.iter().copied().collect::<HashSet<_>>())
            .unwrap_or_default(),
    };
    let mut out = verifier.check_mesh(&view);
    for (&(service, cluster), involved) in duplicates {
        let v = Violation::SplitBrainDeployment {
            service,
            cluster,
            shards: involved.iter().copied().collect(),
        };
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}
