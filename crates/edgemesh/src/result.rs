//! Results shared by both mesh engines — the interleaved reference
//! ([`crate::reference`]) and the windowed parallel engine ([`crate::par`]).
//!
//! [`MeshRunResult::mesh_trace`] is the canonical determinism artifact: a
//! textual rendering of everything a run produced, hashed by
//! [`MeshRunResult::mesh_hash`]. The trace deliberately contains **no
//! thread-dependent quantity** — window counts, barrier stalls and event
//! totals are pure functions of the scenario and seed, and the effective
//! thread count is carried outside the trace — so the windowed engine's hash
//! is byte-identical for any thread count by construction.

use simcore::SimTime;

/// A completed request: which shard released it, when, and through which
/// switch port (cloud, a site, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshRecord {
    pub tag: u64,
    pub shard: usize,
    pub released: SimTime,
    pub port: usize,
}

/// Per-shard controller counters at the end of a run.
#[derive(Debug, Clone, Default)]
pub struct ShardSummary {
    pub deployments: u64,
    pub memory_hits: u64,
    pub cloud_forwards: u64,
    pub held_requests: u64,
    pub detoured_requests: u64,
    pub retargets: u64,
    pub scale_downs: u64,
    pub removes: u64,
    /// Deployment starts this shard abandoned because another shard held
    /// the lease — duplicate deployments avoided, from this shard's side.
    pub lease_rejections: u64,
    /// Deployment machines this shard aborted because the window-boundary
    /// merge awarded the lease to another shard (windowed engine only; the
    /// reference engine resolves every acquisition immediately and never
    /// revokes).
    pub lease_revocations: u64,
    /// Remote status deltas applied.
    pub remote_deltas: u64,
}

/// Everything a mesh run produces.
#[derive(Debug)]
pub struct MeshRunResult {
    pub shards: usize,
    /// Worker threads that executed the run (1 for the reference engine and
    /// the `shards = 1` delegation). Deliberately absent from the trace:
    /// the hash must not depend on it.
    pub threads: usize,
    pub leases: bool,
    /// Requests whose SYN was released into the fabric.
    pub completed: u64,
    pub lost: u64,
    /// Deployment machines completed, summed over shards.
    pub deployments: u64,
    /// Distinct `(service, cluster)` pairs observed deploying on two or more
    /// shards concurrently — split-brain duplicates that actually happened.
    pub duplicate_deployments: u64,
    /// Deployment duplicates the protocol prevented: starts abandoned at the
    /// lease gate plus machines aborted by a window-boundary revocation.
    pub duplicate_deployments_avoided: u64,
    /// Machines aborted by lease revocation, summed over shards.
    pub lease_revocations: u64,
    pub deltas_sent: u64,
    /// Deliveries lost on the mesh link (each one cost one `gossip_interval`
    /// of extra staleness before its retransmission).
    pub deltas_lost: u64,
    pub delta_deliveries: u64,
    /// Σ (delivery instant − delta origin) over all deliveries, ns.
    pub staleness_ns_total: u128,
    /// Σ (last delivery instant − delta origin) over fully-propagated
    /// deltas, ns — how long the mesh took to converge on each fact.
    pub convergence_ns_total: u128,
    pub converged_deltas: u64,
    pub scale_downs: u64,
    pub removes: u64,
    pub retargets: u64,
    /// Client handovers processed across all shards: a mobile client left
    /// one ingress for another and the departing controller tore its flows
    /// down. In the trace only when non-zero, so every pinned static-client
    /// hash stays byte-identical.
    pub handovers: u64,
    /// Synchronization windows executed (windowed engine; 0 for reference).
    pub windows: u64,
    /// Shard-windows that executed zero events — the shard only waited at
    /// the barrier (windowed engine; 0 for reference).
    pub barrier_stalls: u64,
    /// Total events executed across all shards.
    pub events: u64,
    pub shard_stats: Vec<ShardSummary>,
    /// Completion records (empty for the `shards = 1` delegation, which
    /// keeps its full single-controller records in `single`).
    pub records: Vec<MeshRecord>,
    /// Sorted tags of requests accounted as lost — the session-continuity
    /// analysis's loss ledger (a tag neither completed nor listed here was
    /// blackholed). Deliberately NOT part of [`MeshRunResult::mesh_trace`]:
    /// `lost` already carries the count.
    pub lost_tags: Vec<u64>,
    /// The plain testbed result backing a `shards = 1` run.
    pub single: Option<Box<testbed::RunResult>>,
}

impl MeshRunResult {
    /// Wrap a single-controller [`testbed::RunResult`] so `shards = 1` mesh
    /// runs are the plain testbed, byte for byte.
    pub fn from_single(result: testbed::RunResult) -> MeshRunResult {
        MeshRunResult {
            shards: 1,
            threads: 1,
            leases: true,
            completed: result.records.len() as u64,
            lost: result.lost,
            deployments: result.deployments.len() as u64,
            duplicate_deployments: 0,
            duplicate_deployments_avoided: 0,
            lease_revocations: 0,
            deltas_sent: 0,
            deltas_lost: 0,
            delta_deliveries: 0,
            staleness_ns_total: 0,
            convergence_ns_total: 0,
            converged_deltas: 0,
            scale_downs: result.scale_downs,
            removes: result.removes,
            retargets: result.retargets,
            handovers: result.handovers,
            windows: 0,
            barrier_stalls: 0,
            events: result.events_scheduled,
            shard_stats: Vec::new(),
            records: Vec::new(),
            lost_tags: Vec::new(),
            single: Some(Box::new(result)),
        }
    }

    /// Mean delta staleness (delivery lag behind the fact) in milliseconds.
    pub fn mean_staleness_ms(&self) -> f64 {
        if self.delta_deliveries == 0 {
            return 0.0;
        }
        self.staleness_ns_total as f64 / 1e6 / self.delta_deliveries as f64
    }

    /// Mean time for a delta to reach every shard, in milliseconds.
    pub fn mean_convergence_ms(&self) -> f64 {
        if self.converged_deltas == 0 {
            return 0.0;
        }
        self.convergence_ns_total as f64 / 1e6 / self.converged_deltas as f64
    }

    /// Barrier stalls per window, averaged over the run (0 when the run had
    /// no windows — reference engine or `shards = 1`).
    pub fn stalls_per_window(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.barrier_stalls as f64 / self.windows as f64
    }

    /// Canonical textual trace — the mesh determinism artifact, same role as
    /// `RunResult::metrics_trace`. A `shards = 1` run returns the inner
    /// testbed trace verbatim, so its hash equals the pinned
    /// single-controller hash by construction.
    pub fn mesh_trace(&self) -> String {
        use std::fmt::Write as _;
        if let Some(single) = &self.single {
            return single.metrics_trace();
        }
        let mut out = String::with_capacity(48 * self.records.len() + 1024);
        let _ = writeln!(
            out,
            "mesh shards={} leases={} completed={} lost={} duplicates={} avoided={} \
             revocations={} deltas_sent={} deltas_lost={} deliveries={} staleness_ns={} \
             convergence_ns={} converged={} windows={} stalls={} events={}",
            self.shards,
            self.leases,
            self.completed,
            self.lost,
            self.duplicate_deployments,
            self.duplicate_deployments_avoided,
            self.lease_revocations,
            self.deltas_sent,
            self.deltas_lost,
            self.delta_deliveries,
            self.staleness_ns_total,
            self.convergence_ns_total,
            self.converged_deltas,
            self.windows,
            self.barrier_stalls,
            self.events,
        );
        // Mobility line only when live: static-client hashes predate it and
        // must stay byte-identical.
        if self.handovers > 0 {
            let _ = writeln!(out, "handovers={}", self.handovers);
        }
        for (i, s) in self.shard_stats.iter().enumerate() {
            let _ = writeln!(
                out,
                "shard={i} deployments={} memory_hits={} cloud={} held={} detoured={} \
                 retargets={} scale_downs={} removes={} lease_rejections={} \
                 lease_revocations={} remote_deltas={}",
                s.deployments,
                s.memory_hits,
                s.cloud_forwards,
                s.held_requests,
                s.detoured_requests,
                s.retargets,
                s.scale_downs,
                s.removes,
                s.lease_rejections,
                s.lease_revocations,
                s.remote_deltas,
            );
        }
        for r in &self.records {
            let _ = writeln!(
                out,
                "req tag={} shard={} released_ns={} port={}",
                r.tag,
                r.shard,
                r.released.as_nanos(),
                r.port,
            );
        }
        out
    }

    /// FNV-1a over [`MeshRunResult::mesh_trace`].
    pub fn mesh_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.mesh_trace().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}
