//! The deployment-lease table: mutual exclusion over `(cluster, service)`
//! deployment decisions across controller shards.
//!
//! Models the linearizable coordination service every production controller
//! cluster already operates (ONOS/etcd, Kubernetes leader-election leases):
//! one compare-and-set per deployment decision, far off the per-packet hot
//! path. Linearizability is an ordering contract, and each engine discharges
//! it with its own total order over acquire/release operations:
//!
//! * In the **windowed parallel engine** ([`crate::par`]) shards acquire
//!   *tentatively* against a canonical snapshot and log every operation;
//!   at each window boundary the coordinator replays all logged operations
//!   against the canonical table in the merge order `(time, origin_shard,
//!   seq)`. That replay is the linearization point of every acquire and
//!   release — first committed acquirer wins, a tentative holder that lost
//!   is revoked and aborts its machine. The merge key is a total order on
//!   operations that is independent of worker-thread schedule, which is
//!   exactly why the lease outcome (and the mesh trace hash) cannot depend
//!   on the thread count.
//! * In the **interleaved reference engine** ([`crate::reference`]) the
//!   same total order degenerates to event order: this table is process-
//!   shared state behind `Rc<RefCell<..>>`, acquisition order is the order
//!   the single event loop executes PacketIns, and the timing wheel breaks
//!   ties deterministically (FIFO at equal instants). Equivalently: every
//!   event is its own window and every window boundary is empty.
//!
//! This `LeaseTable` is the reference engine's (and the model proptest's)
//! concrete table; the parallel engine's window-scoped counterpart lives in
//! `par` as `WindowGate`.
//!
//! Each shard's [`LeaseHandle`] plugs into the controller through
//! [`edgectl::DeployGate`]: the dispatcher calls `try_acquire` immediately
//! before starting a deployment machine and `release` when the machine
//! finalizes or fails. Re-acquisition by the holder is idempotent (the
//! dispatcher may retry a cluster after a transient backend fault without
//! re-coordinating).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use edgectl::{ClusterId, DeployGate, ServiceId};
use simcore::SimTime;

#[derive(Debug, Default)]
struct LeaseState {
    /// Current holder (shard index) per `(cluster, service)`.
    held: BTreeMap<(ClusterId, ServiceId), usize>,
    granted: u64,
    rejected: u64,
    released: u64,
}

/// The shared lease table. Clone-cheap handles ([`LeaseTable::handle`]) are
/// what individual controllers hold; the table itself is the test/metrics
/// view.
#[derive(Debug, Clone, Default)]
pub struct LeaseTable {
    state: Rc<RefCell<LeaseState>>,
}

impl LeaseTable {
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    /// The [`DeployGate`] for controller shard `shard`.
    pub fn handle(&self, shard: usize) -> LeaseHandle {
        LeaseHandle {
            shard,
            state: Rc::clone(&self.state),
        }
    }

    /// Number of leases currently held.
    pub fn held(&self) -> usize {
        self.state.borrow().held.len()
    }

    /// The shard currently holding the lease on `(cluster, service)`.
    pub fn holder(&self, cluster: ClusterId, service: ServiceId) -> Option<usize> {
        self.state.borrow().held.get(&(cluster, service)).copied()
    }

    /// Total acquisitions granted (first-time grants, not idempotent
    /// re-acquisitions by the holder).
    pub fn granted(&self) -> u64 {
        self.state.borrow().granted
    }

    /// Total acquisitions rejected because another shard held the lease —
    /// each one is a duplicate deployment that did not happen.
    pub fn rejected(&self) -> u64 {
        self.state.borrow().rejected
    }

    /// Total releases by the holding shard.
    pub fn released(&self) -> u64 {
        self.state.borrow().released
    }
}

/// One shard's handle on the shared [`LeaseTable`].
#[derive(Debug, Clone)]
pub struct LeaseHandle {
    shard: usize,
    state: Rc<RefCell<LeaseState>>,
}

impl LeaseHandle {
    /// Which shard this handle acquires for.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

impl DeployGate for LeaseHandle {
    fn try_acquire(&mut self, _now: SimTime, cluster: ClusterId, service: ServiceId) -> bool {
        let mut st = self.state.borrow_mut();
        match st.held.get(&(cluster, service)).copied() {
            Some(holder) if holder == self.shard => true,
            Some(_) => {
                st.rejected += 1;
                false
            }
            None => {
                st.held.insert((cluster, service), self.shard);
                st.granted += 1;
                true
            }
        }
    }

    fn release(&mut self, _now: SimTime, cluster: ClusterId, service: ServiceId) {
        let mut st = self.state.borrow_mut();
        if st.held.get(&(cluster, service)).copied() == Some(self.shard) {
            st.held.remove(&(cluster, service));
            st.released += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ClusterId = ClusterId(0);
    const S0: ServiceId = ServiceId(0);
    const S1: ServiceId = ServiceId(1);

    #[test]
    fn first_acquirer_wins_and_release_frees() {
        let table = LeaseTable::new();
        let mut a = table.handle(0);
        let mut b = table.handle(1);
        assert!(a.try_acquire(SimTime::ZERO, C0, S0));
        assert!(!b.try_acquire(SimTime::ZERO, C0, S0));
        assert_eq!(table.holder(C0, S0), Some(0));
        a.release(SimTime::ZERO, C0, S0);
        assert!(b.try_acquire(SimTime::ZERO, C0, S0));
        assert_eq!(table.holder(C0, S0), Some(1));
        assert_eq!(
            (table.granted(), table.rejected(), table.released()),
            (2, 1, 1)
        );
    }

    #[test]
    fn holder_reacquires_idempotently() {
        let table = LeaseTable::new();
        let mut a = table.handle(3);
        assert!(a.try_acquire(SimTime::ZERO, C0, S0));
        assert!(a.try_acquire(SimTime::ZERO, C0, S0));
        assert_eq!(table.granted(), 1, "re-acquisition is not a new grant");
        assert_eq!(table.held(), 1);
    }

    #[test]
    fn non_holder_release_is_a_no_op() {
        let table = LeaseTable::new();
        let mut a = table.handle(0);
        let mut b = table.handle(1);
        assert!(a.try_acquire(SimTime::ZERO, C0, S1));
        b.release(SimTime::ZERO, C0, S1);
        assert_eq!(table.holder(C0, S1), Some(0), "only the holder can release");
        assert_eq!(table.released(), 0);
    }

    #[test]
    fn leases_are_per_cluster_and_service() {
        let table = LeaseTable::new();
        let mut a = table.handle(0);
        let mut b = table.handle(1);
        assert!(a.try_acquire(SimTime::ZERO, C0, S0));
        assert!(b.try_acquire(SimTime::ZERO, ClusterId(1), S0));
        assert!(b.try_acquire(SimTime::ZERO, C0, S1));
        assert_eq!(table.held(), 3);
    }
}
