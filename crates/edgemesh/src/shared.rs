//! Shared cluster backends: every controller shard steers the same physical
//! edge sites.
//!
//! Sharding splits the *control plane*, not the clusters — a Docker engine
//! has one API endpoint no matter how many controllers call it. The two
//! engines realize "one site, many controllers" differently:
//!
//! * The **interleaved reference engine** ([`crate::reference`]) keeps each
//!   site's backend once, behind a [`SharedHandle`], and every shard
//!   attaches a [`SharedBackend`] wrapper that delegates through it. Calls
//!   are serialized by the shared event loop, so interleavings are exactly
//!   the deterministic event order — which is what makes the un-leased
//!   duplicate-deployment race observable instead of a data race.
//! * The **windowed parallel engine** ([`crate::par`]) cannot share a
//!   `Rc<RefCell<..>>` across worker threads, so every shard owns an
//!   identical *replica* of every site (same seed, same RNG streams) and
//!   logs its own successful mutations; peers replay those logs at the next
//!   window boundary in the canonical `(time, origin_shard, seq)` merge
//!   order. Replaying the same mutations in the same total order against
//!   the same initial state keeps all replicas convergent without any
//!   cross-thread aliasing — the serialized-interleaving argument above,
//!   restated per window instead of per event.

use std::cell::RefCell;
use std::rc::Rc;

use cluster::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, ScaleReceipt, ServiceStatus,
    ServiceTemplate,
};
use containers::ImageRef;
use registry::RegistrySet;
use simcore::SimTime;
use simnet::SocketAddr;

/// The single shared instance of one site's backend.
pub type SharedHandle = Rc<RefCell<Box<dyn ClusterBackend>>>;

/// Wrap a backend for shared ownership across controller shards.
pub fn share(backend: Box<dyn ClusterBackend>) -> SharedHandle {
    Rc::new(RefCell::new(backend))
}

/// One shard's view of a shared site backend. Implements [`ClusterBackend`]
/// by delegation; the name and kind are cached at wrap time because the
/// trait returns `&str` (a `RefCell` borrow cannot escape a method).
pub struct SharedBackend {
    name: String,
    kind: ClusterKind,
    inner: SharedHandle,
}

impl SharedBackend {
    pub fn new(inner: SharedHandle) -> SharedBackend {
        let (name, kind) = {
            let b = inner.borrow();
            (b.cluster_name().to_string(), b.kind())
        };
        SharedBackend { name, kind, inner }
    }
}

impl ClusterBackend for SharedBackend {
    fn cluster_name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> ClusterKind {
        self.kind
    }

    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        self.inner.borrow_mut().pull(now, template, registries)
    }

    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        self.inner.borrow_mut().create(now, template)
    }

    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        self.inner.borrow_mut().scale_up(now, service, replicas)
    }

    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        self.inner.borrow_mut().scale_down(now, service, replicas)
    }

    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        self.inner.borrow_mut().remove(now, service)
    }

    fn delete_image(&mut self, now: SimTime, image: &ImageRef) -> bool {
        self.inner.borrow_mut().delete_image(now, image)
    }

    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        self.inner.borrow().status(now, service)
    }

    fn has_images(&self, template: &ServiceTemplate) -> bool {
        self.inner.borrow().has_images(template)
    }

    fn replica_endpoints(&self, now: SimTime, service: &str) -> Vec<SocketAddr> {
        self.inner.borrow().replica_endpoints(now, service)
    }

    fn services(&self) -> Vec<String> {
        self.inner.borrow().services()
    }

    fn load(&self) -> f64 {
        self.inner.borrow().load()
    }

    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        self.inner.borrow_mut().inject_crash(now, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::DockerCluster;
    use containers::image::synthesize_layers;
    use containers::{ImageManifest, Runtime};
    use registry::{Registry, RegistryProfile};
    use simcore::{DurationDist, SimRng};
    use simnet::IpAddr;

    fn registries() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 1_000_000, 2),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s
    }

    #[test]
    fn two_views_see_one_backend() {
        let rng = SimRng::seed_from_u64(1);
        let docker = DockerCluster::new(
            "site-0",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("rt")),
            rng.stream("d"),
        );
        let handle = share(Box::new(docker));
        let mut a = SharedBackend::new(handle.clone());
        let b = SharedBackend::new(handle);
        assert_eq!(a.cluster_name(), "site-0");
        assert_eq!(b.kind(), ClusterKind::Docker);

        let tpl = ServiceTemplate::single("svc", "nginx:1.23.2", 80, DurationDist::zero());
        let regs = registries();
        let t = a.pull(SimTime::ZERO, &tpl, &regs).unwrap();
        let t = a.create(t, &tpl).unwrap();
        let r = a.scale_up(t, "svc", 1).unwrap();
        // The deployment performed through `a` is visible through `b`.
        assert!(b.status(r.expected_ready, "svc").is_ready());
        assert!(b.has_images(&tpl));
        assert_eq!(b.services(), vec!["svc".to_string()]);
    }
}
