//! # edgemesh — multi-controller federation for the transparent edge
//!
//! The paper's architecture runs **one** SDN controller on the EGS; every
//! ingress switch sends its table misses there. A city-scale deployment
//! cannot: PacketIn fan-in saturates a single control plane long before the
//! data plane does. This crate shards the fabric's ingress across `N`
//! controller instances — each running the unmodified `edgectl` dispatcher
//! state machine over its own ingress switch — and connects them with two
//! deterministic coordination mechanisms:
//!
//! * **Deployment leases** ([`lease`]) — a shared lease table modelling a
//!   linearizable coordination service (etcd-style, as every production SDN
//!   controller cluster already runs one). Before a controller starts a
//!   deployment machine for `(cluster, service)` it must hold the lease;
//!   a loser shard falls back to the paper's *without-waiting* strategy
//!   (serve from cloud/FAST now) and retargets its flows when the holder's
//!   `Ready` delta arrives. This closes the classic split-brain window in
//!   which two controllers concurrently observe a PacketIn for the same
//!   undeployed service and both deploy it.
//! * **Delta gossip** ([`sim`]) — per-`(service, cluster)` instance-status
//!   deltas (`Ready`/`Gone`) drained from each controller after every event
//!   and delivered to every other shard as timing-wheel events after a
//!   configurable link latency. Loss is pre-rolled at send time from a
//!   dedicated RNG stream, so a lossy mesh replays byte-identically under
//!   the same seed.
//!
//! `shards = 1` bypasses all of this and delegates to the plain
//! [`testbed::Testbed`], so every pinned single-controller trace stays
//! byte-identical ([`MeshRunResult::mesh_hash`] then equals
//! `RunResult::metrics_hash`).
//!
//! Configuration rides on [`testbed::MeshParams`] (the `mesh:` block of
//! scenario YAML); the mesh-coherence static checks live in
//! `edgeverify::Verifier::check_mesh`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod lease;
pub mod shared;
pub mod sim;

pub use lease::{LeaseHandle, LeaseTable};
pub use shared::{SharedBackend, SharedHandle};
pub use sim::{
    run_mesh_bigflows, run_mesh_bigflows_audited, run_mesh_scenario, MeshRecord, MeshRunResult,
    MeshSim, ShardSummary,
};
