//! # edgemesh — multi-controller federation for the transparent edge
//!
//! The paper's architecture runs **one** SDN controller on the EGS; every
//! ingress switch sends its table misses there. A city-scale deployment
//! cannot: PacketIn fan-in saturates a single control plane long before the
//! data plane does. This crate shards the fabric's ingress across `N`
//! controller instances — each running the unmodified `edgectl` dispatcher
//! state machine over its own ingress switch — and connects them with two
//! deterministic coordination mechanisms:
//!
//! * **Deployment leases** ([`lease`]) — a lease table modelling a
//!   linearizable coordination service (etcd-style, as every production SDN
//!   controller cluster already runs one). Before a controller starts a
//!   deployment machine for `(cluster, service)` it must hold the lease;
//!   a loser shard falls back to the paper's *without-waiting* strategy
//!   (serve from cloud/FAST now) and retargets its flows when the holder's
//!   `Ready` delta arrives. This closes the classic split-brain window in
//!   which two controllers concurrently observe a PacketIn for the same
//!   undeployed service and both deploy it.
//! * **Delta gossip** — per-`(service, cluster)` instance-status deltas
//!   (`Ready`/`Gone`) drained from each controller after every event and
//!   delivered to every other shard after a configurable link latency. Loss
//!   is pre-rolled at send time from a dedicated RNG stream, so a lossy mesh
//!   replays byte-identically under the same seed.
//!
//! Two engines execute the federation:
//!
//! * [`par`] — the **windowed parallel engine** (the default for
//!   `shards >= 2`): thread-per-shard conservative PDES with deterministic
//!   lookahead windows. Each shard owns its controller, switch and event
//!   queue on one worker thread and everything cross-shard exchanges at
//!   window barriers in one canonical merge order, so the mesh trace hash
//!   is byte-identical for any thread count.
//! * [`mod@reference`] — the original interleaved single-event-loop engine, kept
//!   as the executable specification the parallel engine is held equivalent
//!   to by the model-based lockstep test.
//!
//! `shards = 1` bypasses both and delegates to the plain
//! [`testbed::Testbed`], so every pinned single-controller trace stays
//! byte-identical ([`MeshRunResult::mesh_hash`] then equals
//! `RunResult::metrics_hash`).
//!
//! Configuration rides on [`testbed::MeshParams`] (the `mesh:` block of
//! scenario YAML, including the `threads` knob); the mesh-coherence static
//! checks live in `edgeverify::Verifier::check_mesh`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod lease;
pub mod par;
pub mod reference;
pub mod result;
pub mod shared;

pub use lease::{LeaseHandle, LeaseTable};
pub use par::{run_windowed, run_windowed_audited, validate_threads, ThreadsExceedShards};
pub use reference::MeshSim;
pub use result::{MeshRecord, MeshRunResult, ShardSummary};
pub use shared::{SharedBackend, SharedHandle};

use edgeverify::{ContinuityView, Violation};
use testbed::{ScenarioConfig, Testbed};
use workload::Trace;

/// Run a trace under a scenario, honouring `cfg.mesh.shards` and
/// `cfg.mesh.threads`: one shard is the plain single-controller
/// [`testbed::Testbed`] (byte-identical to every pinned trace), two or more
/// run the windowed parallel engine ([`par::run_windowed`]).
pub fn run_mesh_scenario(cfg: ScenarioConfig, trace: &Trace) -> MeshRunResult {
    if cfg.mesh.shards <= 1 {
        let testbed = Testbed::build(cfg, trace.service_addrs.clone());
        return MeshRunResult::from_single(testbed.run_trace(trace));
    }
    let threads = cfg.mesh.threads;
    par::run_windowed(cfg, trace, threads)
}

/// Generate `cfg`'s workload (its `workload:` block — arrival model, mix,
/// mobility) and run it through [`run_mesh_scenario`]. Generation goes
/// through `testbed::generate_workload`, the same path as
/// `testbed::run_bigflows`, so `shards = 1` replays that run exactly.
pub fn run_mesh_bigflows(cfg: ScenarioConfig) -> (Trace, MeshRunResult) {
    let trace = bigflows_trace(&cfg);
    let result = run_mesh_scenario(cfg, &trace);
    (trace, result)
}

/// [`run_mesh_bigflows`] with the mesh-coherence audit riding along — the
/// `edgesim verify` entry point for `mesh:` scenarios. Requires
/// `cfg.mesh.shards >= 2`.
pub fn run_mesh_bigflows_audited(cfg: ScenarioConfig) -> (Trace, MeshRunResult, Vec<Violation>) {
    assert!(
        cfg.mesh.shards >= 2,
        "single-shard scenarios audit through the plain testbed path"
    );
    let trace = bigflows_trace(&cfg);
    let threads = cfg.mesh.threads;
    let (result, violations) = par::run_windowed_audited(cfg, &trace, threads);
    (trace, result, violations)
}

fn bigflows_trace(cfg: &ScenarioConfig) -> Trace {
    testbed::generate_workload(cfg)
}

/// Build the session-continuity accounting for a multi-shard run: per-tag
/// completion counts from the completion records plus the loss ledger, ready
/// for [`edgeverify::Verifier::check_continuity`]. Returns `None` for the
/// `shards = 1` delegation (the plain testbed keeps no per-tag ledger — its
/// single event loop cannot blackhole a session across a handover, the
/// failure mode the analysis exists for).
pub fn continuity_view(trace: &Trace, result: &MeshRunResult) -> Option<ContinuityView> {
    if result.single.is_some() {
        return None;
    }
    Some(continuity_view_parts(
        trace,
        &result.records,
        &result.lost_tags,
    ))
}

pub(crate) fn continuity_view_parts(
    trace: &Trace,
    records: &[MeshRecord],
    lost_tags: &[u64],
) -> ContinuityView {
    let mut completions = vec![0u32; trace.requests.len()];
    for r in records {
        if let Some(c) = completions.get_mut(r.tag as usize) {
            *c += 1;
        }
    }
    ContinuityView {
        clients: trace.requests.iter().map(|r| r.client as u32).collect(),
        completions,
        lost: lost_tags.to_vec(),
    }
}
