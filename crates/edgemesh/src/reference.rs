//! The federated event loop: `N` ingress switches, `N` controllers, one set
//! of shared edge sites, and a deterministic asynchronous gossip layer in
//! between.
//!
//! Clients are partitioned statically — client `i` enters the fabric through
//! ingress shard `i % N` (a 5G UPF pins a UE's N6 traffic to one ingress the
//! same way). Each shard runs the unmodified `edgectl` controller over its
//! own switch: PacketIn, FlowMod, buffered-packet release and wakeups all
//! work exactly as in the single-controller [`testbed`], just indexed by
//! shard. What is new:
//!
//! * after **every** event, each controller's pending [`StatusDelta`]s are
//!   drained and scheduled for delivery to every other shard at
//!   `now + link_latency`; losses are pre-rolled at send time from a
//!   dedicated RNG stream (a lost delivery retries after `gossip_interval`),
//!   so the whole mesh — including a lossy one — replays byte-identically
//!   under the same seed;
//! * after every event the per-shard in-flight deployment sets are
//!   intersected; a `(service, cluster)` deploying on two shards at once is
//!   a **duplicate deployment** (the split-brain failure the lease protocol
//!   exists to prevent) and is recorded for [`MeshRunResult`] and the mesh
//!   audit;
//! * requests complete with a simplified release model (forwarded = served,
//!   dropped = lost); flow-level TCP timing stays the single-controller
//!   testbed's concern, the mesh artifact measures coordination behaviour.
//!
//! This module is the **interleaved reference engine**: one global event
//! queue, every shard's events executed in a single stream. It is the
//! executable specification that the windowed parallel engine
//! ([`crate::par`]) is held equivalent to by the lockstep model test.
//! `shards = 1` never builds a [`MeshSim`] at all:
//! [`crate::run_mesh_scenario`] delegates to [`testbed::Testbed`], keeping
//! pinned traces byte-identical.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use cluster::{
    ClusterBackend, ClusterKind, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate,
};
use containers::Runtime;
use edgectl::{Controller, ControllerOutput, RoundRobinLocal, SchedulerRegistry, StatusDelta};
use edgeverify::{MeshView, Verifier, Violation};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PacketVerdict, PortId, Switch};
use simnet::{Packet, SocketAddr};
use testbed::topology::NodeClass;
use testbed::{C3Topology, PhaseSetup, ScenarioConfig, CLOUD_PORT};
use workload::{departures, ingress_at, ServiceProfile, Trace};

use crate::lease::LeaseTable;
use crate::result::{MeshRecord, MeshRunResult, ShardSummary};
use crate::shared::{share, SharedBackend, SharedHandle};

/// Latency of each shard's SDN control channel (same figure as the
/// single-controller testbed: switch and controller share the EGS).
const CTRL_LATENCY: SimDuration = SimDuration::from_micros(150);

/// Retransmission cap per delta delivery. With `loss < 1` the chance of
/// hitting it is astronomically small; it exists so a pre-rolled loss chain
/// always terminates.
const MAX_RETRANSMITS: u32 = 64;

/// Events of the mesh simulation.
enum Ev {
    /// A client's SYN reaches its shard's ingress switch.
    Syn { tag: u64 },
    /// A PacketIn reaches shard `shard`'s controller.
    CtrlPacketIn {
        shard: usize,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    },
    /// A controller output reaches its shard's switch.
    Apply {
        shard: usize,
        output: ControllerOutput,
    },
    /// Shard `shard`'s controller asked to be woken.
    Wakeup { shard: usize },
    /// `client` hands over away from ingress `shard` — the departing
    /// controller tears down the client's flows.
    Handover { shard: usize, client: usize },
    /// A gossiped status delta arrives at shard `to`.
    Deliver {
        to: usize,
        seq: u64,
        delta: StatusDelta,
    },
}

/// One ingress shard: its switch and its controller.
struct Shard {
    switch: Switch,
    controller: Controller,
}

struct InFlight {
    shard: usize,
    client: usize,
    service: usize,
}

/// Tracks one delta's propagation for the convergence metric.
struct PendingDelta {
    origin: SimTime,
    latest: SimTime,
    remaining: usize,
}

/// The assembled mesh.
pub struct MeshSim {
    cfg: ScenarioConfig,
    c3: C3Topology,
    shards: Vec<Shard>,
    /// One shared backend per edge site, in site order.
    handles: Vec<SharedHandle>,
    lease: Option<LeaseTable>,
    templates: Vec<ServiceTemplate>,
    service_addrs: Vec<SocketAddr>,
    gossip_rng: SimRng,
    events: EventQueue<Ev>,
    in_flight: Vec<Option<InFlight>>,
    records: Vec<MeshRecord>,
    lost: u64,
    /// Tags of requests accounted as lost, for the session-continuity
    /// analysis (a tag neither completed nor here was blackholed).
    lost_tags: Vec<u64>,
    delta_seq: u64,
    deltas_sent: u64,
    deltas_lost: u64,
    delta_deliveries: u64,
    staleness_ns_total: u128,
    convergence_ns_total: u128,
    converged_deltas: u64,
    pending_convergence: BTreeMap<u64, PendingDelta>,
    /// `(service, cluster)` pairs seen deploying on ≥ 2 shards at once, with
    /// the shards involved.
    duplicates: BTreeMap<(u32, usize), BTreeSet<usize>>,
    /// Earliest armed wakeup per shard (same idempotent contract as the
    /// single-controller testbed).
    wakeup_armed: Vec<Option<SimTime>>,
    last_event: SimTime,
}

impl MeshSim {
    /// Build a mesh for `cfg` over the given cloud service addresses.
    /// `cfg.mesh.shards` must be ≥ 2 — one controller is the plain
    /// [`testbed::Testbed`] (see [`crate::run_mesh_scenario`]).
    pub fn build(cfg: ScenarioConfig, service_addrs: Vec<SocketAddr>) -> MeshSim {
        let n = cfg.mesh.shards;
        assert!(
            n >= 2,
            "MeshSim needs >= 2 shards; one controller is the plain Testbed"
        );
        let rng = SimRng::seed_from_u64(cfg.seed);
        let sites = cfg.resolved_sites();
        let c3 = C3Topology::build_sites(
            &sites.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
            cfg.clients,
        );
        let profile = ServiceProfile::of(cfg.service);

        // One shared backend per site — identical construction to the
        // single-controller testbed, shared by every shard.
        let mut handles: Vec<SharedHandle> = Vec::with_capacity(sites.len());
        for (i, (spec, kind)) in sites.iter().enumerate() {
            let nodes = spec.nodes.max(1) as u32;
            let runtime = match spec.class {
                NodeClass::Egs => Runtime::new(
                    containers::CostModel::egs(),
                    rng.stream(&format!("rt-{i}")),
                    12_000 * nodes,
                    32 * (1u64 << 30) * nodes as u64,
                ),
                NodeClass::RaspberryPi => Runtime::new(
                    containers::CostModel::raspberry_pi(),
                    rng.stream(&format!("rt-{i}")),
                    4_000 * nodes,
                    4 * (1u64 << 30) * nodes as u64,
                ),
            };
            let ip = c3.site_ips[i];
            let backend: Box<dyn ClusterBackend> = match kind {
                ClusterKind::Docker => Box::new(DockerCluster::new(
                    format!("{}-docker", spec.name),
                    ip,
                    runtime,
                    rng.stream(&format!("docker-{i}")),
                )),
                ClusterKind::Kubernetes => Box::new(K8sCluster::new(
                    format!("{}-k8s", spec.name),
                    ip,
                    runtime,
                    rng.stream(&format!("k8s-{i}")),
                    cfg.k8s_timings.clone().unwrap_or_else(K8sTimings::egs),
                )),
                ClusterKind::Wasm => Box::new(cluster::WasmEdgeCluster::new(
                    format!("{}-wasm", spec.name),
                    ip,
                    rng.stream(&format!("wasm-{i}")),
                    cluster::WasmTimings::egs(),
                )),
            };
            handles.push(share(backend));
        }

        let lease = cfg.mesh.leases.then(LeaseTable::new);

        let mut templates = Vec::with_capacity(service_addrs.len());
        for i in 0..service_addrs.len() {
            let mut template = profile.template.clone();
            template.name = format!("{}-{i:02}", profile.template.name);
            templates.push(template);
        }

        let mut shards = Vec::with_capacity(n);
        for s in 0..n {
            let global = SchedulerRegistry::builtin()
                .create(&cfg.scheduler)
                .unwrap_or_else(|e| panic!("scenario scheduler: {e}"));
            let mut builder = Controller::builder(cfg.controller.clone())
                .global(global)
                .local(RoundRobinLocal::default())
                .registries(workload::services::standard_registries(
                    cfg.private_registry,
                ))
                .cloud_port(CLOUD_PORT)
                .emit_status_deltas();
            if let Some(table) = &lease {
                builder = builder.deploy_gate(table.handle(s));
            }
            let mut controller = builder.build();
            for (i, handle) in handles.iter().enumerate() {
                let id = controller.attach_cluster(
                    Box::new(SharedBackend::new(handle.clone())),
                    c3.switch_site_latency(i),
                    c3.site_port(i),
                );
                controller.configure_site(id, sites[i].0.capacity, sites[i].0.labels.clone());
            }
            // Identical registration order on every shard, so ServiceId
            // values are comparable across controllers (gossip relies on it).
            for (i, addr) in service_addrs.iter().enumerate() {
                controller.catalog.register(*addr, templates[i].clone());
            }
            let mut switch = Switch::new(c3.port_count());
            for spec in cfg.seed_flows.clone() {
                switch.flow_mod(SimTime::ZERO, spec);
            }
            shards.push(Shard { switch, controller });
        }

        let wakeup_armed = vec![None; n];
        MeshSim {
            cfg,
            c3,
            shards,
            handles,
            lease,
            templates,
            service_addrs,
            gossip_rng: rng.stream("mesh-gossip"),
            events: EventQueue::new(),
            in_flight: Vec::new(),
            records: Vec::new(),
            lost: 0,
            lost_tags: Vec::new(),
            delta_seq: 0,
            deltas_sent: 0,
            deltas_lost: 0,
            delta_deliveries: 0,
            staleness_ns_total: 0,
            convergence_ns_total: 0,
            converged_deltas: 0,
            pending_convergence: BTreeMap::new(),
            duplicates: BTreeMap::new(),
            wakeup_armed,
            last_event: SimTime::ZERO,
        }
    }

    /// The shared lease table, for inspection in tests.
    pub fn lease_table(&self) -> Option<&LeaseTable> {
        self.lease.as_ref()
    }

    /// Run a full trace through the mesh.
    pub fn run_trace(mut self, trace: &Trace) -> MeshRunResult {
        self.run_inner(trace);
        self.finish()
    }

    /// Like [`MeshSim::run_trace`], plus the mesh-coherence audit over the
    /// final state and the split-brain duplicates observed during the run.
    pub fn run_trace_audited(mut self, trace: &Trace) -> (MeshRunResult, Vec<Violation>) {
        self.run_inner(trace);
        let violations = self.audit();
        (self.finish(), violations)
    }

    fn run_inner(&mut self, trace: &Trace) {
        assert_eq!(
            trace.service_addrs, self.service_addrs,
            "mesh must be built with the trace's addresses"
        );
        let setup_end = self.prewarm();
        let offset = (setup_end - SimTime::ZERO) + SimDuration::from_secs(5);
        let n = self.shards.len();
        self.in_flight.resize_with(trace.requests.len(), || None);
        for (idx, req) in trace.requests.iter().enumerate() {
            // Ingress assignment is a static function of the trace (home
            // shard advanced by the client's prior handovers), so both
            // engines agree on it by construction.
            let shard = ingress_at(&trace.handovers, req.client, req.at, n);
            let at = req.at + offset + self.c3.client_switch_latency(req.client);
            self.in_flight[idx] = Some(InFlight {
                shard,
                client: req.client,
                service: req.service,
            });
            self.events.push(at, Ev::Syn { tag: idx as u64 });
        }
        for (shard, h) in departures(&trace.handovers, n) {
            self.events.push(
                h.at + offset,
                Ev::Handover {
                    shard,
                    client: h.client,
                },
            );
        }
        self.run_loop();
    }

    /// Pre-warm every shared site once (not once per shard — the sites are
    /// shared), mirroring the single-controller testbed's setup.
    fn prewarm(&mut self) -> SimTime {
        let setup = self.cfg.phase_setup;
        if setup == PhaseSetup::Cold {
            return SimTime::ZERO;
        }
        let registries = workload::services::standard_registries(self.cfg.private_registry);
        let mut t_end = SimTime::ZERO;
        for (c, handle) in self.handles.iter().enumerate() {
            if let Some(only) = &self.cfg.prewarm_sites {
                if !only.contains(&c) {
                    continue;
                }
            }
            let mut cluster = handle.borrow_mut();
            let mut t = SimTime::ZERO;
            for template in &self.templates {
                t = cluster
                    .pull(t, template, &registries)
                    .expect("prewarm pull");
                if matches!(setup, PhaseSetup::Created | PhaseSetup::Running) {
                    t = cluster.create(t, template).expect("prewarm create");
                }
                if setup == PhaseSetup::Running {
                    t = cluster
                        .scale_up(t, &template.name, 1)
                        .expect("prewarm scale-up")
                        .expected_ready;
                }
            }
            t_end = t_end.max(t);
        }
        t_end
    }

    fn run_loop(&mut self) {
        while let Some((now, ev)) = self.events.pop() {
            self.last_event = now;
            for shard in &mut self.shards {
                shard.switch.sweep(now);
            }
            match ev {
                Ev::Syn { tag } => self.on_syn(now, tag),
                Ev::CtrlPacketIn {
                    shard,
                    packet,
                    buffer_id,
                    in_port,
                } => self.on_packet_in(now, shard, packet, buffer_id, in_port),
                Ev::Apply { shard, output } => self.on_apply(now, shard, output),
                Ev::Wakeup { shard } => self.on_wakeup(now, shard),
                Ev::Handover { shard, client } => self.on_handover(now, shard, client),
                Ev::Deliver { to, seq, delta } => self.on_deliver(now, to, seq, delta),
            }
            // Any event can produce status deltas (machine finalized on a
            // wakeup, scale-down in housekeeping, …) or change deployment
            // state: gossip, then scan for split-brain, then re-arm wakeups.
            self.pump_gossip(now);
            self.scan_duplicates(now);
            for s in 0..self.shards.len() {
                self.arm_wakeup(s, now);
            }
        }
    }

    fn on_syn(&mut self, now: SimTime, tag: u64) {
        let (shard, client, service) = {
            let fl = self.in_flight[tag as usize]
                .as_ref()
                .expect("SYN for untracked request tag");
            (fl.shard, fl.client, fl.service)
        };
        let src = SocketAddr::new(self.c3.client_ips[client], 40000 + service as u16);
        let packet = Packet::syn(src, self.service_addrs[service], tag);
        match self.shards[shard].switch.receive(now, packet) {
            PacketVerdict::Forward { out_port, .. } => self.complete(now, tag, out_port),
            PacketVerdict::PacketIn { buffer_id, packet } => {
                let in_port = self.c3.client_port(client);
                self.events.push(
                    now + CTRL_LATENCY,
                    Ev::CtrlPacketIn {
                        shard,
                        packet,
                        buffer_id,
                        in_port,
                    },
                );
            }
            PacketVerdict::Dropped => {
                self.lost += 1;
                self.lost_tags.push(tag);
                self.in_flight[tag as usize] = None;
            }
        }
    }

    fn on_packet_in(
        &mut self,
        now: SimTime,
        shard: usize,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    ) {
        let outputs = self.shards[shard]
            .controller
            .on_packet_in(now, packet, buffer_id, in_port);
        for output in outputs {
            let at = output.at() + CTRL_LATENCY;
            self.events.push(at, Ev::Apply { shard, output });
        }
    }

    fn on_apply(&mut self, now: SimTime, shard: usize, output: ControllerOutput) {
        match output {
            ControllerOutput::FlowMod { spec, .. } => {
                self.shards[shard].switch.flow_mod(now, spec);
            }
            ControllerOutput::ReleaseViaTable { buffer_id, .. } => {
                let tag = self.shards[shard]
                    .switch
                    .buffered_packet(buffer_id)
                    .map(|p| p.tag);
                match self.shards[shard]
                    .switch
                    .packet_out_via_table(now, buffer_id)
                {
                    Some(PacketVerdict::Forward { packet, out_port }) => {
                        self.complete(now, packet.tag, out_port);
                    }
                    Some(_) | None => {
                        self.lost += 1;
                        if let Some(tag) = tag {
                            self.lost_tags.push(tag);
                            self.in_flight[tag as usize] = None;
                        }
                    }
                }
            }
            ControllerOutput::DropBuffered { buffer_id, .. } => {
                if let Some(packet) = self.shards[shard].switch.discard_buffer(buffer_id) {
                    self.lost_tags.push(packet.tag);
                    self.in_flight[packet.tag as usize] = None;
                }
                self.lost += 1;
            }
            ControllerOutput::FlowDelete { matcher, .. } => {
                self.shards[shard]
                    .switch
                    .table
                    .delete_matching(now, &matcher);
            }
        }
    }

    fn on_handover(&mut self, now: SimTime, shard: usize, client: usize) {
        let client_ip = self.c3.client_ips[client];
        let outputs = self.shards[shard]
            .controller
            .on_client_handover(now, client_ip);
        for output in outputs {
            let at = output.at() + CTRL_LATENCY;
            self.events.push(at, Ev::Apply { shard, output });
        }
    }

    fn on_wakeup(&mut self, now: SimTime, shard: usize) {
        self.wakeup_armed[shard] = None;
        let outputs = self.shards[shard].controller.on_wakeup(now);
        for output in outputs {
            let at = output.at() + CTRL_LATENCY;
            self.events.push(at, Ev::Apply { shard, output });
        }
    }

    fn on_deliver(&mut self, now: SimTime, to: usize, seq: u64, delta: StatusDelta) {
        self.delta_deliveries += 1;
        self.staleness_ns_total += now.since(delta.origin).as_nanos() as u128;
        if let Some(p) = self.pending_convergence.get_mut(&seq) {
            p.latest = p.latest.max(now);
            p.remaining -= 1;
            if p.remaining == 0 {
                let p = self
                    .pending_convergence
                    .remove(&seq)
                    .expect("entry checked above");
                self.convergence_ns_total += p.latest.since(p.origin).as_nanos() as u128;
                self.converged_deltas += 1;
            }
        }
        self.shards[to].controller.apply_remote_delta(now, &delta);
    }

    /// Drain every shard's pending deltas and schedule their deliveries.
    /// Losses are pre-rolled *at send time*: the delivery event is pushed at
    /// its final (post-retransmission) instant, so the trace is a pure
    /// function of the seed regardless of loss.
    fn pump_gossip(&mut self, now: SimTime) {
        let n = self.shards.len();
        for s in 0..n {
            let deltas = self.shards[s].controller.drain_status_deltas();
            for delta in deltas {
                let seq = self.delta_seq;
                self.delta_seq += 1;
                self.pending_convergence.insert(
                    seq,
                    PendingDelta {
                        origin: delta.origin,
                        latest: SimTime::ZERO,
                        remaining: n - 1,
                    },
                );
                for t in 0..n {
                    if t == s {
                        continue;
                    }
                    self.deltas_sent += 1;
                    let mut at = now + self.cfg.mesh.link_latency;
                    let mut tries = 0;
                    while tries < MAX_RETRANSMITS && self.gossip_rng.chance(self.cfg.mesh.loss) {
                        self.deltas_lost += 1;
                        at += self.cfg.mesh.gossip_interval;
                        tries += 1;
                    }
                    self.events.push(at, Ev::Deliver { to: t, seq, delta });
                }
            }
        }
    }

    /// Record any `(service, cluster)` currently deploying on two or more
    /// shards — the split-brain duplicate the lease protocol prevents.
    fn scan_duplicates(&mut self, now: SimTime) {
        let mut holders: BTreeMap<(u32, usize), Vec<usize>> = BTreeMap::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for (svc, cluster) in shard.controller.in_flight_deployments(now) {
                holders.entry((svc.0, cluster.0)).or_default().push(s);
            }
        }
        for (key, involved) in holders {
            if involved.len() >= 2 {
                self.duplicates.entry(key).or_default().extend(involved);
            }
        }
    }

    fn arm_wakeup(&mut self, shard: usize, now: SimTime) {
        if let Some(at) = self.shards[shard].controller.next_wakeup() {
            let at = at.max(now);
            if self.wakeup_armed[shard].is_none_or(|t| at < t) {
                self.events.push(at, Ev::Wakeup { shard });
                self.wakeup_armed[shard] = Some(at);
            }
        }
    }

    fn complete(&mut self, now: SimTime, tag: u64, out_port: PortId) {
        if let Some(fl) = self.in_flight.get_mut(tag as usize).and_then(Option::take) {
            self.records.push(MeshRecord {
                tag,
                shard: fl.shard,
                released: now,
                port: out_port.0,
            });
        }
    }

    /// The mesh-coherence audit: `edgeverify`'s static checks over the final
    /// state, plus the split-brain duplicates observed while the run was
    /// live (the final snapshot alone would miss them — machines drain).
    pub fn audit(&self) -> Vec<Violation> {
        let now = self.last_event;
        let verifier = Verifier::new();
        let mut view = MeshView {
            in_flight: Vec::with_capacity(self.shards.len()),
            redirects: Vec::with_capacity(self.shards.len()),
            ready: HashSet::new(),
        };
        for shard in &self.shards {
            view.in_flight.push(
                shard
                    .controller
                    .in_flight_deployments(now)
                    .into_iter()
                    .map(|(svc, c)| (svc.0, c.0))
                    .collect(),
            );
            view.redirects.push(
                shard
                    .controller
                    .memory()
                    .iter()
                    .filter(|f| !f.pending)
                    .filter_map(|f| f.cluster.map(|c| (f.service.0, c.0)))
                    .collect(),
            );
        }
        for (c, handle) in self.handles.iter().enumerate() {
            let cluster = handle.borrow();
            for (i, template) in self.templates.iter().enumerate() {
                if cluster.status(now, &template.name).is_ready() {
                    view.ready.insert((i as u32, c));
                }
            }
        }
        let mut out = verifier.check_mesh(&view);
        for (&(service, cluster), involved) in &self.duplicates {
            let v = Violation::SplitBrainDeployment {
                service,
                cluster,
                shards: involved.iter().copied().collect(),
            };
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    fn finish(mut self) -> MeshRunResult {
        self.lost_tags.sort_unstable();
        let handovers = self
            .shards
            .iter()
            .map(|s| s.controller.stats.handovers)
            .sum();
        let shard_stats: Vec<ShardSummary> = self
            .shards
            .iter()
            .map(|s| {
                let st = &s.controller.stats;
                ShardSummary {
                    deployments: st.deployments.len() as u64,
                    memory_hits: st.memory_hits,
                    cloud_forwards: st.cloud_forwards,
                    held_requests: st.held_requests,
                    detoured_requests: st.detoured_requests,
                    retargets: st.retargets,
                    scale_downs: st.scale_downs,
                    removes: st.removals,
                    lease_rejections: st.lease_rejections,
                    lease_revocations: 0,
                    remote_deltas: st.remote_deltas,
                }
            })
            .collect();
        let total = |f: fn(&ShardSummary) -> u64| shard_stats.iter().map(f).sum::<u64>();
        MeshRunResult {
            shards: self.shards.len(),
            threads: 1,
            leases: self.cfg.mesh.leases,
            completed: self.records.len() as u64,
            lost: self.lost,
            deployments: total(|s| s.deployments),
            duplicate_deployments: self.duplicates.len() as u64,
            duplicate_deployments_avoided: total(|s| s.lease_rejections),
            lease_revocations: 0,
            deltas_sent: self.deltas_sent,
            deltas_lost: self.deltas_lost,
            delta_deliveries: self.delta_deliveries,
            staleness_ns_total: self.staleness_ns_total,
            convergence_ns_total: self.convergence_ns_total,
            converged_deltas: self.converged_deltas,
            scale_downs: total(|s| s.scale_downs),
            removes: total(|s| s.removes),
            retargets: total(|s| s.retargets),
            handovers,
            windows: 0,
            barrier_stalls: 0,
            events: self.events.scheduled_total(),
            shard_stats,
            records: self.records,
            lost_tags: self.lost_tags,
            single: None,
        }
    }
}
