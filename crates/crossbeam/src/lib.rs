//! Offline stand-in for the crates.io `crossbeam` facade.
//!
//! The build container has no network access to a cargo registry, so the
//! workspace vendors the (tiny) slice of crossbeam it actually uses:
//! [`scope`] / [`Scope::spawn`], implemented on top of [`std::thread::scope`],
//! which provides the same structured-concurrency guarantee (all spawned
//! threads join before `scope` returns, so borrowing from the enclosing stack
//! frame is safe).
//!
//! Behavioural difference to real crossbeam: a panicking child thread makes
//! the enclosing `std::thread::scope` re-raise the panic at join time instead
//! of surfacing it through the returned `Result`. Callers that `.expect()` the
//! result (as this workspace does) observe a panic either way.

use std::thread;

/// Result type of [`scope`], matching `crossbeam::thread::ScopeResult`.
pub type ScopeResult<T> = Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// A handle to the scope in which child threads run, passed both to the
/// closure given to [`scope`] and to every spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope handle so it can
    /// spawn further threads, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Sub-module alias so `crossbeam::thread::scope` also resolves.
pub mod thread_shim {
    pub use super::{scope, Scope, ScopeResult};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_and_allows_borrows() {
        let counter = AtomicU64::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
