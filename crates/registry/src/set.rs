//! A set of registries with image-based routing: images pull from the
//! registry that publishes them (Docker Hub for `nginx`, GCR for the ResNet
//! image), unless a *mirror* is configured — the paper's private LAN registry
//! scenario, where all images pull locally.

use containers::ImageRef;

use crate::pull::Registry;

/// Routes pulls to the right registry.
#[derive(Debug, Clone, Default)]
pub struct RegistrySet {
    registries: Vec<Registry>,
    /// Index of a registry that mirrors everything (preferred when it has
    /// the image).
    mirror: Option<usize>,
}

impl RegistrySet {
    pub fn new() -> RegistrySet {
        RegistrySet::default()
    }

    /// Add a registry; returns its index.
    pub fn add(&mut self, registry: Registry) -> usize {
        self.registries.push(registry);
        self.registries.len() - 1
    }

    /// Add a registry and prefer it for every image it carries (the private
    /// LAN registry of Fig. 13's "private registry" series).
    pub fn add_mirror(&mut self, registry: Registry) -> usize {
        let idx = self.add(registry);
        self.mirror = Some(idx);
        idx
    }

    pub fn clear_mirror(&mut self) {
        self.mirror = None;
    }

    /// The registry a pull of `image` will hit: the mirror if it has the
    /// image, else the first registry that publishes it.
    pub fn route(&self, image: &ImageRef) -> Option<&Registry> {
        if let Some(m) = self.mirror {
            if self.registries[m].has(image) {
                return Some(&self.registries[m]);
            }
        }
        self.registries.iter().find(|r| r.has(image))
    }

    pub fn len(&self) -> usize {
        self.registries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.registries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RegistryProfile;
    use containers::image::synthesize_layers;
    use containers::ImageManifest;

    fn set() -> RegistrySet {
        let mut hub = Registry::new(RegistryProfile::docker_hub());
        hub.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 1000, 2),
        ));
        let mut gcr = Registry::new(RegistryProfile::gcr());
        gcr.publish(ImageManifest::new(
            "gcr.io/tensorflow-serving/resnet",
            synthesize_layers(2, 5000, 3),
        ));
        let mut s = RegistrySet::new();
        s.add(hub);
        s.add(gcr);
        s
    }

    #[test]
    fn routes_by_catalog() {
        let s = set();
        assert_eq!(
            s.route(&ImageRef::new("nginx:1.23.2"))
                .unwrap()
                .profile
                .name,
            "docker-hub"
        );
        assert_eq!(
            s.route(&ImageRef::new("gcr.io/tensorflow-serving/resnet"))
                .unwrap()
                .profile
                .name,
            "gcr"
        );
        assert!(s.route(&ImageRef::new("ghost")).is_none());
    }

    #[test]
    fn mirror_preferred_when_it_has_the_image() {
        let mut s = set();
        let mut lan = Registry::new(RegistryProfile::private_lan());
        lan.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 1000, 2),
        ));
        s.add_mirror(lan);
        assert_eq!(
            s.route(&ImageRef::new("nginx:1.23.2"))
                .unwrap()
                .profile
                .name,
            "private-lan"
        );
        // mirror lacks resnet → falls through to gcr
        assert_eq!(
            s.route(&ImageRef::new("gcr.io/tensorflow-serving/resnet"))
                .unwrap()
                .profile
                .name,
            "gcr"
        );
        s.clear_mirror();
        assert_eq!(
            s.route(&ImageRef::new("nginx:1.23.2"))
                .unwrap()
                .profile
                .name,
            "docker-hub"
        );
    }
}
