//! The pull operation: manifest fetch, bounded-concurrency layer downloads,
//! extraction, and the image-store update.

use std::collections::HashMap;

use containers::{ImageManifest, ImageRef, ImageStore, Layer};
use simcore::{SimDuration, SimRng, SimTime};

use crate::profile::RegistryProfile;

/// A registry: a catalog of published images behind a connection profile.
#[derive(Debug, Clone)]
pub struct Registry {
    pub profile: RegistryProfile,
    images: HashMap<ImageRef, ImageManifest>,
}

/// Result of a completed pull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PullOutcome {
    /// When the image is fully present on disk and usable.
    pub completed_at: SimTime,
    /// Compressed bytes actually downloaded (skips cached layers).
    pub bytes_downloaded: u64,
    /// Layers actually downloaded.
    pub layers_downloaded: usize,
    /// Layers skipped because they were already on disk.
    pub layers_cached: usize,
}

impl PullOutcome {
    /// Did this pull move any bytes at all?
    pub fn was_cached(&self) -> bool {
        self.layers_downloaded == 0
    }
}

/// Pull failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PullError {
    /// The registry does not serve this image.
    UnknownImage(ImageRef),
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullError::UnknownImage(i) => write!(f, "image {i} not found in registry"),
        }
    }
}
impl std::error::Error for PullError {}

impl Registry {
    pub fn new(profile: RegistryProfile) -> Registry {
        Registry {
            profile,
            images: HashMap::new(),
        }
    }

    /// Publish an image so nodes can pull it.
    pub fn publish(&mut self, manifest: ImageManifest) {
        self.images.insert(manifest.reference.clone(), manifest);
    }

    pub fn has(&self, image: &ImageRef) -> bool {
        self.images.contains_key(image)
    }

    pub fn manifest(&self, image: &ImageRef) -> Option<&ImageManifest> {
        self.images.get(image)
    }

    /// Pull `image` into `store`, starting at `now`.
    ///
    /// Timing model (see crate docs):
    /// 1. manifest fetch (auth + HTTP) — once;
    /// 2. missing layers download in waves of at most
    ///    `max_concurrent_layers`; concurrent downloads share the bottleneck
    ///    bandwidth, so body time is `serialization(total bytes)`, while
    ///    per-layer request/verify overheads parallelize across the window;
    /// 3. extraction of downloaded layers is sequential (containerd applies
    ///    layers in order) at `extract_bytes_per_sec`, overlapped with the
    ///    tail of the download except for the final layer.
    ///
    /// If every layer is already on disk, only the manifest check is paid
    /// (the "image cached" fast path of Fig. 4).
    ///
    /// The image becomes visible in `store` immediately, but is only truly
    /// usable at `completed_at`; callers must sequence container creation
    /// after that instant (the cluster control planes do).
    pub fn pull(
        &self,
        now: SimTime,
        image: &ImageRef,
        store: &mut ImageStore,
        rng: &mut SimRng,
    ) -> Result<PullOutcome, PullError> {
        let manifest = self
            .images
            .get(image)
            .ok_or_else(|| PullError::UnknownImage(image.clone()))?;

        if store.has_image(image) {
            // Image already present: no network activity at all.
            return Ok(PullOutcome {
                completed_at: now,
                bytes_downloaded: 0,
                layers_downloaded: 0,
                layers_cached: manifest.layer_count(),
            });
        }

        let missing = store.missing_layers(manifest);
        let cached = manifest.layer_count() - missing.len();
        let mut elapsed = self.profile.manifest_fetch.sample(rng);

        if !missing.is_empty() {
            elapsed += self.download_time(&missing, rng);
            elapsed += self.extract_tail_time(&missing);
        }

        store.add_image(manifest.clone());
        Ok(PullOutcome {
            completed_at: now + elapsed,
            bytes_downloaded: missing.iter().map(|l| l.compressed_bytes).sum(),
            layers_downloaded: missing.len(),
            layers_cached: cached,
        })
    }

    /// Body + per-layer overhead time for the missing set.
    fn download_time(&self, missing: &[Layer], rng: &mut SimRng) -> SimDuration {
        let total_bytes: u64 = missing.iter().map(|l| l.compressed_bytes).sum();
        let conc = self.profile.max_concurrent_layers.max(1);
        // Overheads parallelize across the concurrency window: sum of waves,
        // where each wave pays its largest overhead.
        let mut overheads: Vec<SimDuration> = missing
            .iter()
            .map(|_| self.profile.per_layer_overhead.sample(rng))
            .collect();
        overheads.sort_unstable();
        overheads.reverse();
        let wave_overhead: SimDuration = overheads.chunks(conc).map(|w| w[0]).sum();
        // Connection setup + slow start happen per wave too; approximate with
        // one connect per wave plus body serialization of everything.
        let waves = missing.len().div_ceil(conc) as u64;
        let handshakes = self.profile.tcp.connect_time() * waves;
        let body = self.profile.tcp.serialization(total_bytes)
            + self.profile.tcp.rtt * slow_start_rtts(total_bytes.min(1 << 22));
        handshakes + wave_overhead + body
    }

    /// Only the final layer's extraction is exposed; earlier layers extract
    /// while later ones download.
    fn extract_tail_time(&self, missing: &[Layer]) -> SimDuration {
        let last = missing.last().map(|l| l.uncompressed_bytes).unwrap_or(0);
        SimDuration::from_secs_f64(last as f64 / self.profile.extract_bytes_per_sec as f64)
    }
}

/// Rough count of slow-start round trips to open the congestion window for a
/// transfer of `bytes` (capped by the caller at the point where the pipe is
/// full).
fn slow_start_rtts(bytes: u64) -> u64 {
    const IW_BYTES: u64 = 14_600; // 10 segments
    let mut window = IW_BYTES;
    let mut sent = 0;
    let mut rtts = 0;
    while sent + window < bytes {
        sent += window;
        window *= 2;
        rtts += 1;
    }
    rtts
}

#[cfg(test)]
mod tests {
    use super::*;
    use containers::image::synthesize_layers;

    fn hub() -> Registry {
        let mut r = Registry::new(crate::profile::RegistryProfile::docker_hub());
        r.publish(ImageManifest::new(
            "nginx:1.23.2",
            synthesize_layers(1, 141_000_000, 6),
        ));
        r.publish(ImageManifest::new(
            "josefhammer/web-asm:amd64",
            synthesize_layers(2, 6330, 1),
        ));
        r
    }

    fn lan() -> Registry {
        Registry {
            profile: crate::profile::RegistryProfile::private_lan(),
            images: hub().images,
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    fn pull_secs(reg: &Registry, image: &str, store: &mut ImageStore) -> f64 {
        let out = reg
            .pull(SimTime::ZERO, &ImageRef::new(image), store, &mut rng())
            .unwrap();
        out.completed_at.as_secs_f64()
    }

    #[test]
    fn unknown_image_fails() {
        let reg = hub();
        let mut store = ImageStore::new();
        let err = reg
            .pull(
                SimTime::ZERO,
                &ImageRef::new("ghost:latest"),
                &mut store,
                &mut rng(),
            )
            .unwrap_err();
        assert!(matches!(err, PullError::UnknownImage(_)));
    }

    #[test]
    fn tiny_image_pulls_fast_large_image_slow() {
        // Fig. 13 shape: asmttpd ≪ nginx.
        let reg = hub();
        let asm = pull_secs(&reg, "josefhammer/web-asm:amd64", &mut ImageStore::new());
        let nginx = pull_secs(&reg, "nginx:1.23.2", &mut ImageStore::new());
        assert!(asm < 1.5, "asm pull {asm} s");
        assert!(nginx > asm + 1.0, "nginx {nginx} s vs asm {asm} s");
        assert!(nginx < 15.0, "nginx {nginx} s unreasonably slow");
    }

    #[test]
    fn private_registry_saves_one_to_three_seconds_on_nginx() {
        // Paper: "pull times improve by about 1.5 to 2 seconds".
        let wan = pull_secs(&hub(), "nginx:1.23.2", &mut ImageStore::new());
        let lan = pull_secs(&lan(), "nginx:1.23.2", &mut ImageStore::new());
        let gap = wan - lan;
        assert!((0.8..4.0).contains(&gap), "wan={wan} lan={lan} gap={gap}");
    }

    #[test]
    fn cached_image_is_free() {
        let reg = hub();
        let mut store = ImageStore::new();
        let image = ImageRef::new("nginx:1.23.2");
        reg.pull(SimTime::ZERO, &image, &mut store, &mut rng())
            .unwrap();
        let again = reg
            .pull(
                SimTime::from_secs_f64(100.0),
                &image,
                &mut store,
                &mut rng(),
            )
            .unwrap();
        assert!(again.was_cached());
        assert_eq!(again.completed_at, SimTime::from_secs_f64(100.0));
        assert_eq!(again.layers_cached, 6);
    }

    #[test]
    fn shared_layers_shrink_second_pull() {
        let mut reg = hub();
        // nginx+py = nginx layers + one extra
        let mut layers = synthesize_layers(1, 141_000_000, 6);
        layers.extend(synthesize_layers(9, 46_000_000, 1));
        reg.publish(ImageManifest::new("nginx-py:combo", layers));

        let mut store = ImageStore::new();
        let mut r = rng();
        let first = reg
            .pull(
                SimTime::ZERO,
                &ImageRef::new("nginx:1.23.2"),
                &mut store,
                &mut r,
            )
            .unwrap();
        let second = reg
            .pull(
                first.completed_at,
                &ImageRef::new("nginx-py:combo"),
                &mut store,
                &mut r,
            )
            .unwrap();
        assert_eq!(second.layers_downloaded, 1, "only the py layer transfers");
        assert_eq!(second.layers_cached, 6);
        assert!(second.bytes_downloaded < first.bytes_downloaded / 2);
    }

    #[test]
    fn pull_time_grows_with_layer_count_at_equal_size() {
        // Same bytes, more layers → more per-layer overhead (paper §VI).
        let mut reg = hub();
        reg.publish(ImageManifest::new(
            "fat-1layer",
            synthesize_layers(11, 6_000_000, 1),
        ));
        reg.publish(ImageManifest::new(
            "fat-9layer",
            synthesize_layers(12, 6_000_000, 9),
        ));
        let one = pull_secs(&reg, "fat-1layer", &mut ImageStore::new());
        let nine = pull_secs(&reg, "fat-9layer", &mut ImageStore::new());
        assert!(nine > one, "nine={nine} one={one}");
    }

    #[test]
    fn outcome_accounting_consistent() {
        let reg = hub();
        let mut store = ImageStore::new();
        let out = reg
            .pull(
                SimTime::ZERO,
                &ImageRef::new("nginx:1.23.2"),
                &mut store,
                &mut rng(),
            )
            .unwrap();
        assert_eq!(out.layers_downloaded, 6);
        assert_eq!(out.layers_cached, 0);
        assert_eq!(out.bytes_downloaded, 141_000_000);
        assert!(store.has_image(&ImageRef::new("nginx:1.23.2")));
    }
}
