//! Registry connection profiles: where a registry lives on the network and
//! what its protocol overheads look like.

use simcore::{DurationDist, SimDuration};
use simnet::TcpModel;

/// Performance profile of one registry as seen from the pulling node.
#[derive(Debug, Clone)]
pub struct RegistryProfile {
    pub name: String,
    /// Path model from the edge node to the registry.
    pub tcp: TcpModel,
    /// Time for `GET /v2/<name>/manifests/<tag>` incl. auth round trips
    /// (token service on Docker Hub) — paid once per pull.
    pub manifest_fetch: DurationDist,
    /// Per-layer HTTP request + digest verification overhead (excludes the
    /// body transfer itself).
    pub per_layer_overhead: DurationDist,
    /// Local layer extraction speed (gunzip + untar), bytes/second of
    /// *uncompressed* data. A property of the pulling node, kept here because
    /// the evaluation always pulls onto the EGS.
    pub extract_bytes_per_sec: u64,
    /// Maximum concurrent layer downloads (Docker's default is 3).
    pub max_concurrent_layers: usize,
}

const MBPS: u64 = 1_000_000;
const GBPS: u64 = 1_000_000_000;

impl RegistryProfile {
    /// Docker Hub over the university WAN (paper's default source for the
    /// Nginx / asmttpd / env-writer images).
    pub fn docker_hub() -> RegistryProfile {
        RegistryProfile {
            name: "docker-hub".into(),
            tcp: TcpModel::new(SimDuration::from_millis(32), 600 * MBPS),
            manifest_fetch: DurationDist::log_normal_ms(420.0, 0.25),
            per_layer_overhead: DurationDist::log_normal_ms(130.0, 0.3),
            extract_bytes_per_sec: 280 * MBPS / 8 * 8, // ~280 MB/s on the EGS NVMe
            max_concurrent_layers: 3,
        }
    }

    /// Google Container Registry (the ResNet image's home).
    pub fn gcr() -> RegistryProfile {
        RegistryProfile {
            name: "gcr".into(),
            tcp: TcpModel::new(SimDuration::from_millis(28), 700 * MBPS),
            manifest_fetch: DurationDist::log_normal_ms(380.0, 0.25),
            per_layer_overhead: DurationDist::log_normal_ms(120.0, 0.3),
            extract_bytes_per_sec: 280 * MBPS / 8 * 8,
            max_concurrent_layers: 3,
        }
    }

    /// A private registry on the same LAN segment (paper §VI: improves pull
    /// times by about 1.5–2 s).
    pub fn private_lan() -> RegistryProfile {
        RegistryProfile {
            name: "private-lan".into(),
            tcp: TcpModel::new(SimDuration::from_micros(800), GBPS),
            manifest_fetch: DurationDist::log_normal_ms(18.0, 0.2),
            per_layer_overhead: DurationDist::log_normal_ms(6.0, 0.25),
            extract_bytes_per_sec: 280 * MBPS / 8 * 8,
            max_concurrent_layers: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_orderings() {
        let hub = RegistryProfile::docker_hub();
        let lan = RegistryProfile::private_lan();
        assert!(hub.tcp.rtt > lan.tcp.rtt * 10);
        assert!(hub.manifest_fetch.0.mean().unwrap() > lan.manifest_fetch.0.mean().unwrap());
        assert_eq!(hub.max_concurrent_layers, 3);
    }
}
