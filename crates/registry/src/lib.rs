//! # registry — simulated container image registries
//!
//! Models the Pull phase of the paper's deployment pipeline (Fig. 4, evaluated
//! in Fig. 13): fetching an image manifest and downloading/extracting the
//! missing layers from a registry, where the registry can be
//!
//! * **Docker Hub** — WAN round trips, token auth, moderate bandwidth,
//! * **Google Container Registry** — the ResNet image's home,
//! * **a private LAN registry** — the paper's alternative that improves pull
//!   times by ~1.5–2 s.
//!
//! The pull-time model accounts for what the paper highlights: total size
//! *and* layer count both matter (per-layer request/verify overhead, bounded
//! download concurrency), and layers already on disk — even from *other*
//! images — are skipped entirely.

pub mod profile;
pub mod pull;
pub mod set;

pub use profile::RegistryProfile;
pub use pull::{PullError, PullOutcome, Registry};
pub use set::RegistrySet;
