//! Service-definition lint: validate the annotated YAML stream produced by
//! [`edgectl::annotate()`] (or hand-edited afterwards) against the invariants
//! the deployment pipeline relies on — paper §V's automated annotations.

use yamlite::Yaml;

use edgectl::annotate::EDGE_SERVICE_LABEL;

use crate::Violation;

fn lint(out: &mut Vec<Violation>, doc: usize, path: &str, message: impl Into<String>) {
    out.push(Violation::Lint {
        doc,
        path: path.to_string(),
        message: message.into(),
    });
}

fn kind_of(doc: &Yaml) -> &str {
    doc.get("kind")
        .and_then(Yaml::as_str)
        .unwrap_or("Deployment")
}

fn str_at<'a>(doc: &'a Yaml, path: &str) -> Option<&'a str> {
    doc.at(path).and_then(Yaml::as_str)
}

/// Fetch a label value under `path` by the *literal* key `label` — the
/// `edge.service` label contains a dot, so it must not go through the
/// dotted-path helper.
fn label_at<'a>(doc: &'a Yaml, path: &str, label: &str) -> Option<&'a str> {
    doc.at(path)
        .and_then(|m| m.get(label))
        .and_then(Yaml::as_str)
}

/// Lint an annotated multi-document stream (Deployments + Services).
/// Checks: unique names per kind, `replicas: 0`, the `edge.service` label on
/// metadata and pod template, `matchLabels ⊆ template labels`, an
/// `edge.service` selector on every Service, selector values resolving to a
/// Deployment in the stream, and Service `targetPort` consistency with the
/// container's declared ports.
pub fn lint_annotated(docs: &[Yaml]) -> Vec<Violation> {
    let mut out = Vec::new();

    // (service name, its declared containerPorts) per Deployment, for the
    // cross-document Service checks.
    let mut deployments: Vec<(usize, String, Vec<i64>)> = Vec::new();
    let mut seen_names: Vec<(String, String)> = Vec::new(); // (kind, name)

    for (i, doc) in docs.iter().enumerate() {
        if !matches!(doc, Yaml::Map(_)) {
            lint(
                &mut out,
                i,
                "",
                format!("document must be a mapping, got {}", doc.type_name()),
            );
            continue;
        }
        let kind = kind_of(doc).to_string();
        match str_at(doc, "metadata.name") {
            Some(name) => {
                if seen_names.contains(&(kind.clone(), name.to_string())) {
                    lint(
                        &mut out,
                        i,
                        "metadata.name",
                        format!("duplicate {kind} name `{name}` — names must be unique"),
                    );
                }
                seen_names.push((kind.clone(), name.to_string()));
            }
            None => lint(&mut out, i, "metadata.name", "missing name"),
        }

        match kind.as_str() {
            "Service" => lint_service(&mut out, i, doc),
            _ => {
                if let Some(d) = lint_deployment(&mut out, i, doc) {
                    deployments.push(d);
                }
            }
        }
    }

    // Service ↔ Deployment cross-checks need the full stream.
    for (i, doc) in docs.iter().enumerate() {
        if !matches!(doc, Yaml::Map(_)) || kind_of(doc) != "Service" {
            continue;
        }
        let Some(selector) = label_at(doc, "spec.selector", EDGE_SERVICE_LABEL) else {
            continue; // missing selector already reported by lint_service
        };
        let Some((_, _, ports)) = deployments.iter().find(|(_, svc, _)| svc == selector) else {
            if !deployments.is_empty() {
                lint(
                    &mut out,
                    i,
                    "spec.selector",
                    format!("selector `{EDGE_SERVICE_LABEL}: {selector}` matches no Deployment in the stream"),
                );
            }
            continue;
        };
        if let Some(target) = doc.at("spec.ports.0.targetPort").and_then(Yaml::as_i64) {
            if !ports.is_empty() && !ports.contains(&target) {
                lint(
                    &mut out,
                    i,
                    "spec.ports.0.targetPort",
                    format!(
                        "targetPort {target} is not among the container's declared ports {ports:?}"
                    ),
                );
            }
        }
    }

    out
}

/// Deployment-shaped document checks. Returns (doc index, edge.service
/// value, declared containerPorts) for the cross-document pass.
fn lint_deployment(
    out: &mut Vec<Violation>,
    i: usize,
    doc: &Yaml,
) -> Option<(usize, String, Vec<i64>)> {
    // The paper's scale-to-zero default: instances exist only on demand.
    match doc.at("spec.replicas").and_then(Yaml::as_i64) {
        Some(0) => {}
        Some(n) => lint(
            out,
            i,
            "spec.replicas",
            format!("replicas must be 0 (on-demand deployment), got {n}"),
        ),
        None => lint(out, i, "spec.replicas", "replicas must be set to 0"),
    }

    for path in ["metadata.labels", "spec.template.metadata.labels"] {
        if label_at(doc, path, EDGE_SERVICE_LABEL).is_none() {
            lint(
                out,
                i,
                path,
                format!("missing `{EDGE_SERVICE_LABEL}` label"),
            );
        }
    }

    // matchLabels ⊆ template labels, key and value.
    let template_labels = doc.at("spec.template.metadata.labels");
    if let Some(Yaml::Map(pairs)) = doc.at("spec.selector.matchLabels") {
        for (key, want) in pairs {
            let have = template_labels.and_then(|l| l.get(key));
            if have != Some(want) {
                lint(
                    out,
                    i,
                    "spec.selector.matchLabels",
                    format!("`{key}` not carried by spec.template.metadata.labels — the selector would never match the pods"),
                );
            }
        }
    } else {
        lint(out, i, "spec.selector.matchLabels", "missing matchLabels");
    }

    let service = label_at(doc, "metadata.labels", EDGE_SERVICE_LABEL)?.to_string();
    let mut ports = Vec::new();
    if let Some(Yaml::Seq(containers)) = doc.at("spec.template.spec.containers") {
        for c in containers {
            if let Some(Yaml::Seq(cports)) = c.get("ports") {
                for p in cports {
                    if let Some(n) = p.get("containerPort").and_then(Yaml::as_i64) {
                        ports.push(n);
                    }
                }
            }
        }
    }
    Some((i, service, ports))
}

/// Service-shaped document checks.
fn lint_service(out: &mut Vec<Violation>, i: usize, doc: &Yaml) {
    if label_at(doc, "spec.selector", EDGE_SERVICE_LABEL).is_none() {
        lint(
            out,
            i,
            "spec.selector",
            format!(
                "missing `{EDGE_SERVICE_LABEL}` selector — the generated redirect flows key on it"
            ),
        );
    }
    match doc.at("spec.ports") {
        Some(Yaml::Seq(ports)) if !ports.is_empty() => {
            for (j, p) in ports.iter().enumerate() {
                if p.get("port").and_then(Yaml::as_i64).is_none() {
                    lint(
                        out,
                        i,
                        &format!("spec.ports.{j}.port"),
                        "missing port number",
                    );
                }
            }
        }
        _ => lint(
            out,
            i,
            "spec.ports",
            "Service must expose at least one port",
        ),
    }
}
