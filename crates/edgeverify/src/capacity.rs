//! Site-capacity accounting audit.
//!
//! The controller's admission control (DESIGN.md §5g) promises that a site's
//! booked allocation never exceeds its [`SiteCapacity`]: every deployment and
//! scale-up is admitted against the free budget before the backend sees it.
//! This check re-derives that invariant from the controller's final books —
//! an allocation above capacity means a booking path skipped admission (or a
//! release was lost, leaving phantom load that starves future admissions).

use cluster::{ResourceAllocation, SiteCapacity};

use crate::Violation;

/// One site's books as handed to [`crate::Verifier::check_capacity`]:
/// `(cluster index, configured capacity, booked allocation)`.
pub type SiteBooks = (usize, SiteCapacity, ResourceAllocation);

pub(crate) fn check(sites: &[SiteBooks]) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(cluster, capacity, allocated) in sites {
        if allocated.exceeds(&capacity) {
            out.push(Violation::CapacityExceeded {
                cluster,
                capacity,
                allocated,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ResourceRequest;

    fn booked(requests: &[(u32, u64)]) -> ResourceAllocation {
        let mut a = ResourceAllocation::default();
        for &(cpu, mem) in requests {
            a.add(&ResourceRequest::new(cpu, mem), 1);
        }
        a
    }

    #[test]
    fn within_capacity_is_clean() {
        let sites = vec![
            (0, SiteCapacity::UNLIMITED, booked(&[(4000, 8192)])),
            (1, SiteCapacity::new(2000, 4096), booked(&[(1500, 2048)])),
        ];
        assert!(check(&sites).is_empty());
    }

    #[test]
    fn overbooked_site_is_flagged() {
        let sites = vec![
            (
                0,
                SiteCapacity::new(1000, 1024),
                booked(&[(800, 512), (800, 512)]),
            ),
            (1, SiteCapacity::new(1000, 1024), booked(&[(500, 512)])),
        ];
        let violations = check(&sites);
        assert_eq!(violations.len(), 1);
        match &violations[0] {
            Violation::CapacityExceeded { cluster, .. } => assert_eq!(*cluster, 0),
            other => panic!("unexpected violation {other}"),
        }
        let text = violations[0].to_string();
        assert!(text.contains("capacity-exceeded"), "{text}");
        assert!(text.contains("cluster 0"), "{text}");
    }
}
