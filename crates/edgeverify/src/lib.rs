//! # edgeverify — static verification of the transparent-edge data plane
//!
//! The paper's transparency claim rests on the controller's installed flow
//! rules doing exactly one thing: rewrite cloud-addressed traffic to a live
//! edge instance and rewrite the replies back. A shadowed rule, a pair of
//! ambiguous same-priority rules, a rewrite loop or a blackholed
//! `edge.service` match all break that claim *silently* — the simulation
//! keeps running, requests just go to the wrong place or nowhere. This crate
//! is the VeriFlow / header-space-analysis style answer: a static pass over
//! [`simnet::openflow`] rule sets and [`edgectl`] state that proves the
//! emitted configuration well-formed, plus a lint for the annotated service
//! definitions the deployment pipeline consumes.
//!
//! Eight analyses, each returning structured [`Violation`]s with rule or
//! document provenance:
//!
//! 1. **Shadowing** ([`Verifier::check`]) — pairwise [`FlowMatch`]
//!    subsumption: a rule fully covered by an earlier-in-table-order rule can
//!    never match.
//! 2. **Overlap conflicts** ([`Verifier::check`]) — two same-priority rules
//!    whose matches intersect but whose actions send packets to different
//!    destinations; which one wins is an implementation accident.
//! 3. **Reachability / loops / blackholes** ([`Verifier::check_fabric`]) —
//!    walk representative packets of each client × service class through the
//!    switch tables along the topology links; flag forwarding cycles, drops
//!    of service-addressed classes, and classes misrouted off the fabric.
//! 4. **FlowMemory coherence** ([`Verifier::check_coherence`]) — the
//!    controller's memorized redirects and the switch tables must tell the
//!    same story (same target, compatible idle timeouts, no redirect to a
//!    dead instance that memory has already forgotten).
//! 5. **Service-definition lint** ([`lint::lint_annotated`]) — unique names,
//!    `replicas: 0`, `matchLabels ⊆ labels`, the `edge.service` label, and
//!    Service/Deployment port consistency.
//! 6. **Mesh coherence** ([`Verifier::check_mesh`]) — cross-controller
//!    invariants of a sharded `edgemesh` federation: no `(service, cluster)`
//!    deployment in flight on two shards at once (split-brain duplicates the
//!    lease protocol must prevent), and no shard still steering flows at a
//!    cluster with no ready replica after gossip has quiesced.
//! 7. **Capacity accounting** ([`Verifier::check_capacity`]) — the
//!    controller's booked allocation at each site must fit the site's
//!    configured [`cluster::SiteCapacity`]; an overbooked site means a
//!    deployment or scale-up path bypassed admission control (§5g).
//! 8. **Session continuity** ([`Verifier::check_continuity`]) — under client
//!    mobility every request must complete exactly once or be explicitly
//!    accounted lost; a handover that blackholes or double-serves a session
//!    breaks transparency invisibly (§5k).
//!
//! The same checks run three ways: this library API, the `edgesim verify`
//! subcommand (scenario audit), and `debug_assertions`-gated
//! check-on-install hooks inside [`simnet::openflow::Switch::flow_mod`] and
//! the controller's install path.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod capacity;
pub mod coherence;
pub mod continuity;
pub mod fabric;
pub mod lint;
pub mod mesh;
pub mod table;

use std::fmt;

use simcore::SimDuration;
use simnet::openflow::{FlowEntry, FlowId, FlowMatch, FlowTable};
use simnet::{IpAddr, SocketAddr};

pub use capacity::SiteBooks;
pub use coherence::CoherenceView;
pub use continuity::ContinuityView;
pub use fabric::{Fabric, FabricSwitch, Link, PacketClass};
pub use lint::lint_annotated;
pub use mesh::MeshView;

/// Provenance of a flow rule named in a [`Violation`]: enough to find it in
/// the table and to print a human-readable report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleRef {
    pub id: FlowId,
    pub priority: u16,
    pub cookie: u64,
    /// Rendered matcher, e.g. `tcp src 10.1.0.1 dst 93.184.0.1:80`.
    pub matcher: String,
}

impl RuleRef {
    pub fn of(entry: &FlowEntry) -> RuleRef {
        RuleRef {
            id: entry.id,
            priority: entry.priority,
            cookie: entry.cookie,
            matcher: describe_match(&entry.matcher),
        }
    }
}

impl fmt::Display for RuleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow #{} (prio {}, match {})",
            self.id.0, self.priority, self.matcher
        )
    }
}

/// Render a matcher compactly for reports.
pub fn describe_match(m: &FlowMatch) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(p) = m.protocol {
        parts.push(format!("{p:?}").to_lowercase());
    }
    match (m.src_ip, m.src_port) {
        (Some(ip), Some(port)) => parts.push(format!("src {ip}:{port}")),
        (Some(ip), None) => parts.push(format!("src {ip}")),
        (None, Some(port)) => parts.push(format!("src *:{port}")),
        (None, None) => {}
    }
    if let Some(n) = m.src_net {
        parts.push(format!("src_net {}/{}", n.addr, n.prefix));
    }
    match (m.dst_ip, m.dst_port) {
        (Some(ip), Some(port)) => parts.push(format!("dst {ip}:{port}")),
        (Some(ip), None) => parts.push(format!("dst {ip}")),
        (None, Some(port)) => parts.push(format!("dst *:{port}")),
        (None, None) => {}
    }
    if let Some(n) = m.dst_net {
        parts.push(format!("dst_net {}/{}", n.addr, n.prefix));
    }
    if parts.is_empty() {
        "any".to_string()
    } else {
        parts.join(" ")
    }
}

/// One verified defect. Every variant names the offending rule(s) or
/// document so the report is actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `rule` is fully covered by the earlier-in-table-order `by` and can
    /// never match a packet.
    Shadowed {
        switch: usize,
        rule: RuleRef,
        by: RuleRef,
    },
    /// Two same-priority rules intersect but their actions differ — which
    /// destination such packets reach is nondeterministic in spirit (decided
    /// by insertion order, which nothing guarantees).
    OverlapConflict {
        switch: usize,
        first: RuleRef,
        second: RuleRef,
    },
    /// The rule's own conjunction admits no packet (e.g. an exact ip pinned
    /// outside its own mask).
    Unsatisfiable { switch: usize, rule: RuleRef },
    /// A packet class revisits a (switch, header) state: a forwarding /
    /// rewrite cycle. `path` lists the (switch, rule) hops taken.
    RewriteLoop {
        class: String,
        path: Vec<(usize, FlowId)>,
    },
    /// A service-addressed class is dropped: by an explicit rule
    /// (`Some(rule)`) or by an action list that never outputs (`rule` still
    /// names the entry). This also catches classes that bypass the
    /// `ToController` catch-all into a drop.
    Blackholed {
        class: String,
        switch: usize,
        rule: FlowId,
    },
    /// A service-addressed class leaves the fabric somewhere it cannot be
    /// served (a client port or an unwired port).
    Misrouted {
        class: String,
        switch: usize,
        rule: FlowId,
        port: usize,
    },
    /// A switch still rewrites a client↔service pair to `target`, but the
    /// instance is gone and the controller's FlowMemory no longer knows the
    /// flow — clients would be forwarded into a dead endpoint.
    StaleRedirect {
        switch: usize,
        rule: RuleRef,
        target: SocketAddr,
    },
    /// FlowMemory and the switch disagree about where a client↔service pair
    /// goes.
    TargetMismatch {
        client: IpAddr,
        service: SocketAddr,
        memory_target: SocketAddr,
        switch_target: SocketAddr,
        rule: FlowId,
    },
    /// FlowMemory holds a pending placeholder (a request held on an
    /// in-flight deployment) but the dispatcher has no deployment in flight
    /// for the service — the held request can never be released.
    OrphanedPending { client: IpAddr, service: SocketAddr },
    /// A switch entry backing a memorized flow can outlive the memory entry
    /// (switch idle timeout missing or longer than memory's) — §5b's
    /// scale-down logic would retire instances that still receive traffic.
    IncompatibleTimeouts {
        switch: usize,
        rule: RuleRef,
        switch_idle: Option<SimDuration>,
        memory_idle: SimDuration,
    },
    /// A service-definition lint finding in document `doc` (0-based index in
    /// the stream) at `path`.
    Lint {
        doc: usize,
        path: String,
        message: String,
    },
    /// Two or more controller shards have a deployment machine in flight for
    /// the same `(service, cluster)` — the split-brain duplicate the
    /// deployment-lease protocol exists to prevent. The shared backend would
    /// receive conflicting pull/create/scale sequences.
    SplitBrainDeployment {
        service: u32,
        cluster: usize,
        shards: Vec<usize>,
    },
    /// A controller shard still steers a service's flows at a cluster where
    /// no replica is ready — cross-shard staleness that outlived the gossip
    /// convergence envelope (a `Gone` delta that never took effect).
    StaleMeshRedirect {
        shard: usize,
        service: u32,
        cluster: usize,
    },
    /// The controller's booked allocation at a site exceeds the site's
    /// configured capacity — some deployment or scale-up path bypassed the
    /// §5g admission check, or a release was lost.
    CapacityExceeded {
        cluster: usize,
        capacity: cluster::SiteCapacity,
        allocated: cluster::ResourceAllocation,
    },
    /// A request was neither served nor accounted as lost — its session fell
    /// into the gap between an ingress handover's flow teardown and the
    /// re-establishment on the new controller, and nothing noticed. The
    /// complement of the exactly-once guarantee the continuity analysis
    /// proves (see [`continuity`]).
    BlackholedSession { tag: u64, client: u32 },
    /// A request was released to a serving port more than once — e.g. both
    /// the pre- and post-handover flow answered it, duplicating the client's
    /// side-effect.
    DoubleServedSession {
        tag: u64,
        client: u32,
        completions: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Shadowed { switch, rule, by } => write!(
                f,
                "shadowed: switch {switch}: {rule} can never match; covered by {by}"
            ),
            Violation::OverlapConflict {
                switch,
                first,
                second,
            } => write!(
                f,
                "overlap-conflict: switch {switch}: {first} and {second} share priority, \
                 intersect, and send traffic to different destinations"
            ),
            Violation::Unsatisfiable { switch, rule } => {
                write!(f, "unsatisfiable: switch {switch}: {rule} admits no packet")
            }
            Violation::RewriteLoop { class, path } => {
                write!(f, "loop: class {class} cycles through ")?;
                let hops: Vec<String> = path
                    .iter()
                    .map(|(sw, id)| format!("switch {sw}/flow #{}", id.0))
                    .collect();
                f.write_str(&hops.join(" -> "))
            }
            Violation::Blackholed {
                class,
                switch,
                rule,
            } => write!(
                f,
                "blackhole: class {class} is dropped at switch {switch} by flow #{}",
                rule.0
            ),
            Violation::Misrouted {
                class,
                switch,
                rule,
                port,
            } => write!(
                f,
                "misroute: class {class} leaves switch {switch} on port {port} \
                 (flow #{}) where no service can answer",
                rule.0
            ),
            Violation::StaleRedirect {
                switch,
                rule,
                target,
            } => write!(
                f,
                "stale-redirect: switch {switch}: {rule} rewrites to {target}, which is \
                 neither a live instance nor remembered by the controller"
            ),
            Violation::TargetMismatch {
                client,
                service,
                memory_target,
                switch_target,
                rule,
            } => write!(
                f,
                "target-mismatch: {client} -> {service}: memory says {memory_target}, \
                 switch flow #{} rewrites to {switch_target}",
                rule.0
            ),
            Violation::OrphanedPending { client, service } => write!(
                f,
                "orphaned-pending: {client} -> {service}: memory holds a pending \
                 placeholder but no deployment is in flight for the service"
            ),
            Violation::IncompatibleTimeouts {
                switch,
                rule,
                switch_idle,
                memory_idle,
            } => {
                let si = match switch_idle {
                    Some(d) => format!("{d}"),
                    None => "none".to_string(),
                };
                write!(
                    f,
                    "incompatible-timeouts: switch {switch}: {rule} idle timeout ({si}) \
                     outlives FlowMemory's ({memory_idle}); scale-down would race live traffic"
                )
            }
            Violation::Lint { doc, path, message } => {
                write!(f, "lint: document {doc}: {path}: {message}")
            }
            Violation::SplitBrainDeployment {
                service,
                cluster,
                shards,
            } => write!(
                f,
                "split-brain: service #{service} deploying at cluster {cluster} \
                 concurrently on shards {shards:?}"
            ),
            Violation::StaleMeshRedirect {
                shard,
                service,
                cluster,
            } => write!(
                f,
                "stale-mesh-redirect: shard {shard} still steers service #{service} to \
                 cluster {cluster} where no replica is ready"
            ),
            Violation::CapacityExceeded {
                cluster,
                capacity,
                allocated,
            } => write!(
                f,
                "capacity-exceeded: cluster {cluster}: booked {}m CPU / {} MiB / {} replicas \
                 exceeds capacity {}m CPU / {} MiB / {} replicas",
                allocated.cpu_millis,
                allocated.memory_mib,
                allocated.replicas,
                capacity.cpu_millis,
                capacity.memory_mib,
                capacity.max_replicas,
            ),
            Violation::BlackholedSession { tag, client } => write!(
                f,
                "blackholed-session: request tag {tag} from client {client} was neither \
                 served nor accounted lost — swallowed across a handover"
            ),
            Violation::DoubleServedSession {
                tag,
                client,
                completions,
            } => write!(
                f,
                "double-served-session: request tag {tag} from client {client} was \
                 released {completions} times"
            ),
        }
    }
}

/// The verifier facade. Stateless apart from tuning knobs; every `check_*`
/// method is a pure function of its inputs.
#[derive(Debug, Clone)]
pub struct Verifier {
    /// Reachability walk hop budget; exceeding it is reported as a loop.
    pub max_hops: usize,
}

impl Default for Verifier {
    fn default() -> Verifier {
        Verifier { max_hops: 64 }
    }
}

impl Verifier {
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Full pairwise table audit of one switch (switch index 0): shadowing,
    /// same-priority overlap conflicts, unsatisfiable matchers.
    pub fn check(&self, table: &FlowTable) -> Vec<Violation> {
        self.check_switch(0, table)
    }

    /// [`Verifier::check`] with an explicit switch index for reports.
    pub fn check_switch(&self, switch: usize, table: &FlowTable) -> Vec<Violation> {
        table::check_table(switch, table)
    }

    /// Incremental check-on-install: only the pairs involving the
    /// just-installed `id` (O(table) instead of O(table²)). The audited
    /// scenario run calls this on every `FlowMod`.
    pub fn check_install(&self, switch: usize, table: &FlowTable, id: FlowId) -> Vec<Violation> {
        table::check_install(switch, table, id)
    }

    /// Audit a whole fabric: per-switch table checks plus symbolic
    /// reachability walks of every packet class.
    pub fn check_fabric(&self, fabric: &Fabric<'_>) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, sw) in fabric.switches.iter().enumerate() {
            out.extend(self.check_switch(i, sw.table));
        }
        out.extend(fabric::walk_classes(self, fabric));
        out
    }

    /// Cross-check FlowMemory against the installed switch entries.
    pub fn check_coherence(&self, view: &CoherenceView<'_>) -> Vec<Violation> {
        coherence::check(view)
    }

    /// Cross-controller mesh invariants: split-brain deployments and stale
    /// cross-shard redirects (see [`mesh`]).
    pub fn check_mesh(&self, view: &MeshView) -> Vec<Violation> {
        mesh::check(view)
    }

    /// Capacity accounting: each site's booked allocation must fit its
    /// configured capacity (see [`capacity`]).
    pub fn check_capacity(&self, sites: &[SiteBooks]) -> Vec<Violation> {
        capacity::check(sites)
    }

    /// Session continuity across client handovers: every request either
    /// completed exactly once or is in the loss ledger (see [`continuity`]).
    pub fn check_continuity(&self, view: &ContinuityView) -> Vec<Violation> {
        continuity::check(view)
    }
}
