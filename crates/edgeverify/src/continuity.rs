//! Session-continuity analysis for mobile-client runs.
//!
//! A mid-session ingress handover tears flows down on the departing
//! controller and re-establishes them on the new one. Two silent failure
//! modes hide in that window: a request that is neither served nor accounted
//! lost (**blackholed** — the teardown raced the in-flight exchange and
//! nobody noticed), and a request served twice (**double-served** — both the
//! old and the new flow released it, so the client sees a duplicated
//! side-effect). The engines keep a per-tag completion count and a loss
//! ledger exactly so this pass can prove the complement: every request either
//! completed exactly once or appears in the loss ledger.
//!
//! The view is plain indexed data — no dependency on the workload or mesh
//! crates — so the testbed, both mesh engines, and `edgesim verify` can all
//! feed it.

use crate::Violation;

/// Per-request accounting for one run, indexed by request tag (tags are the
/// trace request indices, dense from 0).
#[derive(Debug, Clone, Default)]
pub struct ContinuityView {
    /// `clients[tag]` = the client that issued request `tag`.
    pub clients: Vec<u32>,
    /// `completions[tag]` = how many times request `tag` was released to a
    /// serving port.
    pub completions: Vec<u32>,
    /// Sorted tags the run explicitly accounted as lost (dropped SYN, failed
    /// buffered release). A lost request is *accounted for* — it is the
    /// unaccounted ones the blackhole check exists to catch.
    pub lost: Vec<u64>,
}

pub(crate) fn check(view: &ContinuityView) -> Vec<Violation> {
    debug_assert_eq!(view.clients.len(), view.completions.len());
    debug_assert!(view.lost.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::new();
    for (tag, (&client, &completions)) in
        view.clients.iter().zip(view.completions.iter()).enumerate()
    {
        let tag = tag as u64;
        match completions {
            0 if view.lost.binary_search(&tag).is_err() => {
                out.push(Violation::BlackholedSession { tag, client });
            }
            0 | 1 => {}
            n => out.push(Violation::DoubleServedSession {
                tag,
                client,
                completions: n,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verifier;

    fn view(completions: Vec<u32>, lost: Vec<u64>) -> ContinuityView {
        ContinuityView {
            clients: (0..completions.len() as u32).collect(),
            completions,
            lost,
        }
    }

    #[test]
    fn clean_run_passes() {
        let v = view(vec![1, 1, 1], vec![]);
        assert!(Verifier::new().check_continuity(&v).is_empty());
    }

    #[test]
    fn lost_requests_are_accounted_not_blackholed() {
        let v = view(vec![1, 0, 1], vec![1]);
        assert!(Verifier::new().check_continuity(&v).is_empty());
    }

    #[test]
    fn unaccounted_zero_completion_is_blackholed() {
        let v = view(vec![1, 0, 1], vec![]);
        let violations = Verifier::new().check_continuity(&v);
        assert_eq!(
            violations,
            vec![Violation::BlackholedSession { tag: 1, client: 1 }]
        );
    }

    #[test]
    fn multiple_completions_are_double_served() {
        let v = view(vec![1, 2, 3], vec![]);
        let violations = Verifier::new().check_continuity(&v);
        assert_eq!(violations.len(), 2);
        assert_eq!(
            violations[0],
            Violation::DoubleServedSession {
                tag: 1,
                client: 1,
                completions: 2
            }
        );
        assert_eq!(
            violations[1],
            Violation::DoubleServedSession {
                tag: 2,
                client: 2,
                completions: 3
            }
        );
    }

    #[test]
    fn lost_and_completed_is_fine_but_lost_and_double_is_flagged() {
        // A tag both lost and completed once: the loss ledger is advisory,
        // one completion is still exactly-once from the client's view.
        let v = view(vec![1], vec![0]);
        assert!(Verifier::new().check_continuity(&v).is_empty());
        let v = view(vec![2], vec![0]);
        assert_eq!(Verifier::new().check_continuity(&v).len(), 1);
    }
}
