//! Symbolic reachability: walk representative packets of each client ×
//! service class through the switch tables along the topology links, and
//! flag rewrite cycles, blackholed service classes and misroutes.
//!
//! The walk is concrete-representative rather than fully symbolic: the
//! controller only installs exact-field and CIDR matchers, so one
//! representative packet per (client, service) class traverses exactly the
//! rules every member of the class would. Rewrites are applied as the switch
//! would apply them, and a revisited `(switch, header)` state is a loop.

use std::collections::HashSet;

use simnet::openflow::{Action, FlowId, FlowTable};
use simnet::{Packet, SocketAddr};

use crate::{Verifier, Violation};

/// What hangs off each switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Inter-switch link: packets continue at that switch's table.
    ToSwitch(usize),
    /// The cloud uplink — a legitimate terminal for service traffic.
    Cloud,
    /// An edge site hosting service instances — a legitimate terminal.
    Site,
    /// A client access port — service-addressed traffic ending here is
    /// misrouted.
    Client,
}

/// One switch of the fabric under audit.
pub struct FabricSwitch<'a> {
    pub table: &'a FlowTable,
    /// `links[p]` is what port `p` connects to; ports beyond the vector are
    /// unwired.
    pub links: Vec<Link>,
}

/// A packet class to walk: a representative header and the switch where it
/// enters the fabric.
#[derive(Debug, Clone)]
pub struct PacketClass {
    pub packet: Packet,
    pub ingress: usize,
    /// Report label, e.g. `10.1.0.1 -> 93.184.0.1:80`.
    pub label: String,
}

impl PacketClass {
    /// The canonical class: `client`'s first packet to a registered service
    /// address, entering at `ingress`.
    pub fn client_to_service(client: SocketAddr, service: SocketAddr, ingress: usize) -> Self {
        PacketClass {
            packet: Packet::syn(client, service, 0),
            ingress,
            label: format!("{} -> {}", client.ip, service),
        }
    }
}

/// The audited system: switch tables, port wiring, the registered service
/// addresses (whose classes must not blackhole) and the classes to walk.
pub struct Fabric<'a> {
    pub switches: Vec<FabricSwitch<'a>>,
    /// Cloud addresses of registered services; packets addressed to these are
    /// `edge.service` traffic.
    pub service_addrs: Vec<SocketAddr>,
    pub classes: Vec<PacketClass>,
}

impl Fabric<'_> {
    fn is_service_class(&self, p: &Packet) -> bool {
        self.service_addrs.contains(&p.dst)
    }
}

/// Walk every class; see module docs.
pub(crate) fn walk_classes(verifier: &Verifier, fabric: &Fabric<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for class in &fabric.classes {
        walk_one(verifier, fabric, class, &mut out);
    }
    out
}

fn walk_one(
    verifier: &Verifier,
    fabric: &Fabric<'_>,
    class: &PacketClass,
    out: &mut Vec<Violation>,
) {
    // Only service-addressed traffic has delivery obligations; other classes
    // can legitimately drop or punt, but loops are wrong for everyone.
    let service_class = fabric.is_service_class(&class.packet);
    let mut seen: HashSet<(usize, Packet)> = HashSet::new();
    let mut path: Vec<(usize, FlowId)> = Vec::new();
    let mut sw = class.ingress;
    let mut packet = class.packet;

    loop {
        if sw >= fabric.switches.len() {
            return; // dangling link: nothing to audit
        }
        if !seen.insert((sw, packet)) || path.len() >= verifier.max_hops {
            out.push(Violation::RewriteLoop {
                class: class.label.clone(),
                path: path.clone(),
            });
            return;
        }
        let table = fabric.switches[sw].table;
        let Some(entry) = table.find(&packet) else {
            // Table miss: the packet is buffered and punted to the
            // controller — the on-demand deployment path, always legitimate.
            return;
        };
        path.push((sw, entry.id));
        let mut forwarded: Option<usize> = None;
        for a in &entry.actions {
            match a {
                Action::SetSrcIp(ip) => packet.src.ip = *ip,
                Action::SetSrcPort(p) => packet.src.port = *p,
                Action::SetDstIp(ip) => packet.dst.ip = *ip,
                Action::SetDstPort(p) => packet.dst.port = *p,
                Action::Output(port) => {
                    forwarded = Some(port.0);
                    break;
                }
                Action::ToController => return, // punted: legitimate terminal
                Action::Drop => break,
            }
        }
        let Some(port) = forwarded else {
            if service_class {
                out.push(Violation::Blackholed {
                    class: class.label.clone(),
                    switch: sw,
                    rule: entry.id,
                });
            }
            return;
        };
        match fabric.switches[sw].links.get(port) {
            Some(Link::ToSwitch(next)) => sw = *next,
            Some(Link::Cloud) | Some(Link::Site) => return,
            Some(Link::Client) => {
                if service_class {
                    out.push(Violation::Misrouted {
                        class: class.label.clone(),
                        switch: sw,
                        rule: entry.id,
                        port,
                    });
                }
                return;
            }
            None => {
                if service_class {
                    out.push(Violation::Misrouted {
                        class: class.label.clone(),
                        switch: sw,
                        rule: entry.id,
                        port,
                    });
                }
                return;
            }
        }
    }
}
