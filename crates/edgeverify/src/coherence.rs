//! FlowMemory ↔ switch-table coherence.
//!
//! The controller keeps redirects in two places with *deliberately* different
//! lifetimes (DESIGN.md §5b): switch entries carry a short idle timeout
//! (default 10 s) so the data plane stays small, while [`FlowMemory`] holds
//! the longer-lived copy (default 60 s) that drives idle scale-down. A
//! memorized flow whose switch entry has expired is therefore *by design*,
//! not a violation. What must never happen:
//!
//! * a switch entry and the memory disagree about the target instance
//!   ([`Violation::TargetMismatch`]),
//! * a switch entry backing a memorized flow can outlive the memory entry
//!   ([`Violation::IncompatibleTimeouts`]) — then scale-down would retire
//!   instances still receiving data-plane traffic,
//! * a switch still rewrites to an endpoint that is neither remembered nor
//!   alive ([`Violation::StaleRedirect`]) — clients forwarded into a void.

use std::collections::HashSet;

use simcore::SimTime;
use simnet::openflow::{FlowEntry, FlowTable};
use simnet::{Packet, SocketAddr};

use edgectl::{ClusterId, FlowKey, FlowMemory, ServiceId};

use crate::table::{destination, Terminal};
use crate::{RuleRef, Violation};

/// Snapshot handed to [`crate::Verifier::check_coherence`].
pub struct CoherenceView<'a> {
    pub now: SimTime,
    pub memory: &'a FlowMemory,
    /// Switch tables indexed by switch id.
    pub tables: Vec<&'a FlowTable>,
    /// Endpoints that can legitimately receive redirected traffic right now:
    /// every live replica endpoint across clusters (a switch rewrite to one
    /// of these without a memory entry is benign staleness, not a defect).
    pub live_targets: HashSet<SocketAddr>,
    /// Deployments the dispatcher currently has in flight. Pending
    /// FlowMemory placeholders are legitimate only while a machine exists
    /// for their service; otherwise the held request can never be released
    /// ([`Violation::OrphanedPending`]).
    pub in_flight: HashSet<(ServiceId, ClusterId)>,
}

/// A redirect-shaped switch entry decomposed into the controller's terms.
struct Redirect {
    key: FlowKey,
    target: SocketAddr,
}

/// The forward half of a controller redirect pair: matcher pins
/// (client ip, service ip, service port) and the actions rewrite the
/// destination before outputting. Reverse rules (src rewrites) and cloud
/// passthrough rules (no rewrite) don't qualify.
fn as_redirect(entry: &FlowEntry) -> Option<Redirect> {
    let m = &entry.matcher;
    let (client_ip, service_ip, service_port) = (m.src_ip?, m.dst_ip?, m.dst_port?);
    let dest = destination(&entry.actions);
    if !matches!(dest.terminal, Terminal::Output(_)) {
        return None;
    }
    let target_ip = dest.dst_ip?;
    let target_port = dest.dst_port.unwrap_or(service_port);
    Some(Redirect {
        key: FlowKey {
            client_ip,
            service_addr: SocketAddr::new(service_ip, service_port),
        },
        target: SocketAddr::new(target_ip, target_port),
    })
}

pub(crate) fn check(view: &CoherenceView<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    let memory_idle = view.memory.idle_timeout();

    // Switch side: every installed redirect must agree with the memory, or
    // point at something alive.
    for (sw, table) in view.tables.iter().enumerate() {
        for entry in table.iter_ordered() {
            let Some(redirect) = as_redirect(entry) else {
                continue;
            };
            // A pending placeholder has no switch rule of its own — a rule
            // matching its key is leftover from an earlier installed flow,
            // so judge it as if the memory entry were absent.
            match view.memory.get(redirect.key).filter(|f| !f.pending) {
                Some(flow) => {
                    if flow.target != redirect.target {
                        out.push(Violation::TargetMismatch {
                            client: redirect.key.client_ip,
                            service: redirect.key.service_addr,
                            memory_target: flow.target,
                            switch_target: redirect.target,
                            rule: entry.id,
                        });
                    }
                    if entry.idle_timeout.is_none_or(|d| d > memory_idle) {
                        out.push(Violation::IncompatibleTimeouts {
                            switch: sw,
                            rule: RuleRef::of(entry),
                            switch_idle: entry.idle_timeout,
                            memory_idle,
                        });
                    }
                }
                None => {
                    if !view.live_targets.contains(&redirect.target) {
                        out.push(Violation::StaleRedirect {
                            switch: sw,
                            rule: RuleRef::of(entry),
                            target: redirect.target,
                        });
                    }
                }
            }
        }
    }

    // Memory side: a memorized flow whose representative packet is captured
    // by some *other* rewriting rule (e.g. a broad seeded redirect) must
    // still reach its remembered target. Expired-at-switch flows — find()
    // returns nothing or a non-rewriting rule — are the §5b design, not a
    // defect. Pairs whose own entry was already compared above are skipped.
    for flow in view.memory.iter() {
        if flow.pending {
            // A placeholder for a held request: no rule to compare, but the
            // deployment it waits on must still exist somewhere. (Service-
            // level, not (service, cluster): a BEST retarget may move the
            // placeholder to a cluster other than the machine's.)
            if !view.in_flight.iter().any(|&(s, _)| s == flow.service) {
                out.push(Violation::OrphanedPending {
                    client: flow.key.client_ip,
                    service: flow.key.service_addr,
                });
            }
            continue;
        }
        let probe = Packet::syn(
            SocketAddr::new(flow.key.client_ip, 40000),
            flow.key.service_addr,
            0,
        );
        for table in &view.tables {
            let Some(entry) = table.find(&probe) else {
                continue;
            };
            let Some(redirect) = as_redirect(entry) else {
                continue;
            };
            if redirect.key == flow.key {
                continue; // compared in the switch-side pass
            }
            if redirect.target != flow.target {
                out.push(Violation::TargetMismatch {
                    client: flow.key.client_ip,
                    service: flow.key.service_addr,
                    memory_target: flow.target,
                    switch_target: redirect.target,
                    rule: entry.id,
                });
            }
        }
    }

    out
}
