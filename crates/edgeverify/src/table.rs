//! Pairwise table analyses: shadowing, same-priority overlap conflicts, and
//! unsatisfiable matchers.
//!
//! Table order (priority descending, insertion order within a priority) is
//! the ground truth: a rule is *shadowed* when some earlier-in-table-order
//! rule subsumes its matcher, and two rules *conflict* when they share a
//! priority, intersect, and their action lists deliver packets to different
//! destinations — the winner is then an insertion-order accident nothing in
//! the controller contract guarantees.

use simnet::openflow::{Action, FlowEntry, FlowId, FlowTable};
use simnet::IpAddr;

use crate::{RuleRef, Violation};

/// Where an action list delivers a packet, ignoring path details that cannot
/// change the outcome. Two same-priority intersecting rules with different
/// `Dest`s are a nondeterminism hazard; with the same `Dest` they are merely
/// redundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Dest {
    pub src_ip: Option<IpAddr>,
    pub src_port: Option<u16>,
    pub dst_ip: Option<IpAddr>,
    pub dst_port: Option<u16>,
    pub terminal: Terminal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Terminal {
    Output(usize),
    Controller,
    Drop,
}

/// Mirror of `Switch::apply`: rewrites accumulate until the first `Output`,
/// `ToController` or `Drop`; an action list that ends without an output
/// drops.
pub(crate) fn destination(actions: &[Action]) -> Dest {
    let mut d = Dest {
        src_ip: None,
        src_port: None,
        dst_ip: None,
        dst_port: None,
        terminal: Terminal::Drop,
    };
    for a in actions {
        match a {
            Action::SetSrcIp(ip) => d.src_ip = Some(*ip),
            Action::SetSrcPort(p) => d.src_port = Some(*p),
            Action::SetDstIp(ip) => d.dst_ip = Some(*ip),
            Action::SetDstPort(p) => d.dst_port = Some(*p),
            Action::Output(port) => {
                d.terminal = Terminal::Output(port.0);
                return d;
            }
            Action::ToController => {
                d.terminal = Terminal::Controller;
                return d;
            }
            Action::Drop => {
                d.terminal = Terminal::Drop;
                return d;
            }
        }
    }
    d
}

/// Full pairwise audit of one table.
pub(crate) fn check_table(switch: usize, table: &FlowTable) -> Vec<Violation> {
    let entries: Vec<&FlowEntry> = table.iter_ordered().collect();
    let mut out = Vec::new();
    for (j, b) in entries.iter().enumerate() {
        if !b.matcher.is_satisfiable() {
            out.push(Violation::Unsatisfiable {
                switch,
                rule: RuleRef::of(b),
            });
            continue;
        }
        if let Some(a) = entries[..j].iter().find(|a| a.matcher.subsumes(&b.matcher)) {
            out.push(Violation::Shadowed {
                switch,
                rule: RuleRef::of(b),
                by: RuleRef::of(a),
            });
            // A dead rule cannot also conflict — skip the overlap pass.
            continue;
        }
        for a in &entries[..j] {
            if conflicts(a, b) {
                out.push(Violation::OverlapConflict {
                    switch,
                    first: RuleRef::of(a),
                    second: RuleRef::of(b),
                });
            }
        }
    }
    out
}

/// Incremental audit after installing `id`: only pairs involving the new
/// rule. O(table) — cheap enough to run on every `FlowMod` of a scenario.
pub(crate) fn check_install(switch: usize, table: &FlowTable, id: FlowId) -> Vec<Violation> {
    let Some(new) = table.get(id) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if !new.matcher.is_satisfiable() {
        out.push(Violation::Unsatisfiable {
            switch,
            rule: RuleRef::of(new),
        });
        return out;
    }
    let mut before_new = true;
    for e in table.iter_ordered() {
        if e.id == id {
            before_new = false;
            continue;
        }
        if before_new {
            // Earlier rule covering the new one: the new rule arrived dead.
            if e.matcher.subsumes(&new.matcher) {
                out.push(Violation::Shadowed {
                    switch,
                    rule: RuleRef::of(new),
                    by: RuleRef::of(e),
                });
            } else if conflicts(e, new) {
                out.push(Violation::OverlapConflict {
                    switch,
                    first: RuleRef::of(e),
                    second: RuleRef::of(new),
                });
            }
        } else {
            // The new rule may also have just killed an existing one.
            if new.matcher.subsumes(&e.matcher) {
                out.push(Violation::Shadowed {
                    switch,
                    rule: RuleRef::of(e),
                    by: RuleRef::of(new),
                });
            } else if conflicts(new, e) {
                out.push(Violation::OverlapConflict {
                    switch,
                    first: RuleRef::of(new),
                    second: RuleRef::of(e),
                });
            }
        }
    }
    out
}

/// Same priority, intersecting matches, different destinations.
fn conflicts(a: &FlowEntry, b: &FlowEntry) -> bool {
    a.priority == b.priority
        && a.matcher.intersects(&b.matcher)
        && destination(&a.actions) != destination(&b.actions)
}
