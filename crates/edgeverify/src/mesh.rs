//! Mesh coherence: cross-controller invariants of an `edgemesh` federation.
//!
//! Sharding the ingress across controllers introduces failure modes a single
//! controller cannot have. Two are worth proving absent statically:
//!
//! * **Split-brain deployment** — two shards concurrently run a deployment
//!   machine for the same `(service, cluster)`. The shared backend then
//!   receives duplicate pull/create/scale-up sequences: wasted work at best,
//!   conflicting replica counts at worst. The deployment-lease protocol
//!   exists precisely to make this impossible; the checker is the proof
//!   obligation ([`crate::Violation::SplitBrainDeployment`]).
//! * **Stale mesh redirect** — a shard still steers flows at a cluster where
//!   no replica of the service is ready. Bounded staleness between a `Gone`
//!   event and its gossip delivery is the *accepted divergence envelope*
//!   (DESIGN.md §5f) while the instance drains; a redirect surviving to a
//!   quiesced end-of-run state means the shard never learned, which is a
//!   defect ([`crate::Violation::StaleMeshRedirect`]).
//!
//! The view is deliberately plain data (`u32` service ids, `usize` cluster
//! and shard indices) so the mesh runner can build it without `edgeverify`
//! depending on `edgemesh` or vice versa.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::Violation;

/// Snapshot of the federation handed to [`crate::Verifier::check_mesh`],
/// indexed by shard.
#[derive(Debug, Default)]
pub struct MeshView {
    /// Per shard: `(service, cluster)` deployments its dispatcher has in
    /// flight.
    pub in_flight: Vec<Vec<(u32, usize)>>,
    /// Per shard: `(service, cluster)` pairs its FlowMemory still steers
    /// traffic to (non-pending memorized flows with an edge target).
    pub redirects: Vec<Vec<(u32, usize)>>,
    /// `(service, cluster)` pairs with at least one ready replica on the
    /// shared backends.
    pub ready: HashSet<(u32, usize)>,
}

pub(crate) fn check(view: &MeshView) -> Vec<Violation> {
    let mut out = Vec::new();

    // Split-brain: the same (service, cluster) in flight on >= 2 shards.
    let mut holders: BTreeMap<(u32, usize), BTreeSet<usize>> = BTreeMap::new();
    for (shard, in_flight) in view.in_flight.iter().enumerate() {
        for &key in in_flight {
            holders.entry(key).or_default().insert(shard);
        }
    }
    for ((service, cluster), shards) in holders {
        if shards.len() >= 2 {
            out.push(Violation::SplitBrainDeployment {
                service,
                cluster,
                shards: shards.into_iter().collect(),
            });
        }
    }

    // Stale redirects: a shard steering a service at a cluster with no ready
    // replica. Deduplicate per shard — many flows share one stale fact.
    for (shard, redirects) in view.redirects.iter().enumerate() {
        let distinct: BTreeSet<(u32, usize)> = redirects.iter().copied().collect();
        for (service, cluster) in distinct {
            if !view.ready.contains(&(service, cluster)) {
                out.push(Violation::StaleMeshRedirect {
                    shard,
                    service,
                    cluster,
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mesh_has_no_violations() {
        let mut ready = HashSet::new();
        ready.insert((0, 1));
        let view = MeshView {
            in_flight: vec![vec![(2, 0)], vec![]],
            redirects: vec![vec![(0, 1)], vec![(0, 1), (0, 1)]],
            ready,
        };
        assert!(check(&view).is_empty());
    }

    #[test]
    fn concurrent_in_flight_is_split_brain() {
        let view = MeshView {
            in_flight: vec![vec![(3, 0)], vec![(3, 0), (4, 1)], vec![(3, 0)]],
            redirects: vec![vec![], vec![], vec![]],
            ready: HashSet::new(),
        };
        let out = check(&view);
        assert_eq!(
            out,
            vec![Violation::SplitBrainDeployment {
                service: 3,
                cluster: 0,
                shards: vec![0, 1, 2],
            }]
        );
    }

    #[test]
    fn redirect_to_unready_cluster_is_stale() {
        let mut ready = HashSet::new();
        ready.insert((1, 0));
        let view = MeshView {
            in_flight: vec![vec![], vec![]],
            // Shard 1 steers service 1 at cluster 2, where nothing is ready;
            // the duplicate flow collapses to one violation.
            redirects: vec![vec![(1, 0)], vec![(1, 2), (1, 2)]],
            ready,
        };
        let out = check(&view);
        assert_eq!(
            out,
            vec![Violation::StaleMeshRedirect {
                shard: 1,
                service: 1,
                cluster: 2,
            }]
        );
    }
}
