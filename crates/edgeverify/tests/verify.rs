//! Mutation tests: seed each violation class deliberately and assert the
//! verifier reports it with the offending `FlowId`s / document indices —
//! and that the equivalent clean configuration stays silent.

use std::collections::HashSet;

use simcore::{SimDuration, SimTime};
use simnet::openflow::{Action, FlowId, FlowMatch, FlowSpec, FlowTable, PortId};
use simnet::{IpAddr, SocketAddr};

use edgectl::scheduler::ClusterId;
use edgectl::{FlowKey, FlowMemory};
use edgeverify::{CoherenceView, Fabric, FabricSwitch, Link, PacketClass, Verifier, Violation};

fn client(i: u8) -> IpAddr {
    IpAddr::new(10, 1, 0, i)
}
fn svc(i: u8) -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, i), 80)
}
fn instance(i: u8) -> SocketAddr {
    SocketAddr::new(IpAddr::new(10, 0, i, 100), 30000)
}
fn t0() -> SimTime {
    SimTime::ZERO
}

fn redirect_pair(
    table: &mut FlowTable,
    client_ip: IpAddr,
    service: SocketAddr,
    target: SocketAddr,
    idle: Option<SimDuration>,
) -> FlowId {
    let forward = table.install(
        t0(),
        FlowSpec::new(FlowMatch::client_to_service(client_ip, service))
            .priority(100)
            .actions(vec![
                Action::SetDstIp(target.ip),
                Action::SetDstPort(target.port),
                Action::Output(PortId(1)),
            ])
            .idle_opt(idle),
    );
    table.install(
        t0(),
        FlowSpec::new(FlowMatch {
            protocol: Some(simnet::Protocol::Tcp),
            src_ip: Some(target.ip),
            src_port: Some(target.port),
            dst_ip: Some(client_ip),
            ..FlowMatch::default()
        })
        .priority(100)
        .actions(vec![
            Action::SetSrcIp(service.ip),
            Action::SetSrcPort(service.port),
            Action::Output(PortId(2)),
        ])
        .idle_opt(idle),
    );
    forward
}

// ---------------------------------------------------------------- shadowing

#[test]
fn shadowing_detected_with_provenance() {
    let mut table = FlowTable::new();
    let broad = table.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(200)
            .action(Action::ToController),
    );
    let narrow = table.install(
        t0(),
        FlowSpec::new(FlowMatch::client_to_service(client(1), svc(1)))
            .priority(100)
            .action(Action::Output(PortId(1))),
    );
    let violations = Verifier::new().check(&table);
    assert_eq!(violations.len(), 1, "{violations:?}");
    match &violations[0] {
        Violation::Shadowed { switch, rule, by } => {
            assert_eq!(*switch, 0);
            assert_eq!(rule.id, narrow);
            assert_eq!(by.id, broad);
        }
        other => panic!("expected Shadowed, got {other}"),
    }
}

#[test]
fn controller_rule_layout_is_clean() {
    // The shapes the real controller installs: per-client redirect pairs at
    // prio 100 plus per-client host routes at prio 99 — no findings.
    let mut table = FlowTable::new();
    redirect_pair(&mut table, client(1), svc(1), instance(1), None);
    redirect_pair(&mut table, client(2), svc(1), instance(1), None);
    redirect_pair(&mut table, client(1), svc(2), instance(2), None);
    table.install(
        t0(),
        FlowSpec::new(FlowMatch {
            dst_ip: Some(client(1)),
            ..FlowMatch::default()
        })
        .priority(99)
        .action(Action::Output(PortId(2))),
    );
    let violations = Verifier::new().check(&table);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn check_install_flags_newly_dead_and_newly_killing_rules() {
    let mut table = FlowTable::new();
    let narrow = table.install(
        t0(),
        FlowSpec::new(FlowMatch::client_to_service(client(1), svc(1)))
            .priority(100)
            .action(Action::Output(PortId(1))),
    );
    // A broad higher-priority rule lands later and kills the existing one.
    let broad = table.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(200)
            .action(Action::ToController),
    );
    let violations = Verifier::new().check_install(0, &table, broad);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Shadowed { rule, by, .. } if rule.id == narrow && by.id == broad
        )),
        "{violations:?}"
    );
}

// ------------------------------------------------------------------ overlap

#[test]
fn same_priority_overlap_with_different_destinations_detected() {
    let mut table = FlowTable::new();
    // dst-pinned rule vs src-pinned rule at the same priority: a packet from
    // client 1 to service 1 matches both, and they rewrite differently.
    let first = table.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(100)
            .actions(vec![
                Action::SetDstIp(instance(1).ip),
                Action::SetDstPort(instance(1).port),
                Action::Output(PortId(1)),
            ]),
    );
    let second = table.install(
        t0(),
        FlowSpec::new(FlowMatch {
            src_ip: Some(client(1)),
            ..FlowMatch::default()
        })
        .priority(100)
        .actions(vec![
            Action::SetDstIp(instance(2).ip),
            Action::SetDstPort(instance(2).port),
            Action::Output(PortId(1)),
        ]),
    );
    let violations = Verifier::new().check(&table);
    assert_eq!(violations.len(), 1, "{violations:?}");
    match &violations[0] {
        Violation::OverlapConflict {
            first: a,
            second: b,
            ..
        } => {
            assert_eq!(a.id, first);
            assert_eq!(b.id, second);
        }
        other => panic!("expected OverlapConflict, got {other}"),
    }
}

#[test]
fn same_priority_overlap_with_same_destination_is_fine() {
    let mut table = FlowTable::new();
    for m in [
        FlowMatch::to_service(svc(1)),
        FlowMatch {
            src_ip: Some(client(1)),
            ..FlowMatch::default()
        },
    ] {
        table.install(
            t0(),
            FlowSpec::new(m).priority(100).action(Action::ToController),
        );
    }
    assert!(Verifier::new().check(&table).is_empty());
}

// -------------------------------------------------------------- reachability

#[test]
fn unsatisfiable_rule_detected() {
    let mut table = FlowTable::new();
    let dead = table.install(
        t0(),
        FlowSpec::new(FlowMatch {
            dst_ip: Some(svc(1).ip),
            dst_net: Some(simnet::IpNet::new(IpAddr::new(192, 168, 0, 0), 16)),
            ..FlowMatch::default()
        })
        .priority(100)
        .action(Action::Drop),
    );
    let violations = Verifier::new().check(&table);
    assert_eq!(violations.len(), 1);
    assert!(
        matches!(&violations[0], Violation::Unsatisfiable { rule, .. } if rule.id == dead),
        "{violations:?}"
    );
}

#[test]
fn blackholed_service_class_detected() {
    let mut table = FlowTable::new();
    let hole = table.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(200)
            .action(Action::Drop),
    );
    let fabric = Fabric {
        switches: vec![FabricSwitch {
            table: &table,
            links: vec![Link::Cloud, Link::Site, Link::Client],
        }],
        service_addrs: vec![svc(1)],
        classes: vec![PacketClass::client_to_service(
            SocketAddr::new(client(1), 40000),
            svc(1),
            0,
        )],
    };
    let violations = Verifier::new().check_fabric(&fabric);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Blackholed { switch: 0, rule, .. } if *rule == hole
        )),
        "{violations:?}"
    );
}

#[test]
fn forwarding_loop_across_switches_detected() {
    // Two switches bouncing the class between each other through port 3.
    let mut t1 = FlowTable::new();
    let r1 = t1.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(100)
            .action(Action::Output(PortId(3))),
    );
    let mut t2 = FlowTable::new();
    let r2 = t2.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(100)
            .action(Action::Output(PortId(3))),
    );
    let fabric = Fabric {
        switches: vec![
            FabricSwitch {
                table: &t1,
                links: vec![Link::Cloud, Link::Site, Link::Client, Link::ToSwitch(1)],
            },
            FabricSwitch {
                table: &t2,
                links: vec![Link::Cloud, Link::Site, Link::Client, Link::ToSwitch(0)],
            },
        ],
        service_addrs: vec![svc(1)],
        classes: vec![PacketClass::client_to_service(
            SocketAddr::new(client(1), 40000),
            svc(1),
            0,
        )],
    };
    let violations = Verifier::new().check_fabric(&fabric);
    let loop_v = violations
        .iter()
        .find_map(|v| match v {
            Violation::RewriteLoop { path, .. } => Some(path),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected RewriteLoop in {violations:?}"));
    assert_eq!(loop_v, &vec![(0, r1), (1, r2)]);
}

#[test]
fn rewrite_cycle_detected() {
    // One switch whose rewrite rules chase each other: svc1 -> svc2 -> svc1,
    // resubmitted to itself through an inter-switch port looping back.
    let mut t1 = FlowTable::new();
    t1.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(100)
            .actions(vec![Action::SetDstIp(svc(2).ip), Action::Output(PortId(0))]),
    );
    t1.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(2)))
            .priority(100)
            .actions(vec![Action::SetDstIp(svc(1).ip), Action::Output(PortId(0))]),
    );
    let fabric = Fabric {
        switches: vec![FabricSwitch {
            table: &t1,
            links: vec![Link::ToSwitch(0)],
        }],
        service_addrs: vec![svc(1), svc(2)],
        classes: vec![PacketClass::client_to_service(
            SocketAddr::new(client(1), 40000),
            svc(1),
            0,
        )],
    };
    let violations = Verifier::new().check_fabric(&fabric);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::RewriteLoop { .. })),
        "{violations:?}"
    );
}

#[test]
fn misrouted_service_class_detected() {
    // Service traffic forwarded out a client access port.
    let mut table = FlowTable::new();
    let bad = table.install(
        t0(),
        FlowSpec::new(FlowMatch::to_service(svc(1)))
            .priority(100)
            .action(Action::Output(PortId(2))),
    );
    let fabric = Fabric {
        switches: vec![FabricSwitch {
            table: &table,
            links: vec![Link::Cloud, Link::Site, Link::Client],
        }],
        service_addrs: vec![svc(1)],
        classes: vec![PacketClass::client_to_service(
            SocketAddr::new(client(1), 40000),
            svc(1),
            0,
        )],
    };
    let violations = Verifier::new().check_fabric(&fabric);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Misrouted { rule, port: 2, .. } if *rule == bad
        )),
        "{violations:?}"
    );
}

#[test]
fn clean_redirect_reaches_site() {
    let mut table = FlowTable::new();
    redirect_pair(&mut table, client(1), svc(1), instance(1), None);
    let fabric = Fabric {
        switches: vec![FabricSwitch {
            table: &table,
            links: vec![Link::Cloud, Link::Site, Link::Client],
        }],
        service_addrs: vec![svc(1)],
        classes: vec![PacketClass::client_to_service(
            SocketAddr::new(client(1), 40000),
            svc(1),
            0,
        )],
    };
    assert!(Verifier::new().check_fabric(&fabric).is_empty());
}

// ---------------------------------------------------------------- coherence

fn memory_with(key: FlowKey, target: SocketAddr, idle: SimDuration) -> FlowMemory {
    let mut m = FlowMemory::new(idle).unwrap();
    m.remember(t0(), key, edgectl::ServiceId(0), target, Some(ClusterId(0)));
    m
}

#[test]
fn coherent_memory_and_switch_pass() {
    let key = FlowKey {
        client_ip: client(1),
        service_addr: svc(1),
    };
    let mut table = FlowTable::new();
    redirect_pair(
        &mut table,
        client(1),
        svc(1),
        instance(1),
        Some(SimDuration::from_secs(10)),
    );
    let memory = memory_with(key, instance(1), SimDuration::from_secs(60));
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::from([instance(1)]),
        in_flight: HashSet::new(),
    };
    assert!(Verifier::new().check_coherence(&view).is_empty());

    // …and a memorized flow whose switch entry already expired is the §5b
    // design, not a violation.
    let empty = FlowTable::new();
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&empty],
        live_targets: HashSet::new(),
        in_flight: HashSet::new(),
    };
    assert!(Verifier::new().check_coherence(&view).is_empty());
}

#[test]
fn target_mismatch_detected() {
    let key = FlowKey {
        client_ip: client(1),
        service_addr: svc(1),
    };
    let mut table = FlowTable::new();
    let rule = redirect_pair(
        &mut table,
        client(1),
        svc(1),
        instance(2), // switch says instance 2…
        Some(SimDuration::from_secs(10)),
    );
    let memory = memory_with(key, instance(1), SimDuration::from_secs(60)); // …memory says 1
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::from([instance(1), instance(2)]),
        in_flight: HashSet::new(),
    };
    let violations = Verifier::new().check_coherence(&view);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::TargetMismatch { rule: r, memory_target, switch_target, .. }
                if *r == rule && *memory_target == instance(1) && *switch_target == instance(2)
        )),
        "{violations:?}"
    );
}

#[test]
fn incompatible_timeouts_detected() {
    let key = FlowKey {
        client_ip: client(1),
        service_addr: svc(1),
    };
    let mut table = FlowTable::new();
    let rule = redirect_pair(
        &mut table,
        client(1),
        svc(1),
        instance(1),
        Some(SimDuration::from_secs(120)), // switch entry outlives memory
    );
    let memory = memory_with(key, instance(1), SimDuration::from_secs(60));
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::from([instance(1)]),
        in_flight: HashSet::new(),
    };
    let violations = Verifier::new().check_coherence(&view);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::IncompatibleTimeouts { rule: r, .. } if r.id == rule
        )),
        "{violations:?}"
    );
}

#[test]
fn stale_redirect_detected() {
    // Switch still rewrites to an instance that is gone, and the controller
    // no longer remembers the flow.
    let mut table = FlowTable::new();
    let rule = redirect_pair(
        &mut table,
        client(1),
        svc(1),
        instance(1),
        Some(SimDuration::from_secs(10)),
    );
    let memory = FlowMemory::new(SimDuration::from_secs(60)).unwrap();
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::new(), // instance 1 is dead
        in_flight: HashSet::new(),
    };
    let violations = Verifier::new().check_coherence(&view);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::StaleRedirect { rule: r, target, .. }
                if r.id == rule && *target == instance(1)
        )),
        "{violations:?}"
    );

    // The same orphaned rule pointing at a *live* instance is benign.
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::from([instance(1)]),
        in_flight: HashSet::new(),
    };
    assert!(Verifier::new().check_coherence(&view).is_empty());
}

#[test]
fn orphaned_pending_detected() {
    // A pending placeholder is only legitimate while the dispatcher has a
    // machine in flight for its service — the check is service-level, since
    // a BEST retarget may park the placeholder on a different cluster than
    // the machine's.
    let key = FlowKey {
        client_ip: client(1),
        service_addr: svc(1),
    };
    let mut memory = FlowMemory::new(SimDuration::from_secs(60)).unwrap();
    memory.remember_pending(t0(), key, edgectl::ServiceId(0), Some(ClusterId(0)));
    let table = FlowTable::new();

    // Machine in flight for the service (even on another cluster): clean.
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::new(),
        in_flight: HashSet::from([(edgectl::ServiceId(0), ClusterId(1))]),
    };
    assert!(Verifier::new().check_coherence(&view).is_empty());

    // No machine anywhere: the held request can never be released.
    let view = CoherenceView {
        now: t0(),
        memory: &memory,
        tables: vec![&table],
        live_targets: HashSet::new(),
        in_flight: HashSet::new(),
    };
    let violations = Verifier::new().check_coherence(&view);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::OrphanedPending { client: c, service: s }
                if *c == client(1) && *s == svc(1)
        )),
        "{violations:?}"
    );
}

// --------------------------------------------------------------------- lint

#[test]
fn annotated_output_lints_clean() {
    let docs = yamlite::parse_all("image: nginx:1.23.2\n").unwrap();
    let out =
        edgectl::annotate_documents(&docs, &edgectl::AnnotateOptions::new("edge-web", 80)).unwrap();
    let violations = edgeverify::lint_annotated(&[out.deployment, out.service]);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn lint_detects_seeded_defects_with_doc_provenance() {
    let docs = yamlite::parse_all("image: nginx:1.23.2\n").unwrap();
    let out =
        edgectl::annotate_documents(&docs, &edgectl::AnnotateOptions::new("edge-web", 80)).unwrap();

    // replicas != 0
    let mut dep = out.deployment.clone();
    dep.set_path("spec.replicas", yamlite::Yaml::Int(3));
    let violations = edgeverify::lint_annotated(&[dep, out.service.clone()]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 0, path, .. } if path == "spec.replicas"
        )),
        "{violations:?}"
    );

    // missing edge.service label on the pod template
    let mut dep = out.deployment.clone();
    dep.at_mut("spec.template.metadata.labels")
        .unwrap()
        .remove("edge.service");
    let violations = edgeverify::lint_annotated(&[dep, out.service.clone()]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 0, path, .. } if path == "spec.template.metadata.labels"
        )),
        "{violations:?}"
    );

    // matchLabels key the template doesn't carry
    let mut dep = out.deployment.clone();
    dep.at_mut("spec.selector.matchLabels")
        .unwrap()
        .insert("tier", yamlite::Yaml::str("backend"));
    let violations = edgeverify::lint_annotated(&[dep, out.service.clone()]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 0, path, .. } if path == "spec.selector.matchLabels"
        )),
        "{violations:?}"
    );

    // duplicate names across two Deployments
    let violations = edgeverify::lint_annotated(&[out.deployment.clone(), out.deployment.clone()]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 1, path, .. } if path == "metadata.name"
        )),
        "{violations:?}"
    );

    // Service targetPort inconsistent with the container's declared port
    let mut dep = out.deployment.clone();
    dep.set_path(
        "spec.template.spec.containers.0.ports",
        yamlite::Yaml::Seq(vec![{
            let mut p = yamlite::Yaml::map();
            p.insert("containerPort", yamlite::Yaml::Int(8080));
            p
        }]),
    );
    let violations = edgeverify::lint_annotated(&[dep, out.service.clone()]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 1, path, .. } if path == "spec.ports.0.targetPort"
        )),
        "{violations:?}"
    );

    // missing edge.service selector on the Service
    let mut svc_doc = out.service.clone();
    svc_doc
        .at_mut("spec.selector")
        .unwrap()
        .remove("edge.service");
    let violations = edgeverify::lint_annotated(&[out.deployment.clone(), svc_doc]);
    assert!(
        violations.iter().any(|v| matches!(
            v,
            Violation::Lint { doc: 1, path, .. } if path == "spec.selector"
        )),
        "{violations:?}"
    );
}
