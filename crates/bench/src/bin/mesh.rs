//! Federation sweep — the trajectory artifact for the `edgemesh` subsystem
//! (`BENCH_mesh.json`).
//!
//! Replays the paper's bigFlows workload through the sharded controller
//! mesh at {1, 2, 4, 8} ingress shards (same seed, same trace) and records,
//! per shard count: wall-clock, completions, deployments, split-brain
//! duplicates observed vs. avoided by the lease protocol, gossip volume,
//! mean delta staleness and mean convergence time. The 1-shard run is the
//! plain single-controller testbed by construction, so its hash is the same
//! canonical metrics hash CI pins for `cityscale`.
//!
//! A second sweep (`"churn"` rows) re-runs the sharded mesh with idle
//! scale-down and the Remove phase enabled (30 s idle timeout, 60 s Remove
//! deadline) so the federation is exercised under instance churn: `Gone`
//! deltas, revived services, lease traffic on redeploys. CI asserts the
//! churn rows show `scale_downs > 0` and `removes > 0` — the lifecycle must
//! stay live, not just compiled.
//!
//! A third sweep (`"threads_sweep"` rows) measures the windowed parallel
//! engine itself: a heavier scaled workload per shard count at worker
//! threads ∈ {1, 2, 4, 8} (threads ≤ shards), recording wall-clock,
//! events/sec, speedup vs threads=1 and barrier stalls per window. The mesh
//! hash must be byte-identical within each shard group — thread count picks
//! the schedule, never the result — and the bench aborts on any divergence.
//!
//! Usage:
//!   mesh [--quick] [--shards 1,2,4,8] [--threads N] [--out BENCH_mesh.json]
//!        [--expect-hash-1x 0xHEX]

use std::fmt::Write as _;
use std::time::Instant;

use edgemesh::{run_mesh_bigflows, run_mesh_scenario, validate_threads};
use simcore::{SimDuration, SimRng};
use testbed::{MeshParams, ScenarioConfig};
use workload::{Trace, TraceConfig};

const SEED: u64 = 42;
/// Churn sweep knobs (mirrored by `examples/scenarios/mesh_scaledown.yaml`
/// and `crates/edgemesh/tests/scaledown.rs`).
const CHURN_IDLE_TIMEOUT_S: u64 = 30;
const CHURN_REMOVE_AFTER_S: u64 = 60;
/// Workload multiplier for the threads sweep ([`TraceConfig::scaled`]):
/// the 1× bigFlows trace finishes in milliseconds, far too little work for
/// barrier overheads and speedup to mean anything.
const THREADS_SWEEP_SCALE: usize = 10;
/// One-way gossip latency for the threads sweep. The conservative engine's
/// lookahead IS the link latency, so a metro-WAN 50 ms link yields fat
/// windows (hundreds of events between barriers) — the regime the
/// thread-per-shard design targets. The default 500 µs LAN latency would
/// barrier every handful of events and measure synchronization, not
/// simulation.
const THREADS_SWEEP_LINK_MS: u64 = 50;

struct ShardResult {
    shards: usize,
    threads: usize,
    requests: usize,
    completed: u64,
    lost: u64,
    deployments: u64,
    duplicate_deployments: u64,
    duplicate_deployments_avoided: u64,
    deltas_sent: u64,
    deltas_lost: u64,
    mean_staleness_ms: f64,
    mean_convergence_ms: f64,
    retargets: u64,
    scale_downs: u64,
    removes: u64,
    wall_s: f64,
    mesh_hash: u64,
}

/// One threads-sweep measurement: the heavier scaled workload at a fixed
/// shard count, varying only the worker-thread count.
struct ThreadsResult {
    shards: usize,
    threads: usize,
    events: u64,
    windows: u64,
    stalls_per_window: f64,
    wall_s: f64,
    /// Wall-clock of this shard count's threads=1 run over this run's.
    speedup: f64,
    events_per_sec: f64,
    mesh_hash: u64,
}

fn run_shards(shards: usize, threads: usize) -> ShardResult {
    run_cfg(ScenarioConfig {
        seed: SEED,
        mesh: MeshParams {
            shards,
            threads,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    })
}

fn run_churn(shards: usize, threads: usize) -> ShardResult {
    let mut cfg = ScenarioConfig {
        seed: SEED,
        mesh: MeshParams {
            shards,
            threads,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = SimDuration::from_secs(CHURN_IDLE_TIMEOUT_S);
    cfg.controller.remove_after = Some(SimDuration::from_secs(CHURN_REMOVE_AFTER_S));
    run_cfg(cfg)
}

fn run_cfg(cfg: ScenarioConfig) -> ShardResult {
    let shards = cfg.mesh.shards;
    let t0 = Instant::now();
    let (trace, result) = run_mesh_bigflows(cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    ShardResult {
        shards,
        threads: result.threads,
        requests: trace.requests.len(),
        completed: result.completed,
        lost: result.lost,
        deployments: result.deployments,
        duplicate_deployments: result.duplicate_deployments,
        duplicate_deployments_avoided: result.duplicate_deployments_avoided,
        deltas_sent: result.deltas_sent,
        deltas_lost: result.deltas_lost,
        mean_staleness_ms: result.mean_staleness_ms(),
        mean_convergence_ms: result.mean_convergence_ms(),
        retargets: result.retargets,
        scale_downs: result.scale_downs,
        removes: result.removes,
        wall_s,
        mesh_hash: result.mesh_hash(),
    }
}

/// The threads-sweep workload: the bigFlows trace at
/// [`THREADS_SWEEP_SCALE`]×, same seed derivation as `run_mesh_bigflows`.
fn threads_sweep_trace(scale: usize) -> Trace {
    let mut rng = SimRng::seed_from_u64(SEED ^ 0xB16F_1085);
    Trace::generate(TraceConfig::scaled(scale), &mut rng)
}

fn run_threads_case(shards: usize, threads: usize, trace: &Trace, base_wall: f64) -> ThreadsResult {
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        mesh: MeshParams {
            shards,
            threads,
            link_latency: SimDuration::from_millis(THREADS_SWEEP_LINK_MS),
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    let t0 = Instant::now();
    let result = run_mesh_scenario(cfg, trace);
    let wall_s = t0.elapsed().as_secs_f64();
    ThreadsResult {
        shards,
        threads,
        events: result.events,
        windows: result.windows,
        stalls_per_window: result.stalls_per_window(),
        wall_s,
        speedup: if base_wall > 0.0 {
            base_wall / wall_s
        } else {
            1.0
        },
        events_per_sec: result.events as f64 / wall_s.max(1e-9),
        mesh_hash: result.mesh_hash(),
    }
}

fn to_json(results: &[ShardResult], churn: &[ShardResult], sweep: &[ThreadsResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"mesh\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"churn_idle_timeout_s\": {CHURN_IDLE_TIMEOUT_S},");
    let _ = writeln!(out, "  \"churn_remove_after_s\": {CHURN_REMOVE_AFTER_S},");
    let _ = writeln!(out, "  \"threads_sweep_scale\": {THREADS_SWEEP_SCALE},");
    let _ = writeln!(out, "  \"threads_sweep_link_ms\": {THREADS_SWEEP_LINK_MS},");
    // Parallel speedup is only meaningful relative to the cores the host
    // actually had; a single-core runner measures ~1.0x by construction.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    out.push_str("  \"shards\": [\n");
    write_rows(&mut out, results);
    out.push_str("  ],\n  \"churn\": [\n");
    write_rows(&mut out, churn);
    out.push_str("  ],\n  \"threads_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"threads\": {}, \"events\": {}, \"windows\": {}, \
             \"stalls_per_window\": {:.3}, \"wall_s\": {:.6}, \"speedup\": {:.3}, \
             \"events_per_sec\": {:.0}, \"mesh_hash\": \"{:#018x}\"}}",
            r.shards,
            r.threads,
            r.events,
            r.windows,
            r.stalls_per_window,
            r.wall_s,
            r.speedup,
            r.events_per_sec,
            r.mesh_hash,
        );
        out.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn write_rows(out: &mut String, results: &[ShardResult]) {
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"threads\": {}, \"requests\": {}, \"completed\": {}, \
             \"lost\": {}, \"deployments\": {}, \"duplicate_deployments\": {}, \
             \"duplicate_deployments_avoided\": {}, \"deltas_sent\": {}, \"deltas_lost\": {}, \
             \"mean_staleness_ms\": {:.3}, \"mean_convergence_ms\": {:.3}, \"retargets\": {}, \
             \"scale_downs\": {}, \"removes\": {}, \"wall_s\": {:.6}, \"mesh_hash\": \"{:#018x}\"}}",
            r.shards,
            r.threads,
            r.requests,
            r.completed,
            r.lost,
            r.deployments,
            r.duplicate_deployments,
            r.duplicate_deployments_avoided,
            r.deltas_sent,
            r.deltas_lost,
            r.mean_staleness_ms,
            r.mean_convergence_ms,
            r.retargets,
            r.scale_downs,
            r.removes,
            r.wall_s,
            r.mesh_hash,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
}

fn main() {
    let mut shard_counts = vec![1usize, 2, 4, 8];
    let mut out_path = String::from("BENCH_mesh.json");
    let mut expect_hash_1x: Option<u64> = None;
    let mut threads: usize = 1;
    let mut quick = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                shard_counts = vec![1, 2];
                quick = true;
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a positive integer");
            }
            "--shards" => {
                i += 1;
                shard_counts = args
                    .get(i)
                    .expect("--shards needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count must be an integer"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--expect-hash-1x" => {
                i += 1;
                let s = args.get(i).expect("--expect-hash-1x needs a hex value");
                let s = s.trim_start_matches("0x");
                expect_hash_1x = Some(u64::from_str_radix(s, 16).expect("hash must be hex"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // `--threads` applies to every swept run; a value no shard count in the
    // sweep can host is a usage error (the same typed rejection `edgesim run
    // --threads` gives). Single-shard rows always run the plain testbed, so
    // they are exempt from the check and ignore the knob.
    for &shards in shard_counts.iter().filter(|&&s| s >= 2) {
        if let Err(e) = validate_threads(threads, shards) {
            eprintln!("mesh: {e}");
            std::process::exit(2);
        }
    }

    let mut results = Vec::new();
    for &shards in &shard_counts {
        let threads = threads.min(shards);
        eprintln!("mesh: running {shards} shard(s) on {threads} thread(s) ...");
        let r = run_shards(shards, threads);
        eprintln!(
            "mesh: {:>2} shards  {:>5}/{:<5} req  {:>3} deployments  {:>2} dup  {:>4} avoided  \
             {:>6} deltas  staleness {:>7.2} ms  convergence {:>7.2} ms  {:>7.3} s  hash {:#018x}",
            r.shards,
            r.completed,
            r.requests,
            r.deployments,
            r.duplicate_deployments,
            r.duplicate_deployments_avoided,
            r.deltas_sent,
            r.mean_staleness_ms,
            r.mean_convergence_ms,
            r.wall_s,
            r.mesh_hash,
        );
        results.push(r);
    }

    // Churn sweep: sharded only (shards >= 2) — the point is churn *through
    // the federation*, and the plain 1-shard lifecycle is already covered by
    // cityscale and the testbed tests.
    let mut churn = Vec::new();
    for &shards in shard_counts.iter().filter(|&&s| s >= 2) {
        eprintln!("mesh: running {shards} shard(s) with idle scale-down ...");
        let r = run_churn(shards, threads.min(shards));
        eprintln!(
            "mesh: {:>2} shards (churn)  {:>5}/{:<5} req  {:>3} deployments  \
             {:>3} scale-downs  {:>3} removes  {:>7.3} s  hash {:#018x}",
            r.shards,
            r.completed,
            r.requests,
            r.deployments,
            r.scale_downs,
            r.removes,
            r.wall_s,
            r.mesh_hash,
        );
        churn.push(r);
    }

    // Threads sweep: the windowed engine's own scaling artifact. Quick mode
    // trims to one shard group at {1, 2} threads so CI still proves the
    // hash-equality gate without paying for the full matrix.
    let sweep_shards: Vec<usize> = if quick { vec![2] } else { vec![2, 4, 8] };
    let sweep_threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let trace = threads_sweep_trace(THREADS_SWEEP_SCALE);
    eprintln!(
        "mesh: threads sweep over {} requests ({}x workload)",
        trace.requests.len(),
        THREADS_SWEEP_SCALE
    );
    let mut sweep = Vec::new();
    for &shards in &sweep_shards {
        let mut base_wall = 0.0;
        let mut base_hash = None;
        for &t in sweep_threads.iter().filter(|&&t| t <= shards) {
            let r = run_threads_case(shards, t, &trace, base_wall);
            eprintln!(
                "mesh: {:>2} shards / {} thread(s)  {:>9} events  {:>5} windows  \
                 {:>5.2} stalls/window  {:>7.3} s  {:>8.0} ev/s  speedup {:>5.2}x  hash {:#018x}",
                r.shards,
                r.threads,
                r.events,
                r.windows,
                r.stalls_per_window,
                r.wall_s,
                r.events_per_sec,
                r.speedup,
                r.mesh_hash,
            );
            if t == 1 {
                base_wall = r.wall_s;
                base_hash = Some(r.mesh_hash);
            } else if base_hash != Some(r.mesh_hash) {
                // Thread count must pick the schedule, never the result.
                eprintln!(
                    "mesh: THREAD DETERMINISM VIOLATION at {} shards: threads=1 hash {:#018x} \
                     != threads={} hash {:#018x}",
                    shards,
                    base_hash.unwrap_or(0),
                    t,
                    r.mesh_hash
                );
                std::process::exit(1);
            }
            sweep.push(r);
        }
    }

    let json = to_json(&results, &churn, &sweep);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    if let Some(expect) = expect_hash_1x {
        let got = results
            .iter()
            .find(|r| r.shards == 1)
            .expect("--expect-hash-1x requires a 1-shard run")
            .mesh_hash;
        if got != expect {
            eprintln!(
                "mesh: DETERMINISM DRIFT at 1 shard: expected {expect:#018x}, got {got:#018x}"
            );
            std::process::exit(1);
        }
        eprintln!("mesh: 1-shard determinism hash OK ({got:#018x})");
    }
    // Invariant gate: the lease protocol must keep the mesh free of
    // split-brain duplicates at every swept shard count, churn included.
    if let Some(r) = results
        .iter()
        .chain(&churn)
        .find(|r| r.duplicate_deployments > 0)
    {
        eprintln!(
            "mesh: LEASE VIOLATION at {} shards: {} duplicate deployment(s)",
            r.shards, r.duplicate_deployments
        );
        std::process::exit(1);
    }
    // Liveness gate: a churn row where nothing scaled down or got removed
    // means the idle lifecycle silently died — fail loudly, not via a stale
    // all-zero artifact.
    if let Some(r) = churn.iter().find(|r| r.scale_downs == 0 || r.removes == 0) {
        eprintln!(
            "mesh: CHURN LIVENESS FAILURE at {} shards: scale_downs={} removes={}",
            r.shards, r.scale_downs, r.removes
        );
        std::process::exit(1);
    }
}
