//! Federation sweep — the trajectory artifact for the `edgemesh` subsystem
//! (`BENCH_mesh.json`).
//!
//! Replays the paper's bigFlows workload through the sharded controller
//! mesh at {1, 2, 4, 8} ingress shards (same seed, same trace) and records,
//! per shard count: wall-clock, completions, deployments, split-brain
//! duplicates observed vs. avoided by the lease protocol, gossip volume,
//! mean delta staleness and mean convergence time. The 1-shard run is the
//! plain single-controller testbed by construction, so its hash is the same
//! canonical metrics hash CI pins for `cityscale`.
//!
//! A second sweep (`"churn"` rows) re-runs the sharded mesh with idle
//! scale-down and the Remove phase enabled (30 s idle timeout, 60 s Remove
//! deadline) so the federation is exercised under instance churn: `Gone`
//! deltas, revived services, lease traffic on redeploys. CI asserts the
//! churn rows show `scale_downs > 0` and `removes > 0` — the lifecycle must
//! stay live, not just compiled.
//!
//! Usage:
//!   mesh [--quick] [--shards 1,2,4,8] [--out BENCH_mesh.json]
//!        [--expect-hash-1x 0xHEX]

use std::fmt::Write as _;
use std::time::Instant;

use edgemesh::run_mesh_bigflows;
use simcore::SimDuration;
use testbed::{MeshParams, ScenarioConfig};

const SEED: u64 = 42;
/// Churn sweep knobs (mirrored by `examples/scenarios/mesh_scaledown.yaml`
/// and `crates/edgemesh/tests/scaledown.rs`).
const CHURN_IDLE_TIMEOUT_S: u64 = 30;
const CHURN_REMOVE_AFTER_S: u64 = 60;

struct ShardResult {
    shards: usize,
    requests: usize,
    completed: u64,
    lost: u64,
    deployments: u64,
    duplicate_deployments: u64,
    duplicate_deployments_avoided: u64,
    deltas_sent: u64,
    deltas_lost: u64,
    mean_staleness_ms: f64,
    mean_convergence_ms: f64,
    retargets: u64,
    scale_downs: u64,
    removes: u64,
    wall_s: f64,
    mesh_hash: u64,
}

fn run_shards(shards: usize) -> ShardResult {
    run_cfg(ScenarioConfig {
        seed: SEED,
        mesh: MeshParams {
            shards,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    })
}

fn run_churn(shards: usize) -> ShardResult {
    let mut cfg = ScenarioConfig {
        seed: SEED,
        mesh: MeshParams {
            shards,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = SimDuration::from_secs(CHURN_IDLE_TIMEOUT_S);
    cfg.controller.remove_after = Some(SimDuration::from_secs(CHURN_REMOVE_AFTER_S));
    run_cfg(cfg)
}

fn run_cfg(cfg: ScenarioConfig) -> ShardResult {
    let shards = cfg.mesh.shards;
    let t0 = Instant::now();
    let (trace, result) = run_mesh_bigflows(cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    ShardResult {
        shards,
        requests: trace.requests.len(),
        completed: result.completed,
        lost: result.lost,
        deployments: result.deployments,
        duplicate_deployments: result.duplicate_deployments,
        duplicate_deployments_avoided: result.duplicate_deployments_avoided,
        deltas_sent: result.deltas_sent,
        deltas_lost: result.deltas_lost,
        mean_staleness_ms: result.mean_staleness_ms(),
        mean_convergence_ms: result.mean_convergence_ms(),
        retargets: result.retargets,
        scale_downs: result.scale_downs,
        removes: result.removes,
        wall_s,
        mesh_hash: result.mesh_hash(),
    }
}

fn to_json(results: &[ShardResult], churn: &[ShardResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"mesh\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"churn_idle_timeout_s\": {CHURN_IDLE_TIMEOUT_S},");
    let _ = writeln!(out, "  \"churn_remove_after_s\": {CHURN_REMOVE_AFTER_S},");
    out.push_str("  \"shards\": [\n");
    write_rows(&mut out, results);
    out.push_str("  ],\n  \"churn\": [\n");
    write_rows(&mut out, churn);
    out.push_str("  ]\n}\n");
    out
}

fn write_rows(out: &mut String, results: &[ShardResult]) {
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"shards\": {}, \"requests\": {}, \"completed\": {}, \"lost\": {}, \
             \"deployments\": {}, \"duplicate_deployments\": {}, \
             \"duplicate_deployments_avoided\": {}, \"deltas_sent\": {}, \"deltas_lost\": {}, \
             \"mean_staleness_ms\": {:.3}, \"mean_convergence_ms\": {:.3}, \"retargets\": {}, \
             \"scale_downs\": {}, \"removes\": {}, \"wall_s\": {:.6}, \"mesh_hash\": \"{:#018x}\"}}",
            r.shards,
            r.requests,
            r.completed,
            r.lost,
            r.deployments,
            r.duplicate_deployments,
            r.duplicate_deployments_avoided,
            r.deltas_sent,
            r.deltas_lost,
            r.mean_staleness_ms,
            r.mean_convergence_ms,
            r.retargets,
            r.scale_downs,
            r.removes,
            r.wall_s,
            r.mesh_hash,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
}

fn main() {
    let mut shard_counts = vec![1usize, 2, 4, 8];
    let mut out_path = String::from("BENCH_mesh.json");
    let mut expect_hash_1x: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => shard_counts = vec![1, 2],
            "--shards" => {
                i += 1;
                shard_counts = args
                    .get(i)
                    .expect("--shards needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count must be an integer"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--expect-hash-1x" => {
                i += 1;
                let s = args.get(i).expect("--expect-hash-1x needs a hex value");
                let s = s.trim_start_matches("0x");
                expect_hash_1x = Some(u64::from_str_radix(s, 16).expect("hash must be hex"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    for &shards in &shard_counts {
        eprintln!("mesh: running {shards} shard(s) ...");
        let r = run_shards(shards);
        eprintln!(
            "mesh: {:>2} shards  {:>5}/{:<5} req  {:>3} deployments  {:>2} dup  {:>4} avoided  \
             {:>6} deltas  staleness {:>7.2} ms  convergence {:>7.2} ms  {:>7.3} s  hash {:#018x}",
            r.shards,
            r.completed,
            r.requests,
            r.deployments,
            r.duplicate_deployments,
            r.duplicate_deployments_avoided,
            r.deltas_sent,
            r.mean_staleness_ms,
            r.mean_convergence_ms,
            r.wall_s,
            r.mesh_hash,
        );
        results.push(r);
    }

    // Churn sweep: sharded only (shards >= 2) — the point is churn *through
    // the federation*, and the plain 1-shard lifecycle is already covered by
    // cityscale and the testbed tests.
    let mut churn = Vec::new();
    for &shards in shard_counts.iter().filter(|&&s| s >= 2) {
        eprintln!("mesh: running {shards} shard(s) with idle scale-down ...");
        let r = run_churn(shards);
        eprintln!(
            "mesh: {:>2} shards (churn)  {:>5}/{:<5} req  {:>3} deployments  \
             {:>3} scale-downs  {:>3} removes  {:>7.3} s  hash {:#018x}",
            r.shards,
            r.completed,
            r.requests,
            r.deployments,
            r.scale_downs,
            r.removes,
            r.wall_s,
            r.mesh_hash,
        );
        churn.push(r);
    }

    let json = to_json(&results, &churn);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    if let Some(expect) = expect_hash_1x {
        let got = results
            .iter()
            .find(|r| r.shards == 1)
            .expect("--expect-hash-1x requires a 1-shard run")
            .mesh_hash;
        if got != expect {
            eprintln!(
                "mesh: DETERMINISM DRIFT at 1 shard: expected {expect:#018x}, got {got:#018x}"
            );
            std::process::exit(1);
        }
        eprintln!("mesh: 1-shard determinism hash OK ({got:#018x})");
    }
    // Invariant gate: the lease protocol must keep the mesh free of
    // split-brain duplicates at every swept shard count, churn included.
    if let Some(r) = results
        .iter()
        .chain(&churn)
        .find(|r| r.duplicate_deployments > 0)
    {
        eprintln!(
            "mesh: LEASE VIOLATION at {} shards: {} duplicate deployment(s)",
            r.shards, r.duplicate_deployments
        );
        std::process::exit(1);
    }
    // Liveness gate: a churn row where nothing scaled down or got removed
    // means the idle lifecycle silently died — fail loudly, not via a stale
    // all-zero artifact.
    if let Some(r) = churn.iter().find(|r| r.scale_downs == 0 || r.removes == 0) {
        eprintln!(
            "mesh: CHURN LIVENESS FAILURE at {} shards: scale_downs={} removes={}",
            r.shards, r.scale_downs, r.removes
        );
        std::process::exit(1);
    }
}
