//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. port-probe interval — wait-time quantization vs controller load,
//! 2. registry layer-download concurrency — pull-time sensitivity,
//! 3. kubelet sync period & watch latency — what actually makes K8s slow,
//! 4. FlowMemory idle timeout — scale-downs/redeploys vs kept-warm instances,
//! 5. with-waiting vs without-waiting vs hybrid on the bigFlows trace
//!    (also in `--bin hybrid`, repeated here for the side-by-side view).

use bench::report::{fmt_ms, Table};
use cluster::ClusterKind;
use simcore::{run_seeds, Percentiles, SimDuration};
use testbed::{measure_first_request, run_bigflows, PhaseSetup, ScenarioConfig, SchedulerSpec};
use workload::ServiceKind;

fn median(samples: Vec<f64>) -> f64 {
    let mut p = Percentiles::new();
    for s in samples {
        p.record(s);
    }
    p.median()
}

fn seeds() -> Vec<u64> {
    (1..=15).collect()
}

fn probe_interval_ablation() {
    println!("== Ablation 1: port-probe interval (Docker, Nginx, scale-up only) ==\n");
    let mut t = Table::new([
        "probe interval",
        "median total",
        "median wait",
        "probes/deploy (est.)",
    ]);
    for ms in [5u64, 20, 50, 100, 250, 500] {
        let rows: Vec<(f64, f64)> = run_seeds(&seeds(), 0, |seed| {
            let mut cfg = ScenarioConfig::default()
                .with_phase(PhaseSetup::Created)
                .with_seed(seed);
            cfg.controller.probe_interval = SimDuration::from_millis(ms);
            let (total, dep) = measure_first_request(cfg);
            let wait = dep
                .map(|d| d.wait_time().as_millis_f64())
                .unwrap_or(f64::NAN);
            (total, wait)
        });
        let total = median(rows.iter().map(|r| r.0).collect());
        let wait = median(rows.iter().map(|r| r.1).collect());
        t.row([
            format!("{ms} ms"),
            fmt_ms(total),
            fmt_ms(wait),
            format!("{:.0}", wait / ms as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "  * Coarser probing quantizes readiness detection: total time grows by ~interval/2.\n"
    );
}

fn kubelet_ablation() {
    use cluster::K8sTimings;
    use simcore::DurationDist;

    println!("== Ablation 2: what makes Kubernetes slow (Nginx, scale-up only) ==\n");
    let mut t = Table::new(["K8s control-plane variant", "median total", "vs stock"]);
    let measure = |timings: Option<K8sTimings>| -> f64 {
        median(run_seeds(&seeds(), 0, |seed| {
            let mut cfg = ScenarioConfig::default()
                .with_backend(ClusterKind::Kubernetes)
                .with_phase(PhaseSetup::Created)
                .with_seed(seed);
            cfg.k8s_timings = timings.clone();
            measure_first_request(cfg).0
        }))
    };
    let stock = measure(None);
    t.row([
        "stock (calibrated EGS)".to_string(),
        fmt_ms(stock),
        "-".to_string(),
    ]);
    let cases: Vec<(&str, K8sTimings)> = vec![
        (
            "instant readiness probes (period → 0.1 s)",
            K8sTimings {
                readiness_probe_period: SimDuration::from_millis(100),
                ..K8sTimings::egs()
            },
        ),
        (
            "fast kubelet sync (380 → 50 ms)",
            K8sTimings {
                kubelet_sync: DurationDist::log_normal_ms(50.0, 0.25),
                ..K8sTimings::egs()
            },
        ),
        (
            "fast watches (85 → 10 ms)",
            K8sTimings {
                watch_latency: DurationDist::log_normal_ms(10.0, 0.3),
                ..K8sTimings::egs()
            },
        ),
        (
            "dedicated scheduler (260 → 60 ms)",
            K8sTimings {
                scheduler_latency: DurationDist::log_normal_ms(60.0, 0.3),
                ..K8sTimings::egs()
            },
        ),
        (
            "fast endpoints propagation (230 → 30 ms)",
            K8sTimings {
                endpoints_propagation: DurationDist::log_normal_ms(30.0, 0.3),
                ..K8sTimings::egs()
            },
        ),
        (
            "all of the above",
            K8sTimings {
                readiness_probe_period: SimDuration::from_millis(100),
                kubelet_sync: DurationDist::log_normal_ms(50.0, 0.25),
                watch_latency: DurationDist::log_normal_ms(10.0, 0.3),
                scheduler_latency: DurationDist::log_normal_ms(60.0, 0.3),
                endpoints_propagation: DurationDist::log_normal_ms(30.0, 0.3),
                ..K8sTimings::egs()
            },
        ),
    ];
    for (name, timings) in cases {
        let ms = measure(Some(timings));
        t.row([
            name.to_string(),
            fmt_ms(ms),
            format!("{:+.0} ms", ms - stock),
        ]);
    }
    let docker: f64 = median(run_seeds(&seeds(), 0, |seed| {
        let cfg = ScenarioConfig::default()
            .with_phase(PhaseSetup::Created)
            .with_seed(seed);
        measure_first_request(cfg).0
    }));
    t.row([
        "same containerd, no control plane (Docker)".to_string(),
        fmt_ms(docker),
        format!("{:+.0} ms", docker - stock),
    ]);
    println!("{}", t.render());
    println!("  * No single knob explains the ~3 s: the gap is the *sum* of watches, scheduler,\n    kubelet sync, readiness probing and endpoints propagation — tuning them all\n    brings K8s close to raw containerd (the Docker row).\n");
}

fn idle_timeout_ablation() {
    println!(
        "== Ablation 3: FlowMemory idle timeout → scale-downs and redeploys (bigFlows trace) ==\n"
    );
    let mut t = Table::new([
        "idle timeout",
        "scale-downs",
        "deployments",
        "median first-request",
        "median all",
    ]);
    for secs in [15u64, 30, 60, 120, 600] {
        let rows: Vec<(u64, usize, f64, f64)> =
            run_seeds(&(1..=5).collect::<Vec<_>>(), 0, |seed| {
                let mut cfg = ScenarioConfig::default().with_seed(seed);
                cfg.controller.scale_down_idle = true;
                cfg.controller.memory_idle_timeout = SimDuration::from_secs(secs);
                let (_, r) = run_bigflows(cfg);
                (
                    r.scale_downs,
                    r.deployments.len(),
                    r.median_first_request_ms(),
                    r.median_time_total_ms(),
                )
            });
        let sd = rows.iter().map(|r| r.0).sum::<u64>() / rows.len() as u64;
        let deps = rows.iter().map(|r| r.1).sum::<usize>() / rows.len();
        let first = median(rows.iter().map(|r| r.2).collect());
        let all = median(rows.iter().map(|r| r.3).collect());
        t.row([
            format!("{secs} s"),
            sd.to_string(),
            deps.to_string(),
            fmt_ms(first),
            fmt_ms(all),
        ]);
    }
    println!("{}", t.render());
    println!("  * Short timeouts reclaim idle instances aggressively but pay redeployments; the paper's 5-minute run sees exactly 42 deployments (no reclaim).\n");
}

fn strategy_ablation() {
    println!("== Ablation 4: deployment strategy (bigFlows trace, Nginx) ==\n");
    let mut t = Table::new(["strategy", "held", "cloud detours", "p99 all requests"]);
    let cases: Vec<(&str, ScenarioConfig)> = vec![
        ("with waiting (Docker)", ScenarioConfig::default()),
        (
            "without waiting",
            ScenarioConfig {
                scheduler: SchedulerSpec::nearest_ready_first(),
                ..ScenarioConfig::default()
            },
        ),
        (
            "hybrid Docker+K8s",
            ScenarioConfig {
                scheduler: SchedulerSpec::hybrid_docker_first(),
                backends: vec![ClusterKind::Docker, ClusterKind::Kubernetes],
                ..ScenarioConfig::default()
            },
        ),
    ];
    for (name, cfg) in cases {
        let rows: Vec<(u64, u64, f64)> = run_seeds(&(1..=5).collect::<Vec<_>>(), 0, |seed| {
            let (_, r) = run_bigflows(cfg.clone().with_seed(seed));
            let mut p = Percentiles::new();
            for rec in &r.records {
                p.record_duration(rec.time_total());
            }
            (r.held_requests, r.cloud_forwards, p.p99())
        });
        let held = rows.iter().map(|r| r.0).sum::<u64>() / rows.len() as u64;
        let cloud = rows.iter().map(|r| r.1).sum::<u64>() / rows.len() as u64;
        let p99 = median(rows.iter().map(|r| r.2).collect());
        t.row([
            name.to_string(),
            held.to_string(),
            cloud.to_string(),
            fmt_ms(p99),
        ]);
    }
    println!("{}", t.render());
    println!("  * Waiting concentrates latency in few held requests (high p99); detouring spreads a small WAN penalty over the first requests.\n");
}

fn resnet_waiting_ablation() {
    println!("== Ablation 5: which service types tolerate on-demand waiting ==\n");
    let mut t = Table::new([
        "service",
        "first-request total (Docker)",
        "verdict vs 1 s budget",
    ]);
    for kind in ServiceKind::ALL {
        let total = median(run_seeds(&seeds(), 0, |seed| {
            let cfg = ScenarioConfig::default()
                .with_service(kind)
                .with_phase(PhaseSetup::Created)
                .with_seed(seed);
            measure_first_request(cfg).0
        }));
        let verdict = if total < 1000.0 {
            "OK for most apps"
        } else {
            "needs without-waiting / pre-deploy"
        };
        t.row([kind.to_string(), fmt_ms(total), verdict.to_string()]);
    }
    println!("{}", t.render());
}

fn main() {
    probe_interval_ablation();
    kubelet_ablation();
    idle_timeout_ablation();
    strategy_ablation();
    resnet_waiting_ablation();
}
