//! The §VII hybrid-strategy experiment: Docker answers first, K8s takes over.
fn main() {
    let seeds: Vec<u64> = (1..=9).collect();
    println!("{}", bench::experiments::hybrid(&seeds).render());
}
