//! §VIII future work: the same web workload deployed as a Docker container,
//! a Kubernetes pod, and a WebAssembly function through the same
//! transparent-access controller — see `bench::experiments::futurework_wasm`.

use simcore::Percentiles;
use testbed::{run_bigflows, ScenarioConfig};
use workload::ServiceKind;

fn main() {
    let seeds: Vec<u64> = (1..=15).collect();
    println!("{}", bench::experiments::futurework_wasm(&seeds).render());

    // The trace view: replay bigFlows against a wasm-only edge.
    let mut cfg = ScenarioConfig::default().with_seed(5);
    cfg.service = ServiceKind::WasmWeb;
    cfg.backends = vec![cluster::ClusterKind::Wasm];
    let (_, result) = run_bigflows(cfg);
    let mut p = Percentiles::new();
    for r in &result.records {
        p.record_duration(r.time_total());
    }
    println!(
        "bigFlows on a wasm edge: {} requests, {} deployments, median first-request {}, p99 {}",
        result.records.len(),
        result.deployments.len(),
        bench::report::fmt_ms(result.median_first_request_ms()),
        bench::report::fmt_ms(p.p99()),
    );
}
