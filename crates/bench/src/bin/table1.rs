//! Regenerate paper Table I.
fn main() {
    println!("{}", bench::experiments::table1().render());
}
