//! Proactive deployment (paper §VII's closing outlook) — see
//! `bench::experiments::proactive`.

fn main() {
    let seeds: Vec<u64> = (1..=7).collect();
    println!("{}", bench::experiments::proactive(&seeds).render());
}
