//! Workload-engine sweep — the trajectory artifact for the arrival-model
//! subsystem (`BENCH_workload.json`).
//!
//! Two sweeps over the same seed-42 scenario:
//!
//! * **Model × shards** — every builtin arrival model (`bigflows`,
//!   `poisson`, `mmpp`, `diurnal`, `flash-crowd`) through the mesh at
//!   {1, 2, 4} ingress shards, recording completions, losses, deployments,
//!   split-brain duplicates observed vs avoided, wall-clock and the run
//!   hash. The invariant gate asserts the flash-crowd rows at >= 2 shards
//!   show `duplicate_deployments == 0` with `avoided > 0`: the spike *must*
//!   produce lease contention and the protocol *must* win it.
//! * **Mobility** — the bigflows and diurnal models with
//!   `handovers_per_client = 2` on a 2-shard mesh, run audited (the
//!   session-continuity analysis rides along) at worker threads 1 and 2.
//!   Gates: zero violations — no session blackholed or double-served across
//!   a handover — and byte-identical hashes across thread counts.
//!
//! Usage:
//!   workload [--quick] [--shards 1,2,4] [--out BENCH_workload.json]

use std::fmt::Write as _;
use std::time::Instant;

use edgemesh::run_mesh_bigflows;
use testbed::{MeshParams, ScenarioConfig};
use workload::WorkloadRegistry;

const SEED: u64 = 42;
const MOBILITY_HANDOVERS: f64 = 2.0;

struct Row {
    model: &'static str,
    shards: usize,
    threads: usize,
    handovers_per_client: f64,
    requests: usize,
    completed: u64,
    lost: u64,
    handovers: u64,
    deployments: u64,
    duplicate_deployments: u64,
    duplicate_deployments_avoided: u64,
    continuity_violations: usize,
    wall_s: f64,
    hash: u64,
}

fn scenario(model: &str, shards: usize, threads: usize, handovers: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig {
        seed: SEED,
        mesh: MeshParams {
            shards,
            threads,
            ..MeshParams::default()
        },
        ..ScenarioConfig::default()
    };
    cfg.workload.model = model.to_string();
    cfg.workload.handovers_per_client = handovers;
    cfg
}

fn run_model(model: &'static str, shards: usize) -> Row {
    let threads = 2.min(shards);
    let t0 = Instant::now();
    let (trace, result) = run_mesh_bigflows(scenario(model, shards, threads, 0.0));
    Row {
        model,
        shards,
        threads: result.threads,
        handovers_per_client: 0.0,
        requests: trace.requests.len(),
        completed: result.completed,
        lost: result.lost,
        handovers: result.handovers,
        deployments: result.deployments,
        duplicate_deployments: result.duplicate_deployments,
        duplicate_deployments_avoided: result.duplicate_deployments_avoided,
        continuity_violations: 0,
        wall_s: t0.elapsed().as_secs_f64(),
        hash: result.mesh_hash(),
    }
}

/// One audited mobility run: the continuity analysis is part of the audit,
/// so `continuity_violations` counts every blackholed or double-served
/// session the run produced (the gate requires zero).
fn run_mobility(model: &'static str, threads: usize) -> Row {
    let cfg = scenario(model, 2, threads, MOBILITY_HANDOVERS);
    let t0 = Instant::now();
    let trace = testbed::generate_workload(&cfg);
    let (result, violations) = edgemesh::run_windowed_audited(cfg, &trace, threads);
    Row {
        model,
        shards: 2,
        threads,
        handovers_per_client: MOBILITY_HANDOVERS,
        requests: trace.requests.len(),
        completed: result.completed,
        lost: result.lost,
        handovers: result.handovers,
        deployments: result.deployments,
        duplicate_deployments: result.duplicate_deployments,
        duplicate_deployments_avoided: result.duplicate_deployments_avoided,
        continuity_violations: violations.len(),
        wall_s: t0.elapsed().as_secs_f64(),
        hash: result.mesh_hash(),
    }
}

fn write_rows(out: &mut String, rows: &[Row]) {
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"handovers_per_client\": {:.1}, \"requests\": {}, \"completed\": {}, \
             \"lost\": {}, \"handovers\": {}, \"deployments\": {}, \
             \"duplicate_deployments\": {}, \"duplicate_deployments_avoided\": {}, \
             \"continuity_violations\": {}, \"wall_s\": {:.6}, \"hash\": \"{:#018x}\"}}",
            r.model,
            r.shards,
            r.threads,
            r.handovers_per_client,
            r.requests,
            r.completed,
            r.lost,
            r.handovers,
            r.deployments,
            r.duplicate_deployments,
            r.duplicate_deployments_avoided,
            r.continuity_violations,
            r.wall_s,
            r.hash,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
}

fn to_json(models: &[Row], mobility: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"workload\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"mobility_handovers_per_client\": {MOBILITY_HANDOVERS:.1},"
    );
    out.push_str("  \"models\": [\n");
    write_rows(&mut out, models);
    out.push_str("  ],\n  \"mobility\": [\n");
    write_rows(&mut out, mobility);
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut shard_counts = vec![1usize, 2, 4];
    let mut out_path = String::from("BENCH_workload.json");
    let mut quick = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                shard_counts = vec![1, 2];
                quick = true;
            }
            "--shards" => {
                i += 1;
                shard_counts = args
                    .get(i)
                    .expect("--shards needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("shard count must be an integer"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let models = WorkloadRegistry::builtin().names();
    let mut rows = Vec::new();
    for model in &models {
        for &shards in &shard_counts {
            let r = run_model(model, shards);
            eprintln!(
                "workload: {:>11} x {} shard(s)  {:>5}/{:<5} req  {:>3} deployments  \
                 {:>2} dup  {:>3} avoided  {:>7.3} s  hash {:#018x}",
                r.model,
                r.shards,
                r.completed,
                r.requests,
                r.deployments,
                r.duplicate_deployments,
                r.duplicate_deployments_avoided,
                r.wall_s,
                r.hash,
            );
            rows.push(r);
        }
    }

    // Mobility sweep: audited 2-shard runs at 1 and 2 worker threads. Quick
    // mode keeps one model; the thread pair stays — hash equality across
    // threads is the cheapest strong determinism signal we have.
    let mobility_models: &[&'static str] = if quick {
        &["bigflows"]
    } else {
        &["bigflows", "diurnal"]
    };
    let mut mobility = Vec::new();
    for model in mobility_models {
        for threads in [1usize, 2] {
            let r = run_mobility(model, threads);
            eprintln!(
                "workload: {:>11} mobile /{} thread(s)  {:>5}/{:<5} req  {:>3} handovers  \
                 {} continuity violation(s)  {:>7.3} s  hash {:#018x}",
                r.model,
                r.threads,
                r.completed,
                r.requests,
                r.handovers,
                r.continuity_violations,
                r.wall_s,
                r.hash,
            );
            mobility.push(r);
        }
    }

    let json = to_json(&rows, &mobility);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    // Gate 1: every row accounts for every request.
    if let Some(r) = rows
        .iter()
        .chain(&mobility)
        .find(|r| r.completed + r.lost != r.requests as u64)
    {
        eprintln!(
            "workload: ACCOUNTING FAILURE: {} x {} shards completed {} + lost {} != {}",
            r.model, r.shards, r.completed, r.lost, r.requests
        );
        std::process::exit(1);
    }
    // Gate 2: flash crowd under a sharded ingress must contend on the lease
    // (avoided > 0) and never split-brain (duplicates == 0).
    for r in rows
        .iter()
        .filter(|r| r.model == "flash-crowd" && r.shards >= 2)
    {
        if r.duplicate_deployments > 0 {
            eprintln!(
                "workload: LEASE VIOLATION: flash-crowd at {} shards produced {} duplicate \
                 deployment(s)",
                r.shards, r.duplicate_deployments
            );
            std::process::exit(1);
        }
        if r.duplicate_deployments_avoided == 0 {
            eprintln!(
                "workload: CONTENTION LIVENESS FAILURE: flash-crowd at {} shards avoided \
                 nothing — the spike no longer exercises the lease protocol",
                r.shards
            );
            std::process::exit(1);
        }
    }
    // Gate 3: zero continuity violations and live handovers on every
    // mobility row.
    if let Some(r) = mobility
        .iter()
        .find(|r| r.continuity_violations > 0 || r.handovers == 0)
    {
        eprintln!(
            "workload: CONTINUITY FAILURE: {} mobile run: {} violation(s), {} handover(s)",
            r.model, r.continuity_violations, r.handovers
        );
        std::process::exit(1);
    }
    // Gate 4: thread count picks the schedule, never the result — each
    // mobility model's threads=1 and threads=2 hashes must match.
    for pair in mobility.chunks(2) {
        if let [a, b] = pair {
            if a.hash != b.hash {
                eprintln!(
                    "workload: THREAD DETERMINISM VIOLATION: {} mobile threads={} hash \
                     {:#018x} != threads={} hash {:#018x}",
                    a.model, a.threads, a.hash, b.threads, b.hash
                );
                std::process::exit(1);
            }
        }
    }
}
