//! City-scale bigFlows throughput sweep — the trajectory artifact for perf
//! PRs (`BENCH_cityscale.json`).
//!
//! Replays the paper's bigFlows workload at {1×, 10×, 100×, 1000×} the
//! paper's scale (clients, services and requests all multiplied; marginals
//! at 1× are exactly the paper's trace) through the full testbed and
//! records, per scale: wall-clock, events/sec, peak future-event-list depth
//! and heap allocations per request (from simcore's workspace-wide counting
//! allocator, feature `counting-alloc`). The 1× run also emits the
//! canonical metrics hash, which CI pins against drift (see
//! `tests/experiments_regression.rs` for the same constant).
//!
//! Usage:
//!   cityscale [--quick] [--scales 1,10,100,1000] [--out BENCH_cityscale.json]
//!             [--expect-hash-1x 0xHEX] [--profile-allocs] [--repeat N]
//!
//! `--repeat N` measures every scale N times (each in its own child
//! process) and keeps the lowest-wall-clock row — best-of-N is the standard
//! way to report a deterministic workload's cost on a host with noisy
//! neighbours, since the metrics are identical across runs and only the
//! wall clock varies.

use std::fmt::Write as _;
use std::time::Instant;

use cluster::ClusterKind;
use simcore::{alloc_count, SimRng};
use testbed::{AllocProfile, ScenarioConfig, SiteSpec, Testbed};
use workload::{Trace, TraceConfig};

const SEED: u64 = 42;

/// Per-phase allocation counts for `--profile-allocs`: the testbed's own
/// phases plus the two the bench measures around it.
struct AllocPhases {
    build: u64,
    profile: AllocProfile,
    hash: u64,
}

struct ScaleResult {
    scale: usize,
    requests: usize,
    services: usize,
    clients: usize,
    events_scheduled: u64,
    peak_queue_depth: usize,
    wall_s: f64,
    events_per_sec: f64,
    allocs_per_request: f64,
    completed: usize,
    lost: u64,
    removes: u64,
    metrics_hash: u64,
    phases: Option<AllocPhases>,
}

fn run_scale(scale: usize, profile_allocs: bool) -> ScaleResult {
    let trace_cfg = TraceConfig::scaled(scale);
    let mut trace_rng = SimRng::seed_from_u64(SEED ^ 0xB16F_1085);
    let trace = Trace::generate(trace_cfg, &mut trace_rng);

    // The default scenario with the edge site's hardware scaled alongside
    // the workload (one aggregate runtime backed by `scale` EGS nodes), so
    // deployments succeed at every multiplier. At 1× this is exactly
    // `ScenarioConfig { seed: 42, ..default }`.
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        sites: vec![(
            SiteSpec::egs("egs-0").with_nodes(scale),
            ClusterKind::Docker,
        )],
        ..ScenarioConfig::default()
    };

    let allocs_at_build = alloc_count::total();
    let testbed = Testbed::build(cfg, trace.service_addrs.clone());
    let allocs_before = alloc_count::total();
    let t0 = Instant::now();
    let result = testbed.run_trace(&trace);
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = alloc_count::total() - allocs_before;
    let allocs_at_hash = alloc_count::total();
    let metrics_hash = result.metrics_hash();
    let phases = profile_allocs.then(|| AllocPhases {
        build: allocs_before - allocs_at_build,
        profile: result.alloc_profile.unwrap_or_default(),
        hash: alloc_count::total() - allocs_at_hash,
    });

    ScaleResult {
        scale,
        requests: trace.requests.len(),
        services: trace.config.services,
        clients: trace.config.clients,
        events_scheduled: result.events_scheduled,
        peak_queue_depth: result.peak_queue_depth,
        wall_s,
        events_per_sec: result.events_scheduled as f64 / wall_s.max(1e-9),
        allocs_per_request: allocs as f64 / trace.requests.len() as f64,
        completed: result.records.len(),
        lost: result.lost,
        removes: result.removes,
        metrics_hash,
        phases,
    }
}

/// One scale's JSON row (no indentation, no trailing comma) — the unit both
/// the in-process path and the per-scale child processes produce.
fn row_json(r: &ScaleResult) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"scale\": {}, \"requests\": {}, \"services\": {}, \"clients\": {}, \
         \"events_scheduled\": {}, \"peak_queue_depth\": {}, \"wall_s\": {:.6}, \
         \"events_per_sec\": {:.1}, \"allocs_per_request\": {:.1}, \
         \"completed\": {}, \"lost\": {}, \"removes\": {}, \"metrics_hash\": \"{:#018x}\"",
        r.scale,
        r.requests,
        r.services,
        r.clients,
        r.events_scheduled,
        r.peak_queue_depth,
        r.wall_s,
        r.events_per_sec,
        r.allocs_per_request,
        r.completed,
        r.lost,
        r.removes,
        r.metrics_hash,
    );
    if let Some(p) = &r.phases {
        let _ = write!(
            out,
            ", \"alloc_phases\": {{\"build\": {}, \"prewarm\": {}, \"schedule\": {}, \
             \"event_loop\": {}, \"hash\": {}}}",
            p.build, p.profile.prewarm, p.profile.schedule, p.profile.event_loop, p.hash,
        );
    }
    out.push('}');
    out
}

fn to_json(rows: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"cityscale\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"scales\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(row);
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run one scale in a fresh child process so every tier is measured on a
/// pristine heap: the big tiers are sensitive to allocator/page state left
/// behind by earlier runs in the same process (~10% wall on the 100x tier
/// after a 1x+10x warm-up — the artifact should report per-scale cost, not
/// heap-history cost). Falls back to in-process measurement if the binary
/// cannot re-exec itself.
fn run_scale_isolated(scale: usize, profile_allocs: bool) -> String {
    let child = std::env::current_exe().ok().and_then(|exe| {
        let mut cmd = std::process::Command::new(exe);
        cmd.arg("--scale-row").arg(scale.to_string());
        if profile_allocs {
            cmd.arg("--profile-allocs");
        }
        cmd.stderr(std::process::Stdio::inherit());
        cmd.output().ok()
    });
    match child {
        Some(out) if out.status.success() => {
            let row = String::from_utf8(out.stdout).expect("child row is UTF-8");
            let row = row.trim();
            assert!(
                row.starts_with('{') && row.ends_with('}'),
                "malformed child row: {row:?}"
            );
            row.to_string()
        }
        Some(out) => {
            panic!("scale {scale} child failed with {}", out.status);
        }
        None => row_json(&run_scale(scale, profile_allocs)),
    }
}

/// Extract `"metrics_hash": "0x..."` back out of a JSON row.
fn row_hash(row: &str) -> u64 {
    let key = "\"metrics_hash\": \"0x";
    let at = row.find(key).expect("row carries a metrics_hash") + key.len();
    u64::from_str_radix(&row[at..at + 16], 16).expect("hash is 16 hex digits")
}

/// Extract `"wall_s": ...` back out of a JSON row (for `--repeat` best-of-N).
fn row_wall(row: &str) -> f64 {
    let key = "\"wall_s\": ";
    let at = row.find(key).expect("row carries a wall_s") + key.len();
    let end = row[at..].find(',').expect("wall_s is not the last field") + at;
    row[at..end].parse().expect("wall_s is a float")
}

fn main() {
    let mut scales = vec![1usize, 10, 100, 1000];
    let mut out_path = String::from("BENCH_cityscale.json");
    let mut expect_hash_1x: Option<u64> = None;
    let mut profile_allocs = false;
    let mut scale_row: Option<usize> = None;
    let mut repeat = 1usize;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scales = vec![1],
            "--scales" => {
                i += 1;
                scales = args
                    .get(i)
                    .expect("--scales needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("scale must be an integer"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--expect-hash-1x" => {
                i += 1;
                let s = args.get(i).expect("--expect-hash-1x needs a hex value");
                let s = s.trim_start_matches("0x");
                expect_hash_1x = Some(u64::from_str_radix(s, 16).expect("hash must be hex"));
            }
            "--profile-allocs" => profile_allocs = true,
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("repeat must be an integer");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            // Child mode of `run_scale_isolated`: measure one scale and
            // print its JSON row on stdout.
            "--scale-row" => {
                i += 1;
                scale_row = Some(
                    args.get(i)
                        .expect("--scale-row needs a scale")
                        .parse()
                        .expect("scale must be an integer"),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(scale) = scale_row {
        let r = run_scale(scale, profile_allocs);
        report(&r);
        println!("{}", row_json(&r));
        return;
    }

    let mut rows = Vec::new();
    for &scale in &scales {
        let mut best: Option<String> = None;
        for rep in 0..repeat {
            eprintln!("cityscale: running {scale}x ({}/{repeat}) ...", rep + 1);
            let row = run_scale_isolated(scale, profile_allocs);
            if best.as_ref().is_none_or(|b| row_wall(&row) < row_wall(b)) {
                best = Some(row);
            }
        }
        rows.push(best.expect("--repeat is at least 1"));
    }

    let json = to_json(&rows);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    if let Some(expect) = expect_hash_1x {
        let got = rows
            .iter()
            .map(|row| row_hash(row))
            .zip(&scales)
            .find(|&(_, &s)| s == 1)
            .expect("--expect-hash-1x requires a 1x run")
            .0;
        if got != expect {
            eprintln!(
                "cityscale: DETERMINISM DRIFT at 1x: expected {expect:#018x}, got {got:#018x}"
            );
            std::process::exit(1);
        }
        eprintln!("cityscale: 1x determinism hash OK ({got:#018x})");
    }
}

/// The per-scale human-readable summary (stderr).
fn report(r: &ScaleResult) {
    eprintln!(
        "cityscale: {:>4}x  {:>9} req  {:>10} events  {:>8.3} s  {:>12.0} ev/s  \
         peak {:>8}  {:>6.1} allocs/req  hash {:#018x}",
        r.scale,
        r.requests,
        r.events_scheduled,
        r.wall_s,
        r.events_per_sec,
        r.peak_queue_depth,
        r.allocs_per_request,
        r.metrics_hash,
    );
    if let Some(p) = &r.phases {
        eprintln!(
            "cityscale:       allocs  build {:>10}  prewarm {:>8}  schedule {:>8}  \
             event_loop {:>10}  hash {:>6}",
            p.build, p.profile.prewarm, p.profile.schedule, p.profile.event_loop, p.hash,
        );
    }
}
