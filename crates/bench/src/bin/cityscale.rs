//! City-scale bigFlows throughput sweep — the trajectory artifact for perf
//! PRs (`BENCH_cityscale.json`).
//!
//! Replays the paper's bigFlows workload at {1×, 10×, 100×} the paper's
//! scale (clients, services and requests all multiplied; marginals at 1×
//! are exactly the paper's trace) through the full testbed and records, per
//! scale: wall-clock, events/sec, peak future-event-list depth and heap
//! allocations per request. The 1× run also emits the canonical metrics
//! hash, which CI pins against drift (see `tests/experiments_regression.rs`
//! for the same constant).
//!
//! Usage:
//!   cityscale [--quick] [--scales 1,10,100] [--out BENCH_cityscale.json]
//!             [--expect-hash-1x 0xHEX]

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cluster::ClusterKind;
use simcore::SimRng;
use testbed::{ScenarioConfig, SiteSpec, Testbed};
use workload::{Trace, TraceConfig};

/// Counts every heap allocation so the benchmark can report
/// allocations-per-request on the hot path.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 42;

struct ScaleResult {
    scale: usize,
    requests: usize,
    services: usize,
    clients: usize,
    events_scheduled: u64,
    peak_queue_depth: usize,
    wall_s: f64,
    events_per_sec: f64,
    allocs_per_request: f64,
    completed: usize,
    lost: u64,
    removes: u64,
    metrics_hash: u64,
}

fn run_scale(scale: usize) -> ScaleResult {
    let trace_cfg = TraceConfig::scaled(scale);
    let mut trace_rng = SimRng::seed_from_u64(SEED ^ 0xB16F_1085);
    let trace = Trace::generate(trace_cfg, &mut trace_rng);

    // The default scenario with the edge site's hardware scaled alongside
    // the workload (one aggregate runtime backed by `scale` EGS nodes), so
    // deployments succeed at every multiplier. At 1× this is exactly
    // `ScenarioConfig { seed: 42, ..default }`.
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        sites: vec![(
            SiteSpec::egs("egs-0").with_nodes(scale),
            ClusterKind::Docker,
        )],
        ..ScenarioConfig::default()
    };

    let testbed = Testbed::build(cfg, trace.service_addrs.clone());
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let result = testbed.run_trace(&trace);
    let wall_s = t0.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    ScaleResult {
        scale,
        requests: trace.requests.len(),
        services: trace.config.services,
        clients: trace.config.clients,
        events_scheduled: result.events_scheduled,
        peak_queue_depth: result.peak_queue_depth,
        wall_s,
        events_per_sec: result.events_scheduled as f64 / wall_s.max(1e-9),
        allocs_per_request: allocs as f64 / trace.requests.len() as f64,
        completed: result.records.len(),
        lost: result.lost,
        removes: result.removes,
        metrics_hash: result.metrics_hash(),
    }
}

fn to_json(results: &[ScaleResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"cityscale\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scale\": {}, \"requests\": {}, \"services\": {}, \"clients\": {}, \
             \"events_scheduled\": {}, \"peak_queue_depth\": {}, \"wall_s\": {:.6}, \
             \"events_per_sec\": {:.1}, \"allocs_per_request\": {:.1}, \
             \"completed\": {}, \"lost\": {}, \"removes\": {}, \"metrics_hash\": \"{:#018x}\"}}",
            r.scale,
            r.requests,
            r.services,
            r.clients,
            r.events_scheduled,
            r.peak_queue_depth,
            r.wall_s,
            r.events_per_sec,
            r.allocs_per_request,
            r.completed,
            r.lost,
            r.removes,
            r.metrics_hash,
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut scales = vec![1usize, 10, 100];
    let mut out_path = String::from("BENCH_cityscale.json");
    let mut expect_hash_1x: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scales = vec![1],
            "--scales" => {
                i += 1;
                scales = args
                    .get(i)
                    .expect("--scales needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("scale must be an integer"))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--expect-hash-1x" => {
                i += 1;
                let s = args.get(i).expect("--expect-hash-1x needs a hex value");
                let s = s.trim_start_matches("0x");
                expect_hash_1x = Some(u64::from_str_radix(s, 16).expect("hash must be hex"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut results = Vec::new();
    for &scale in &scales {
        eprintln!("cityscale: running {scale}x ...");
        let r = run_scale(scale);
        eprintln!(
            "cityscale: {:>4}x  {:>9} req  {:>10} events  {:>8.3} s  {:>12.0} ev/s  \
             peak {:>8}  {:>6.1} allocs/req  hash {:#018x}",
            r.scale,
            r.requests,
            r.events_scheduled,
            r.wall_s,
            r.events_per_sec,
            r.peak_queue_depth,
            r.allocs_per_request,
            r.metrics_hash,
        );
        results.push(r);
    }

    let json = to_json(&results);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    if let Some(expect) = expect_hash_1x {
        let got = results
            .iter()
            .find(|r| r.scale == 1)
            .expect("--expect-hash-1x requires a 1x run")
            .metrics_hash;
        if got != expect {
            eprintln!(
                "cityscale: DETERMINISM DRIFT at 1x: expected {expect:#018x}, got {got:#018x}"
            );
            std::process::exit(1);
        }
        eprintln!("cityscale: 1x determinism hash OK ({got:#018x})");
    }
}
