//! Client mobility across a distributed multi-switch fabric (paper §IV-B's
//! location tracking + the Follow-Me-Edge related work \[12\], \[13\]).
//!
//! Half the clients roam from switch 0 to the far switch mid-run. With
//! Follow-Me-Edge re-decisions, their flows move to the site local to the new
//! switch; without it they would hairpin across the trunk for the rest of
//! the run.

use bench::report::{fmt_ms, Table};
use simcore::SimDuration;
use testbed::{run_mobility, FabricConfig};

fn main() {
    let mut t = Table::new([
        "scenario",
        "requests",
        "deployments/site",
        "median before roam",
        "median after roam",
    ]);
    for (name, cfg) in [
        (
            "no roaming",
            FabricConfig {
                roam_at: None,
                seed: 3,
                ..FabricConfig::default()
            },
        ),
        (
            "roam at t=60 s (2 switches)",
            FabricConfig {
                seed: 3,
                ..FabricConfig::default()
            },
        ),
        (
            "roam at t=60 s (3-switch chain)",
            FabricConfig {
                switches: 3,
                seed: 3,
                roam_at: Some(SimDuration::from_secs(60)),
                ..FabricConfig::default()
            },
        ),
    ] {
        let r = run_mobility(cfg);
        t.row([
            name.to_string(),
            format!("{} ({} lost)", r.records.len(), r.lost),
            format!("{:?}", r.deployments_per_site),
            fmt_ms(r.median_before_ms),
            fmt_ms(r.median_after_ms),
        ]);
    }
    println!("== Mobility across a distributed switch fabric ==\n");
    println!("{}", t.render());
    println!(
        "  * After the roam, the Dispatcher sees the clients behind the far switch and\n    Follow-Me-Edge re-decisions keep them on the local site — post-roam medians\n    stay at local-edge latency instead of paying trunk hairpins."
    );
}
