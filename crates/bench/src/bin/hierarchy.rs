//! The hierarchical edge continuum of paper §IV-A2 — see
//! `bench::experiments::hierarchy` for the scenario definitions.

fn main() {
    let seeds: Vec<u64> = (1..=7).collect();
    println!("{}", bench::experiments::hierarchy(&seeds).render());
}
