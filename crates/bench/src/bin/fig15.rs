//! Regenerate paper Fig15.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig15(&seeds).render());
}
