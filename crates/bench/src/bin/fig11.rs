//! Regenerate paper Fig11.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig11(&seeds).render());
}
