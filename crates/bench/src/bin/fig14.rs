//! Regenerate paper Fig14.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig14(&seeds).render());
}
