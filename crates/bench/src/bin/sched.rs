//! Scheduler-ablation bench — the capacity-aware policy comparison artifact
//! (`BENCH_sched.json`).
//!
//! Replays the bigFlows workload over a capacity-constrained three-tier
//! continuum (a small near edge, a mid-size metro EGS, a large regional
//! site) under every provisioning policy in the registry's comparison set,
//! and records per (policy × workload) row: request latency (mean / p95),
//! SLO violations, deployments, retargets (migrations), cloud forwards and
//! admission rejections. Two gates ride along:
//!
//! * `capacity_violations` must be 0 in every row — admission control never
//!   lets a booking exceed a site's declared [`SiteCapacity`];
//! * the default policy on the default unlimited-capacity scenario must
//!   reproduce the pinned seed-42 metrics hash byte-identically
//!   (`--expect-hash`, same constant as the cityscale gate).
//!
//! Usage:
//!   sched [--quick] [--out BENCH_sched.json] [--expect-hash 0xHEX]

use std::fmt::Write as _;

use cluster::{ClusterKind, SiteCapacity};
use simcore::{SimDuration, SimRng};
use testbed::{ScenarioConfig, SchedulerSpec, SiteSpec, Testbed};
use workload::{Trace, TraceConfig};

const SEED: u64 = 42;

/// A request slower than this misses the edge-latency SLO: cloud round
/// trips (~104 ms time_total on the default WAN) and deployment-blocked
/// first requests violate it, edge-served requests meet it comfortably.
const SLO_MS: f64 = 100.0;

/// One comparison policy: display name + `SchedulerSpec` constructor.
type Policy = (&'static str, fn() -> SchedulerSpec);

/// The policies the ablation compares (every registry entry that makes
/// sense on a Docker-only continuum).
const POLICIES: [Policy; 5] = [
    ("nearest-waiting", SchedulerSpec::nearest_waiting),
    ("nearest-ready-first", SchedulerSpec::nearest_ready_first),
    ("least-loaded", SchedulerSpec::least_loaded),
    ("bounded-cost", SchedulerSpec::bounded_cost),
    ("tier-spill", SchedulerSpec::tier_spill),
];

struct Row {
    policy: &'static str,
    workload: &'static str,
    requests: usize,
    completed: usize,
    lost: u64,
    mean_ms: f64,
    p95_ms: f64,
    slo_violations: usize,
    deployments: usize,
    proactive_deployments: u64,
    retargets: u64,
    cloud_forwards: u64,
    admission_rejections: u64,
    capacity_violations: u64,
}

/// The capacity-constrained three-tier continuum every comparison row runs
/// on. The near edge fits only a handful of services, the metro EGS a few
/// dozen, the regional site everything — so policies that spill early and
/// policies that hold requests near the client genuinely diverge.
fn constrained_sites() -> Vec<(SiteSpec, ClusterKind)> {
    let mut near = SiteSpec::pi("near-edge", SimDuration::from_micros(200))
        .with_nodes(2)
        .with_capacity(SiteCapacity::new(2_000, 3_072).with_max_replicas(10));
    near.labels = vec!["tier:near".into()];
    let mut metro = SiteSpec::egs("metro-egs")
        .with_capacity(SiteCapacity::new(8_000, 16_384).with_max_replicas(40));
    metro.latency = SimDuration::from_millis(2);
    metro.labels = vec!["tier:metro".into()];
    let mut regional = SiteSpec::egs("regional-dc")
        .with_nodes(4)
        .with_capacity(SiteCapacity::new(64_000, 131_072));
    regional.latency = SimDuration::from_millis(8);
    regional.labels = vec!["tier:regional".into()];
    vec![
        (near, ClusterKind::Docker),
        (metro, ClusterKind::Docker),
        (regional, ClusterKind::Docker),
    ]
}

fn workload_trace(scale: usize) -> Trace {
    let mut trace_rng = SimRng::seed_from_u64(SEED ^ 0xB16F_1085);
    Trace::generate(TraceConfig::scaled(scale), &mut trace_rng)
}

fn run_row(policy: Policy, workload: &'static str, trace: &Trace) -> Row {
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        sites: constrained_sites(),
        scheduler: policy.1(),
        ..ScenarioConfig::default()
    };
    let result = Testbed::build(cfg, trace.service_addrs.clone()).run_trace(trace);

    let mut totals_ms: Vec<f64> = result.time_totals_ms();
    totals_ms.sort_by(f64::total_cmp);
    let mean_ms = if totals_ms.is_empty() {
        0.0
    } else {
        totals_ms.iter().sum::<f64>() / totals_ms.len() as f64
    };
    let p95_ms = totals_ms
        .get((totals_ms.len().saturating_sub(1)) * 95 / 100)
        .copied()
        .unwrap_or(0.0);
    let slo_violations = totals_ms.iter().filter(|&&t| t > SLO_MS).count();

    Row {
        policy: policy.0,
        workload,
        requests: trace.requests.len(),
        completed: result.records.len(),
        lost: result.lost,
        mean_ms,
        p95_ms,
        slo_violations,
        deployments: result.deployments.len(),
        proactive_deployments: result.proactive_deployments,
        retargets: result.retargets,
        cloud_forwards: result.cloud_forwards,
        admission_rejections: result.admission_rejections,
        capacity_violations: result.capacity_violations,
    }
}

/// The determinism gate: the default policy on the default unlimited-
/// capacity scenario (exactly the cityscale 1× configuration) must hash to
/// the pinned constant.
fn baseline_hash() -> u64 {
    let trace = workload_trace(1);
    let cfg = ScenarioConfig {
        seed: SEED,
        clients: trace.config.clients,
        sites: vec![(SiteSpec::egs("egs-0").with_nodes(1), ClusterKind::Docker)],
        ..ScenarioConfig::default()
    };
    Testbed::build(cfg, trace.service_addrs.clone())
        .run_trace(&trace)
        .metrics_hash()
}

fn to_json(rows: &[Row], baseline: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sched\",\n");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"slo_ms\": {SLO_MS},");
    let _ = writeln!(out, "  \"baseline_hash\": \"{baseline:#018x}\",");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"policy\": \"{}\", \"workload\": \"{}\", \"requests\": {}, \
             \"completed\": {}, \"lost\": {}, \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"slo_violations\": {}, \"deployments\": {}, \"proactive_deployments\": {}, \
             \"retargets\": {}, \"cloud_forwards\": {}, \"admission_rejections\": {}, \
             \"capacity_violations\": {}}}",
            r.policy,
            r.workload,
            r.requests,
            r.completed,
            r.lost,
            r.mean_ms,
            r.p95_ms,
            r.slo_violations,
            r.deployments,
            r.proactive_deployments,
            r.retargets,
            r.cloud_forwards,
            r.admission_rejections,
            r.capacity_violations,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sched.json");
    let mut expect_hash: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--expect-hash" => {
                i += 1;
                let s = args.get(i).expect("--expect-hash needs a hex value");
                let s = s.trim_start_matches("0x");
                expect_hash = Some(u64::from_str_radix(s, 16).expect("hash must be hex"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let workloads: &[(&'static str, usize)] = if quick {
        &[("bigflows-1x", 1)]
    } else {
        &[("bigflows-1x", 1), ("bigflows-2x", 2)]
    };

    let mut rows = Vec::new();
    for &(workload, scale) in workloads {
        let trace = workload_trace(scale);
        for policy in POLICIES {
            let r = run_row(policy, workload, &trace);
            eprintln!(
                "sched: {:<20} {:<12} mean {:>8.2} ms  p95 {:>8.2} ms  slo-viol {:>5}  \
                 deploys {:>3}  retargets {:>3}  cloud {:>5}  rejected {:>4}  cap-viol {}",
                r.policy,
                r.workload,
                r.mean_ms,
                r.p95_ms,
                r.slo_violations,
                r.deployments,
                r.retargets,
                r.cloud_forwards,
                r.admission_rejections,
                r.capacity_violations,
            );
            rows.push(r);
        }
    }

    eprintln!("sched: running unlimited-capacity baseline for the determinism gate ...");
    let baseline = baseline_hash();
    eprintln!("sched: baseline hash {baseline:#018x}");

    let json = to_json(&rows, baseline);
    std::fs::write(&out_path, &json).expect("write benchmark artifact");
    print!("{json}");

    let overbooked: Vec<&Row> = rows.iter().filter(|r| r.capacity_violations != 0).collect();
    if !overbooked.is_empty() {
        for r in overbooked {
            eprintln!(
                "sched: CAPACITY VIOLATION: {} on {} overbooked a site {} time(s)",
                r.policy, r.workload, r.capacity_violations
            );
        }
        std::process::exit(1);
    }
    eprintln!(
        "sched: capacity gate OK (0 violations across {} rows)",
        rows.len()
    );

    if let Some(expect) = expect_hash {
        if baseline != expect {
            eprintln!(
                "sched: DETERMINISM DRIFT on the default policy: expected {expect:#018x}, \
                 got {baseline:#018x}"
            );
            std::process::exit(1);
        }
        eprintln!("sched: default-policy determinism hash OK ({baseline:#018x})");
    }
}
