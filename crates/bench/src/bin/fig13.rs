//! Regenerate paper Fig13.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig13(&seeds).render());
}
