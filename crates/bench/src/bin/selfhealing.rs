//! Self-healing after instance crashes — the flip side of Fig. 11's
//! "Kubernetes is slow": the paper's §VII keeps Kubernetes around precisely
//! because it provides "automated management and scaling of container
//! instances". Here a running instance is killed and we measure how long
//! the service stays unreachable on each backend.

use bench::report::{fmt_ms, Table};
use cluster::{
    ClusterBackend, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate, WasmEdgeCluster,
    WasmTimings,
};
use containers::Runtime;
use simcore::{run_seeds, DurationDist, Percentiles, SimDuration, SimRng, SimTime};
use simnet::IpAddr;
use workload::services::standard_registries;

fn downtime_ms(backend: &mut dyn ClusterBackend, tpl: &ServiceTemplate) -> Option<f64> {
    let regs = standard_registries(false);
    let t = backend.pull(SimTime::ZERO, tpl, &regs).ok()?;
    let t = backend.create(t, tpl).ok()?;
    let warm = backend.scale_up(t, &tpl.name, 1).ok()?.expected_ready + SimDuration::from_secs(1);
    backend
        .inject_crash(warm, &tpl.name)
        .recovery()
        .map(|rec| (rec - warm).as_millis_f64())
}

fn median_downtime<F>(make: F, tpl: &ServiceTemplate) -> Option<f64>
where
    F: Fn(u64) -> Box<dyn ClusterBackend> + Sync,
{
    let samples: Vec<Option<f64>> = run_seeds(&(1..=15).collect::<Vec<u64>>(), 0, |seed| {
        downtime_ms(make(seed).as_mut(), tpl)
    });
    if samples.iter().any(|s| s.is_none()) {
        return None;
    }
    let mut p = Percentiles::new();
    for s in samples.into_iter().flatten() {
        p.record(s);
    }
    Some(p.median())
}

fn main() {
    let nginx = ServiceTemplate::single(
        "nginx-web-00",
        "nginx:1.23.2",
        80,
        DurationDist::log_normal_ms(110.0, 0.2),
    );
    let wasm_fn =
        ServiceTemplate::single("wasm-web-00", "edge/web-fn.wasm", 80, DurationDist::zero());

    let mut t = Table::new(["backend", "self-heals?", "median downtime after crash"]);

    let docker_downtime = median_downtime(
        |seed| {
            let rng = SimRng::seed_from_u64(seed);
            Box::new(DockerCluster::new(
                "d",
                IpAddr::new(10, 0, 0, 1),
                Runtime::egs(rng.stream("rt")),
                rng.stream("docker"),
            ))
        },
        &nginx,
    );
    t.row([
        "Docker (no restart policy)".to_string(),
        "no — controller must redeploy".to_string(),
        docker_downtime
            .map(fmt_ms)
            .unwrap_or_else(|| "∞ (until next request)".into()),
    ]);

    let k8s_downtime = median_downtime(
        |seed| {
            let rng = SimRng::seed_from_u64(seed);
            Box::new(K8sCluster::new(
                "k",
                IpAddr::new(10, 0, 0, 2),
                Runtime::egs(rng.stream("rt")),
                rng.stream("k8s"),
                K8sTimings::egs(),
            ))
        },
        &nginx,
    );
    t.row([
        "Kubernetes (restartPolicy: Always)".to_string(),
        "yes — kubelet restarts the pod".to_string(),
        k8s_downtime.map(fmt_ms).unwrap_or_else(|| "-".into()),
    ]);

    let wasm_downtime = median_downtime(
        |seed| {
            Box::new(WasmEdgeCluster::new(
                "w",
                IpAddr::new(10, 0, 0, 3),
                SimRng::seed_from_u64(seed),
                WasmTimings::egs(),
            ))
        },
        &wasm_fn,
    );
    t.row([
        "Wasm gateway".to_string(),
        "yes — re-instantiates".to_string(),
        wasm_downtime.map(fmt_ms).unwrap_or_else(|| "-".into()),
    ]);

    println!("== §VII's other half — who recovers from a crashed instance? ==\n");
    println!("{}", t.render());
    println!(
        "  * The paper trades K8s' ~3 s scale-up for exactly this: unattended recovery.\n  * The hybrid strategy (Docker-fast first response + K8s steady state) gets both."
    );
}
