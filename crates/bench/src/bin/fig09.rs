//! Regenerate paper Fig. 9: the bigFlows-like request distribution.
fn main() {
    println!("{}", bench::experiments::fig09(1).render());
}
