//! Regenerate paper Fig. 10: deployments over time when replaying the trace.
fn main() {
    println!("{}", bench::experiments::fig10(1).render());
}
