//! Regenerate paper Fig16.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig16(&seeds).render());
}
