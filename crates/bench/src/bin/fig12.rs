//! Regenerate paper Fig12.
fn main() {
    let seeds = bench::experiments::default_seeds();
    println!("{}", bench::experiments::fig12(&seeds).render());
}
