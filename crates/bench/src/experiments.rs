//! The experiments behind every table and figure of the paper's evaluation
//! (§VI). Each function returns a rendered [`Table`] plus commentary;
//! the `fig*` binaries print them individually and `all_experiments`
//! assembles EXPERIMENTS.md from the lot.
//!
//! Medians are taken over independent seeded replicas (the paper medians over
//! 42 deployments per test run); replicas run in parallel via
//! [`simcore::run_seeds`].

use cluster::ClusterKind;
use containers::ImageStore;
use simcore::time::SimDuration;
use simcore::{run_seeds, Percentiles, SimRng, SimTime, TimeSeries};
use testbed::{measure_first_request, run_bigflows, PhaseSetup, ScenarioConfig, SchedulerSpec};
use workload::{ServiceKind, ServiceProfile, Trace, TraceConfig};

use crate::report::{fmt_ms, Table};

/// Seeds used for replicated measurements.
pub fn default_seeds() -> Vec<u64> {
    (1..=31).collect()
}

fn median(samples: Vec<f64>) -> f64 {
    let mut p = Percentiles::new();
    for s in samples {
        p.record(s);
    }
    p.median()
}

/// One experiment's output: a title, the regenerated table, and the
/// paper-comparison notes that go into EXPERIMENTS.md.
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub table: Table,
    pub notes: Vec<String>,
    /// Worker threads the replicated measurements fanned out over
    /// ([`simcore::RunnerMeta::effective_threads`]); `None` for single-run
    /// tables.
    pub effective_threads: Option<usize>,
}

impl Experiment {
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} ==\n\n{}",
            self.id,
            self.title,
            self.table.render()
        );
        if !self.notes.is_empty() || self.effective_threads.is_some() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("  * {n}\n"));
            }
            if let Some(t) = self.effective_threads {
                out.push_str(&format!("  * replicas fanned out over {t} threads.\n"));
            }
        }
        out
    }
}

/// Parallelism metadata for a replicated experiment over `seeds` (all
/// replicated experiments request `threads = 0`, i.e. all CPUs).
fn fanout_threads(seeds: &[u64]) -> Option<usize> {
    Some(simcore::RunnerMeta::plan(0, seeds.len()).effective_threads)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Table I: the four edge services.
pub fn table1() -> Experiment {
    let mut t = Table::new([
        "Service",
        "Image(s)",
        "Size",
        "Layers",
        "Containers",
        "HTTP",
    ]);
    for p in ServiceProfile::catalog() {
        let images: Vec<String> = p.manifests.iter().map(|m| m.reference.0.clone()).collect();
        let size = p.image_bytes();
        let size_str = if size < 1 << 20 {
            format!("{:.2} KiB", size as f64 / 1024.0)
        } else {
            format!("{:.0} MiB", size as f64 / (1 << 20) as f64)
        };
        t.row([
            p.kind.to_string(),
            images.join(" + "),
            size_str,
            p.layer_count().to_string(),
            p.container_count().to_string(),
            p.http_method.to_string(),
        ]);
    }
    Experiment {
        id: "Table I",
        effective_threads: None,
        title: "Edge services used in this work",
        table: t,
        notes: vec![
            "Paper: 6.18 KiB/1 (Asm), 135 MiB/6 (Nginx), 308 MiB/9 (ResNet), 181 MiB/7 (Nginx+Py) — reproduced exactly.".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 / Fig. 10 — the workload and the deployments it causes
// ---------------------------------------------------------------------------

/// Fig. 9: distribution of 1708 requests to 42 services over five minutes.
pub fn fig09(seed: u64) -> Experiment {
    let trace = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(seed));
    let mut ts = TimeSeries::new(SimDuration::from_secs(10), trace.config.duration);
    for r in &trace.requests {
        ts.record(r.at);
    }
    let mut t = Table::new(["t [s]", "requests / 10 s"]);
    for (start, count) in ts.points() {
        t.row([format!("{start:>3.0}"), format!("{count}")]);
    }
    let counts = trace.per_service_counts();
    let max = counts.iter().max().copied().unwrap_or(0);
    let min = counts.iter().min().copied().unwrap_or(0);
    Experiment {
        id: "Fig. 9",
        effective_threads: None,
        title: "Distribution of 1708 requests to 42 edge services over five minutes",
        table: t,
        notes: vec![format!(
            "{} requests to {} services; per-service counts {}..{} (paper: every service ≥ 20).",
            trace.requests.len(),
            trace.service_addrs.len(),
            min,
            max
        )],
    }
}

/// Fig. 10: distribution of the 42 deployments over five minutes.
pub fn fig10(seed: u64) -> Experiment {
    let (_, result) = run_bigflows(ScenarioConfig::default().with_seed(seed));
    let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(300));
    for d in &result.deployments {
        ts.record(SimTime::ZERO + (d.triggered_at - (SimTime::ZERO + result.trace_offset)));
    }
    let mut t = Table::new(["t [s]", "deployments / s"]);
    for (start, count) in ts.points().filter(|(_, c)| *c > 0) {
        t.row([format!("{start:>3.0}"), format!("{count}")]);
    }
    Experiment {
        id: "Fig. 10",
        effective_threads: None,
        title: "Distribution of 42 edge service deployments over five minutes",
        table: t,
        notes: vec![format!(
            "{} deployments, peak {}/s (paper: 42 deployments, up to 8/s in the beginning).",
            result.deployments.len(),
            ts.peak()
        )],
    }
}

// ---------------------------------------------------------------------------
// Figs. 11/12 — scale-up and create+scale-up totals
// ---------------------------------------------------------------------------

fn first_request_samples(
    service: ServiceKind,
    backend: ClusterKind,
    phase: PhaseSetup,
    seeds: &[u64],
) -> Percentiles {
    let mut p = Percentiles::new();
    for v in run_seeds(seeds, 0, |seed| {
        let cfg = ScenarioConfig::default()
            .with_service(service)
            .with_backend(backend)
            .with_phase(phase)
            .with_seed(seed);
        measure_first_request(cfg).0
    }) {
        p.record(v);
    }
    p
}

fn first_request_median_ms(
    service: ServiceKind,
    backend: ClusterKind,
    phase: PhaseSetup,
    seeds: &[u64],
) -> f64 {
    first_request_samples(service, backend, phase, seeds).median()
}

/// Median plus interquartile range, mirroring the paper's boxplots.
fn fmt_box(p: &mut Percentiles) -> String {
    format!(
        "{} [{}..{}]",
        fmt_ms(p.median()),
        fmt_ms(p.p25()),
        fmt_ms(p.p75())
    )
}

fn phase_table(phase: PhaseSetup, seeds: &[u64]) -> Table {
    let mut t = Table::new([
        "Service",
        "Docker  median [IQR]",
        "K8s  median [IQR]",
        "K8s / Docker",
    ]);
    for kind in ServiceKind::ALL {
        let mut d = first_request_samples(kind, ClusterKind::Docker, phase, seeds);
        let mut k = first_request_samples(kind, ClusterKind::Kubernetes, phase, seeds);
        let ratio = k.median() / d.median();
        t.row([
            kind.to_string(),
            fmt_box(&mut d),
            fmt_box(&mut k),
            format!("{ratio:.1}x"),
        ]);
    }
    t
}

/// Fig. 11: total time (median) to *scale up* the four services on the two
/// clusters — images cached, service created, request held while the
/// instance starts.
pub fn fig11(seeds: &[u64]) -> Experiment {
    Experiment {
        id: "Fig. 11",
        effective_threads: fanout_threads(seeds),
        title: "Total time (median) to scale up four services on two clusters",
        table: phase_table(PhaseSetup::Created, seeds),
        notes: vec![
            "Paper anchors: Docker < 1 s, Kubernetes ≈ 3 s for Asm/Nginx; no notable Asm-vs-Nginx difference; ResNet significantly slower.".into(),
        ],
    }
}

/// Fig. 12: total time (median) to *create + scale up*.
pub fn fig12(seeds: &[u64]) -> Experiment {
    Experiment {
        id: "Fig. 12",
        effective_threads: fanout_threads(seeds),
        title: "Total time (median) to create + scale up four services on two clusters",
        table: phase_table(PhaseSetup::ImagesCached, seeds),
        notes: vec![
            "Paper: creating the containers adds ≈ 100 ms over Fig. 11 — except ResNet, where the overhead disappears in its long start time.".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Fig. 13 — pull times
// ---------------------------------------------------------------------------

/// Median time to pull all images of `profile` into a fresh store.
fn pull_median_ms(profile: &ServiceProfile, private: bool, seeds: &[u64]) -> f64 {
    let samples = run_seeds(seeds, 0, |seed| {
        let regs = workload::services::standard_registries(private);
        let mut store = ImageStore::new();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x00F1_6013);
        let mut t = SimTime::ZERO;
        for m in &profile.manifests {
            let reg = regs.route(&m.reference).expect("image published");
            t = reg
                .pull(t, &m.reference, &mut store, &mut rng)
                .expect("pull succeeds")
                .completed_at;
        }
        (t - SimTime::ZERO).as_millis_f64()
    });
    median(samples)
}

/// Fig. 13: total pull time per service image set, from the home registry
/// (Docker Hub / GCR) vs the private LAN registry.
pub fn fig13(seeds: &[u64]) -> Experiment {
    let mut t = Table::new(["Service", "Hub/GCR", "Private registry", "Saved"]);
    let mut notes = Vec::new();
    for p in ServiceProfile::catalog() {
        let wan = pull_median_ms(&p, false, seeds);
        let lan = pull_median_ms(&p, true, seeds);
        t.row([
            p.kind.to_string(),
            fmt_ms(wan),
            fmt_ms(lan),
            fmt_ms(wan - lan),
        ]);
        if p.kind == ServiceKind::Nginx {
            notes.push(format!(
                "Nginx saves {} by pulling from the LAN registry (paper: about 1.5–2 s).",
                fmt_ms(wan - lan)
            ));
        }
    }
    notes.push("Pull time grows with size *and* layer count; the 6 KiB Asm image is near-instant (paper §VI).".into());
    Experiment {
        id: "Fig. 13",
        effective_threads: fanout_threads(seeds),
        title: "Total time to pull the service container images",
        table: t,
        notes,
    }
}

// ---------------------------------------------------------------------------
// Figs. 14/15 — wait-until-ready after the scale-up API returned
// ---------------------------------------------------------------------------

fn wait_median_ms(
    service: ServiceKind,
    backend: ClusterKind,
    phase: PhaseSetup,
    seeds: &[u64],
) -> f64 {
    median(run_seeds(seeds, 0, |seed| {
        let cfg = ScenarioConfig::default()
            .with_service(service)
            .with_backend(backend)
            .with_phase(phase)
            .with_seed(seed);
        let (_, dep) = measure_first_request(cfg);
        dep.expect("first request deploys")
            .wait_time()
            .as_millis_f64()
    }))
}

fn wait_table(phase: PhaseSetup, seeds: &[u64]) -> Table {
    let mut t = Table::new(["Service", "Docker", "K8s"]);
    for kind in ServiceKind::ALL {
        let d = wait_median_ms(kind, ClusterKind::Docker, phase, seeds);
        let k = wait_median_ms(kind, ClusterKind::Kubernetes, phase, seeds);
        t.row([kind.to_string(), fmt_ms(d), fmt_ms(k)]);
    }
    t
}

/// Fig. 14: wait time (median) until the services are ready after being
/// scaled up (the controller's port polling; included in Fig. 11).
pub fn fig14(seeds: &[u64]) -> Experiment {
    Experiment {
        id: "Fig. 14",
        effective_threads: fanout_threads(seeds),
        title: "Wait time (median) until services are ready after scale-up",
        table: wait_table(PhaseSetup::Created, seeds),
        notes: vec![
            "Paper: the controller polls the port before installing flows; for ResNet the wait alone exceeds a fourth of the total time.".into(),
        ],
    }
}

/// Fig. 15: wait time (median) after create + scale-up (included in Fig. 12).
pub fn fig15(seeds: &[u64]) -> Experiment {
    Experiment {
        id: "Fig. 15",
        effective_threads: fanout_threads(seeds),
        title: "Wait time (median) until services are ready after create + scale-up",
        table: wait_table(PhaseSetup::ImagesCached, seeds),
        notes: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Fig. 16 — instance already running
// ---------------------------------------------------------------------------

/// Fig. 16: total time (median) for requests when the instance is running.
pub fn fig16(seeds: &[u64]) -> Experiment {
    let mut t = Table::new(["Service", "Docker", "K8s"]);
    for kind in ServiceKind::ALL {
        let d = first_request_median_ms(kind, ClusterKind::Docker, PhaseSetup::Running, seeds);
        let k = first_request_median_ms(kind, ClusterKind::Kubernetes, PhaseSetup::Running, seeds);
        t.row([kind.to_string(), fmt_ms(d), fmt_ms(k)]);
    }
    Experiment {
        id: "Fig. 16",
        effective_threads: fanout_threads(seeds),
        title: "Total time (median) for client requests when the instance is already running",
        table: t,
        notes: vec![
            "Paper: ~1 ms for the web servers with no notable cluster difference; ResNet significantly longer (inference).".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// §VII — the hybrid Docker-then-Kubernetes strategy
// ---------------------------------------------------------------------------

/// §VII: compare deployment strategies on the bigFlows trace.
pub fn hybrid(seeds: &[u64]) -> Experiment {
    let mut t = Table::new([
        "Strategy",
        "median first-request",
        "median all",
        "held",
        "cloud",
        "deployments",
    ]);
    let strategies: Vec<(&str, ScenarioConfig)> = vec![
        ("Docker, with waiting", ScenarioConfig::default()),
        (
            "K8s, with waiting",
            ScenarioConfig::default().with_backend(ClusterKind::Kubernetes),
        ),
        (
            "without waiting (cloud detour)",
            ScenarioConfig {
                scheduler: SchedulerSpec::nearest_ready_first(),
                ..ScenarioConfig::default()
            },
        ),
        (
            "hybrid Docker-first + K8s",
            ScenarioConfig {
                scheduler: SchedulerSpec::hybrid_docker_first(),
                backends: vec![ClusterKind::Docker, ClusterKind::Kubernetes],
                ..ScenarioConfig::default()
            },
        ),
    ];
    for (name, cfg) in strategies {
        let runs: Vec<(f64, f64, u64, u64, usize)> = run_seeds(seeds, 0, |seed| {
            let (_, r) = run_bigflows(cfg.clone().with_seed(seed));
            (
                r.median_first_request_ms(),
                r.median_time_total_ms(),
                r.held_requests,
                r.cloud_forwards,
                r.deployments.len(),
            )
        });
        let first = median(runs.iter().map(|r| r.0).collect());
        let all = median(runs.iter().map(|r| r.1).collect());
        let held = runs.iter().map(|r| r.2).sum::<u64>() / runs.len() as u64;
        let cloud = runs.iter().map(|r| r.3).sum::<u64>() / runs.len() as u64;
        let deps = runs.iter().map(|r| r.4).sum::<usize>() / runs.len();
        t.row([
            name.to_string(),
            fmt_ms(first),
            fmt_ms(all),
            held.to_string(),
            cloud.to_string(),
            deps.to_string(),
        ]);
    }
    Experiment {
        id: "§VII",
        effective_threads: fanout_threads(seeds),
        title: "Deployment strategies on the bigFlows trace (Nginx service)",
        table: t,
        notes: vec![
            "Paper §VII: launch via Docker for a fast first response, deploy to Kubernetes for future requests — 'the best of both worlds'.".into(),
            "NaN in 'median first-request' means no request was held (without-waiting strategies).".into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Beyond the paper: §IV-A2 hierarchy, §VII prediction, §VIII serverless
// ---------------------------------------------------------------------------

/// §IV-A2: the hierarchical edge continuum — a warm farther edge turns the
/// without-waiting detour from a cloud round trip into an edge round trip.
pub fn hierarchy(seeds: &[u64]) -> Experiment {
    use simcore::time::SimDuration;
    use testbed::topology::SiteSpec;

    let near_pi = || SiteSpec::pi("near-edge", SimDuration::from_micros(300));
    let far_egs = || SiteSpec {
        latency: SimDuration::from_millis(8),
        ..SiteSpec::egs("far-edge")
    };
    let mut t = Table::new([
        "layout",
        "median first-request",
        "p99 all",
        "held",
        "cloud detours",
        "retargets",
    ]);
    let cases: Vec<(&str, ScenarioConfig)> = vec![
        (
            "near Pi edge, with waiting",
            ScenarioConfig {
                sites: vec![(near_pi(), ClusterKind::Docker)],
                ..ScenarioConfig::default()
            },
        ),
        (
            "near Pi + far EGS (running), without waiting",
            ScenarioConfig {
                sites: vec![
                    (near_pi(), ClusterKind::Docker),
                    (far_egs(), ClusterKind::Docker),
                ],
                scheduler: SchedulerSpec::nearest_ready_first(),
                phase_setup: PhaseSetup::Running,
                prewarm_sites: Some(vec![1]),
                ..ScenarioConfig::default()
            },
        ),
        (
            "near Pi edge only, without waiting (cloud detour)",
            ScenarioConfig {
                sites: vec![(near_pi(), ClusterKind::Docker)],
                scheduler: SchedulerSpec::nearest_ready_first(),
                ..ScenarioConfig::default()
            },
        ),
    ];
    for (name, cfg) in cases {
        let rows: Vec<(f64, f64, u64, u64, u64)> = run_seeds(seeds, 0, |seed| {
            let (_, r) = testbed::run_bigflows(cfg.clone().with_seed(seed));
            let mut p = Percentiles::new();
            for rec in &r.records {
                p.record_duration(rec.time_total());
            }
            (
                r.median_first_request_ms(),
                p.p99(),
                r.held_requests,
                r.cloud_forwards,
                r.retargets,
            )
        });
        let med = |f: fn(&(f64, f64, u64, u64, u64)) -> f64| -> f64 {
            median(rows.iter().map(f).filter(|v| v.is_finite()).collect())
        };
        t.row([
            name.to_string(),
            fmt_ms(med(|r| r.0)),
            fmt_ms(med(|r| r.1)),
            format!(
                "{}",
                rows.iter().map(|r| r.2).sum::<u64>() / rows.len() as u64
            ),
            format!(
                "{}",
                rows.iter().map(|r| r.3).sum::<u64>() / rows.len() as u64
            ),
            format!(
                "{}",
                rows.iter().map(|r| r.4).sum::<u64>() / rows.len() as u64
            ),
        ]);
    }
    Experiment {
        id: "§IV-A2",
        effective_threads: fanout_threads(seeds),
        title: "Hierarchical edge continuum (bigFlows trace, Nginx)",
        table: t,
        notes: vec![
            "A warm farther edge turns the without-waiting detour from a ~50 ms cloud round trip into a ~16 ms edge round trip; flows retarget to the near edge once it is up.".into(),
        ],
    }
}

/// §VII outlook: proactive deployment vs pure on-demand.
pub fn proactive(seeds: &[u64]) -> Experiment {
    use testbed::PredictorKind;

    let mut t = Table::new([
        "predictor",
        "held",
        "proactive",
        "median first-request",
        "p99 all",
    ]);
    let cases: Vec<(&str, PredictorKind, bool)> = vec![
        ("none (paper baseline)", PredictorKind::None, false),
        ("oracle (perfect foresight)", PredictorKind::Oracle, false),
        ("none + 30 s idle scale-down", PredictorKind::None, true),
        (
            "popularity + 30 s idle scale-down",
            PredictorKind::Popularity,
            true,
        ),
    ];
    for (name, kind, scale_down) in cases {
        let rows: Vec<(u64, u64, f64, f64)> = run_seeds(seeds, 0, |seed| {
            let mut cfg = ScenarioConfig::default().with_seed(seed);
            cfg.predictor = kind;
            if scale_down {
                cfg.controller.scale_down_idle = true;
                cfg.controller.memory_idle_timeout = simcore::SimDuration::from_secs(30);
            }
            let (_, r) = testbed::run_bigflows(cfg);
            let mut p = Percentiles::new();
            for rec in &r.records {
                p.record_duration(rec.time_total());
            }
            (
                r.held_requests,
                r.proactive_deployments,
                r.median_first_request_ms(),
                p.p99(),
            )
        });
        let med = |f: fn(&(u64, u64, f64, f64)) -> f64| {
            median(rows.iter().map(f).filter(|v| v.is_finite()).collect())
        };
        t.row([
            name.to_string(),
            format!(
                "{}",
                rows.iter().map(|r| r.0).sum::<u64>() / rows.len() as u64
            ),
            format!(
                "{}",
                rows.iter().map(|r| r.1).sum::<u64>() / rows.len() as u64
            ),
            fmt_ms(med(|r| r.2)),
            fmt_ms(med(|r| r.3)),
        ]);
    }
    Experiment {
        id: "§VII-pred",
        effective_threads: fanout_threads(seeds),
        title: "Proactive deployment vs pure on-demand (bigFlows trace, Nginx)",
        table: t,
        notes: vec![
            "The oracle pre-deploys just in time (nothing held); the popularity predictor only prevents re-deployment holds — a service's *first* request always needs the on-demand path, the paper's core argument.".into(),
        ],
    }
}

/// §VIII future work: containers vs serverless WebAssembly.
pub fn futurework_wasm(seeds: &[u64]) -> Experiment {
    let mut t = Table::new(["stage", "Docker (nginx)", "K8s (nginx)", "Wasm (function)"]);
    for (label, phase) in [
        ("cold (incl. pull)", PhaseSetup::Cold),
        ("create + scale-up", PhaseSetup::ImagesCached),
        ("scale-up only", PhaseSetup::Created),
        ("already running", PhaseSetup::Running),
    ] {
        t.row([
            label.to_string(),
            fmt_ms(first_request_median_ms(
                ServiceKind::Nginx,
                ClusterKind::Docker,
                phase,
                seeds,
            )),
            fmt_ms(first_request_median_ms(
                ServiceKind::Nginx,
                ClusterKind::Kubernetes,
                phase,
                seeds,
            )),
            fmt_ms(first_request_median_ms(
                ServiceKind::WasmWeb,
                ClusterKind::Wasm,
                phase,
                seeds,
            )),
        ]);
    }
    Experiment {
        id: "§VIII",
        effective_threads: fanout_threads(seeds),
        title: "Future work: containers vs serverless WebAssembly, same controller",
        table: t,
        notes: vec![
            "Wasm instantiation removes the namespace-setup cost that dominates container starts: on-demand-with-waiting becomes a ~100 ms event (vs ~0.5 s Docker, ~3 s K8s), at a slightly higher warm per-request time.".into(),
        ],
    }
}

/// All experiments in paper order plus the beyond-the-paper extensions (used
/// by `all_experiments` and the EXPERIMENTS.md generator). `quick` trims
/// seeds for CI-speed runs.
pub fn all(quick: bool) -> Vec<Experiment> {
    let seeds: Vec<u64> = if quick {
        (1..=7).collect()
    } else {
        default_seeds()
    };
    let trace_seeds: Vec<u64> = if quick {
        (1..=3).collect()
    } else {
        (1..=9).collect()
    };
    vec![
        table1(),
        fig09(1),
        fig10(1),
        fig11(&seeds),
        fig12(&seeds),
        fig13(&seeds),
        fig14(&seeds),
        fig15(&seeds),
        fig16(&seeds),
        hybrid(&trace_seeds),
        hierarchy(&trace_seeds),
        proactive(&trace_seeds),
        futurework_wasm(&seeds),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_four_services() {
        let e = table1();
        let s = e.table.render();
        assert!(s.contains("Nginx+Py"));
        assert!(s.contains("6.18 KiB"));
        assert!(s.contains("308 MiB"));
    }

    #[test]
    fn fig11_shape_holds_on_small_seed_set() {
        let seeds: Vec<u64> = (1..=5).collect();
        let e = fig11(&seeds);
        let s = e.table.render();
        // Docker column should be sub-second for nginx, K8s in seconds.
        assert!(s.contains("Nginx"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn fig13_private_saves_time() {
        let seeds: Vec<u64> = (1..=5).collect();
        let p = ServiceProfile::of(ServiceKind::Nginx);
        let wan = pull_median_ms(&p, false, &seeds);
        let lan = pull_median_ms(&p, true, &seeds);
        assert!(wan > lan);
    }

    #[test]
    fn experiment_render_contains_notes() {
        let e = table1();
        let s = e.render();
        assert!(s.contains("Table I"));
        assert!(s.contains("reproduced exactly"));
    }
}
