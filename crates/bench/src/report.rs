//! Table formatting shared by the figure/table binaries: fixed-width text
//! tables that mirror the rows/series the paper reports, plus millisecond
//! formatting that matches the figures' axis units.

/// Format milliseconds the way the paper's figures label values: seconds with
/// three decimals above 1 s, whole milliseconds below.
pub fn fmt_ms(ms: f64) -> String {
    if ms.is_nan() {
        "-".to_string()
    } else if ms >= 1000.0 {
        format!("{:.3} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_units() {
        assert_eq!(fmt_ms(0.9), "0.9 ms");
        assert_eq!(fmt_ms(999.9), "999.9 ms");
        assert_eq!(fmt_ms(1500.0), "1.500 s");
        assert_eq!(fmt_ms(f64::NAN), "-");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["service", "docker", "k8s"]);
        t.row(["nginx", "0.5 s", "3.0 s"]);
        t.row(["resnet", "3.3 s", "5.9 s"]);
        let s = t.render();
        assert!(s.contains("service"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].split_whitespace().next(), Some("nginx"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
