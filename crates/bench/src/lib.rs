//! Shared helpers for the experiment binaries (see `src/bin/`) that
//! regenerate every table and figure of the paper's evaluation section.

pub mod experiments;
pub mod report;

pub use experiments::{all, Experiment};
pub use report::{fmt_ms, Table};
