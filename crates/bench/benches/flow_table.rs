//! Micro-benchmarks of the OpenFlow flow table — the controller's data-plane
//! hot path: lookup under varying table occupancy, install/replace, and the
//! timeout sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcore::{SimDuration, SimTime};
use simnet::openflow::{Action, FlowMatch, FlowSpec, FlowTable, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

fn sa(a: u8, b: u8, port: u16) -> SocketAddr {
    SocketAddr::new(IpAddr::new(10, a, 0, b), port)
}

fn filled_table(n: usize) -> FlowTable {
    let mut table = FlowTable::new();
    for i in 0..n {
        let client = IpAddr::new(10, 1, (i / 250) as u8, (i % 250) as u8);
        let dst = sa(2, (i % 200) as u8, 80);
        table.install(
            SimTime::ZERO,
            FlowSpec::new(FlowMatch::client_to_service(client, dst))
                .priority(100)
                .actions(vec![
                    Action::SetDstIp(IpAddr::new(10, 0, 0, 100)),
                    Action::Output(PortId(1)),
                ])
                .idle(SimDuration::from_secs(10))
                .cookie(i as u64),
        );
    }
    table
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_table_lookup");
    for &n in &[16usize, 256, 1024, 2048] {
        group.bench_with_input(BenchmarkId::new("hit_last", n), &n, |b, &n| {
            let mut table = filled_table(n);
            // match the last-installed (worst-case scan position at equal prio)
            let client = IpAddr::new(10, 1, ((n - 1) / 250) as u8, ((n - 1) % 250) as u8);
            let packet = Packet::syn(
                SocketAddr::new(client, 40000),
                sa(2, ((n - 1) % 200) as u8, 80),
                0,
            );
            b.iter(|| {
                let hit = table.lookup(SimTime::ZERO + SimDuration::from_secs(1), &packet);
                std::hint::black_box(hit.is_some())
            });
        });
        group.bench_with_input(BenchmarkId::new("miss", n), &n, |b, &n| {
            let mut table = filled_table(n);
            let packet = Packet::syn(sa(9, 9, 9999), sa(9, 8, 7), 0);
            b.iter(|| {
                let hit = table.lookup(SimTime::ZERO, &packet);
                std::hint::black_box(hit.is_none())
            });
        });
        // Reference point for the indexed fast path: the pre-index
        // implementation's priority-ordered linear scan over the same rules.
        group.bench_with_input(
            BenchmarkId::new("hit_last_linear_reference", n),
            &n,
            |b, &n| {
                let rules: Vec<(FlowMatch, u64)> = (0..n)
                    .map(|i| {
                        let client = IpAddr::new(10, 1, (i / 250) as u8, (i % 250) as u8);
                        (
                            FlowMatch::client_to_service(client, sa(2, (i % 200) as u8, 80)),
                            i as u64,
                        )
                    })
                    .collect();
                let client = IpAddr::new(10, 1, ((n - 1) / 250) as u8, ((n - 1) % 250) as u8);
                let packet = Packet::syn(
                    SocketAddr::new(client, 40000),
                    sa(2, ((n - 1) % 200) as u8, 80),
                    0,
                );
                b.iter(|| {
                    let hit = rules
                        .iter()
                        .find(|(m, _)| m.matches(&packet))
                        .map(|&(_, c)| c);
                    std::hint::black_box(hit)
                });
            },
        );
    }
    group.finish();
}

fn bench_install(c: &mut Criterion) {
    c.bench_function("flow_table_install_into_1k", |b| {
        b.iter_batched(
            || filled_table(1024),
            |mut table| {
                table.install(
                    SimTime::ZERO,
                    FlowSpec::new(FlowMatch::client_to_service(
                        IpAddr::new(99, 0, 0, 1),
                        sa(2, 1, 80),
                    ))
                    .priority(100)
                    .action(Action::Output(PortId(0)))
                    .idle(SimDuration::from_secs(10)),
                );
                table
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_expire_sweep(c: &mut Criterion) {
    c.bench_function("flow_table_sweep_1k_half_expired", |b| {
        b.iter_batched(
            || {
                let mut table = filled_table(1024);
                // touch half the entries so they survive the sweep
                for i in 0..512 {
                    let client = IpAddr::new(10, 1, (i / 250) as u8, (i % 250) as u8);
                    let packet = Packet::syn(
                        SocketAddr::new(client, 40000),
                        sa(2, (i % 200) as u8, 80),
                        0,
                    );
                    table.lookup(SimTime::ZERO + SimDuration::from_secs(8), &packet);
                }
                table
            },
            |mut table| {
                let removed = table.expire(SimTime::ZERO + SimDuration::from_secs(10));
                std::hint::black_box(removed.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_lookup, bench_install, bench_expire_sweep);
criterion_main!(benches);
