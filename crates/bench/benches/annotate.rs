//! Benchmark of the service-definition annotation engine: YAML parse →
//! annotate → emit, the controller's registration-time path.

use criterion::{criterion_group, criterion_main, Criterion};
use edgectl::{annotate, AnnotateOptions};

const MANIFEST: &str = r#"
apiVersion: apps/v1
kind: Deployment
metadata:
  name: user-supplied
spec:
  replicas: 3
  template:
    spec:
      containers:
        - name: web
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          resources:
            requests:
              cpu: 250m
              memory: 128Mi
        - name: side
          image: josefhammer/env-writer-py
      volumes:
        - name: html
          hostPath:
            path: /srv/html
"#;

fn bench_annotate(c: &mut Criterion) {
    c.bench_function("annotate_full_manifest", |b| {
        let opts = AnnotateOptions::new("edge-nginx-web-001", 80);
        b.iter(|| {
            let doc = yamlite::parse(MANIFEST).unwrap();
            let out = annotate(&doc, &opts).unwrap();
            std::hint::black_box(yamlite::to_string(&out.deployment).len())
        });
    });
    c.bench_function("yaml_parse_emit_roundtrip", |b| {
        b.iter(|| {
            let doc = yamlite::parse(MANIFEST).unwrap();
            std::hint::black_box(yamlite::to_string(&doc).len())
        });
    });
}

criterion_group!(benches, bench_annotate);
criterion_main!(benches);
