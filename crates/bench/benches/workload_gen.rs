//! Benchmarks of the workload substrate: trace generation and the
//! statistics used by the harness.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::{Percentiles, SimRng};
use workload::{Trace, TraceConfig};

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("bigflows_trace_generate", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let trace = Trace::generate(TraceConfig::default(), &mut SimRng::seed_from_u64(seed));
            std::hint::black_box(trace.requests.len())
        });
    });
}

fn bench_percentiles(c: &mut Criterion) {
    c.bench_function("percentiles_median_10k", |b| {
        let mut rng = SimRng::seed_from_u64(7);
        let values: Vec<f64> = (0..10_000).map(|_| rng.f64() * 1000.0).collect();
        b.iter_batched(
            || {
                let mut p = Percentiles::new();
                for &v in &values {
                    p.record(v);
                }
                p
            },
            |mut p| std::hint::black_box(p.median()),
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_trace_generation, bench_percentiles);
criterion_main!(benches);
