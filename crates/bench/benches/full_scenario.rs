//! End-to-end benchmark: the full five-minute bigFlows replay through the
//! simulated testbed (1708 requests, 42 on-demand deployments) — the cost of
//! regenerating one data point of Figs. 9–16.

use criterion::{criterion_group, criterion_main, Criterion};
use testbed::{measure_first_request, run_bigflows, PhaseSetup, ScenarioConfig};

fn bench_bigflows_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_scenario");
    group.sample_size(10);
    group.bench_function("bigflows_replay_docker", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let (_, result) = run_bigflows(ScenarioConfig::default().with_seed(seed));
            std::hint::black_box(result.records.len())
        });
    });
    group.bench_function("single_first_request_cold", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = ScenarioConfig::default()
                .with_phase(PhaseSetup::Cold)
                .with_seed(seed);
            std::hint::black_box(measure_first_request(cfg).0)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bigflows_replay);
criterion_main!(benches);
