//! Benchmarks of the controller's decision paths: the FlowMemory fast path
//! (a PacketIn answered from memory), the scheduler decision, and FlowMemory
//! churn (remember/recall/expire).

use cluster::{DockerCluster, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use criterion::{criterion_group, criterion_main, Criterion};
use edgectl::{ClusterId, Controller, ControllerConfig, FlowKey, FlowMemory, NearestWaiting};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn service_addr(i: u8) -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, i), 80)
}

/// A controller with a warm, ready nginx service.
fn warm_controller() -> (Controller, SimTime) {
    let rng = SimRng::seed_from_u64(1);
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(PortId(0))
        .build();
    c.attach_cluster(
        Box::new(DockerCluster::new(
            "egs",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("rt")),
            rng.stream("docker"),
        )),
        SimDuration::from_micros(300),
        PortId(2),
    );
    let tpl = ServiceTemplate::single(
        "edge-nginx",
        "nginx:1.23.2",
        80,
        DurationDist::constant_ms(100.0),
    );
    c.catalog.register(service_addr(1), tpl.clone());
    let regs = registries();
    let t = c
        .cluster_mut(ClusterId(0))
        .pull(SimTime::ZERO, &tpl, &regs)
        .unwrap();
    let t = c.cluster_mut(ClusterId(0)).create(t, &tpl).unwrap();
    let warm = c
        .cluster_mut(ClusterId(0))
        .scale_up(t, "edge-nginx", 1)
        .unwrap()
        .expected_ready
        + SimDuration::from_secs(1);
    (c, warm)
}

fn bench_packet_in_ready_instance(c: &mut Criterion) {
    c.bench_function("controller_packet_in_ready_instance", |b| {
        let (mut ctl, warm) = warm_controller();
        let mut tag = 0u64;
        b.iter(|| {
            tag += 1;
            // vary client so the memory fast path isn't hit
            let client = IpAddr::new(10, 1, ((tag >> 8) & 0xff) as u8, (tag & 0xff) as u8);
            let p = Packet::syn(SocketAddr::new(client, 40000), service_addr(1), tag);
            let out = ctl.on_packet_in(warm, p, BufferId(tag), PortId(5));
            std::hint::black_box(out.len())
        });
    });
}

fn bench_packet_in_memory_hit(c: &mut Criterion) {
    c.bench_function("controller_packet_in_memory_hit", |b| {
        let (mut ctl, warm) = warm_controller();
        let client = IpAddr::new(10, 1, 0, 1);
        // prime the memory
        let p = Packet::syn(SocketAddr::new(client, 40000), service_addr(1), 0);
        ctl.on_packet_in(warm, p, BufferId(0), PortId(5));
        let mut tag = 1u64;
        b.iter(|| {
            tag += 1;
            let p = Packet::syn(SocketAddr::new(client, 40000), service_addr(1), tag);
            let out = ctl.on_packet_in(
                warm + SimDuration::from_millis(tag),
                p,
                BufferId(tag),
                PortId(5),
            );
            std::hint::black_box(out.len())
        });
    });
}

fn bench_flow_memory_churn(c: &mut Criterion) {
    c.bench_function("flow_memory_remember_recall_1k", |b| {
        b.iter_batched(
            || FlowMemory::new(SimDuration::from_secs(60)).unwrap(),
            |mut m| {
                let target = SocketAddr::new(IpAddr::new(10, 0, 0, 100), 8000);
                for i in 0..1024u32 {
                    let key = FlowKey {
                        client_ip: IpAddr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8),
                        service_addr: service_addr((i % 42) as u8),
                    };
                    m.remember(
                        SimTime::ZERO,
                        key,
                        edgectl::ServiceId(0),
                        target,
                        Some(ClusterId(0)),
                    );
                }
                let mut hits = 0;
                for i in 0..1024u32 {
                    let key = FlowKey {
                        client_ip: IpAddr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8),
                        service_addr: service_addr((i % 42) as u8),
                    };
                    if m.recall(SimTime::ZERO + SimDuration::from_secs(1), key)
                        .is_some()
                    {
                        hits += 1;
                    }
                }
                std::hint::black_box(hits)
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_packet_in_ready_instance,
    bench_packet_in_memory_hit,
    bench_flow_memory_churn
);
criterion_main!(benches);
