//! Network topology: nodes joined by links with propagation latency and
//! bandwidth. Routing is shortest-path by latency (Dijkstra), computed on
//! demand; long-running consumers memoize queries with a [`PathCache`].
//!
//! The evaluation topology (paper Fig. 8) is small — one OVS switch, the EGS,
//! a cloud uplink and 20 Raspberry Pi clients — but the model supports the
//! hierarchical multi-cluster layouts of §IV-A2 (small near edges, larger
//! ones towards the cloud), which the scheduler experiments use.

use std::collections::{BinaryHeap, HashMap};

use simcore::{DetHashMap, SimDuration};

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node *is* — used for display and for sanity checks when wiring the
/// testbed (e.g. a switch port must attach to a link).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (client UE, edge server, registry host).
    Host,
    /// A forwarding element (the OVS switch, the gNB in 5G terms).
    Switch,
    /// The remote cloud (origin servers, public registries).
    Cloud,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: NodeKind,
}

#[derive(Debug, Clone)]
struct Link {
    a: NodeId,
    b: NodeId,
    /// One-way propagation latency.
    latency: SimDuration,
    /// Bandwidth in bits per second.
    bandwidth_bps: u64,
}

/// Result of a path query: total one-way latency, bottleneck bandwidth and
/// the hop sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathInfo {
    pub latency: SimDuration,
    pub bottleneck_bps: u64,
    pub hops: Vec<NodeId>,
}

impl PathInfo {
    /// Round-trip time along this path.
    pub fn rtt(&self) -> SimDuration {
        self.latency * 2
    }
}

/// An undirected graph of nodes and links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: node -> [(neighbor, link)]
    adj: Vec<Vec<(NodeId, LinkId)>>,
    by_name: HashMap<String, NodeId>,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a node; names must be unique (they key config and output tables).
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len());
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind });
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected link. `bandwidth_bps` is bits per second.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: SimDuration,
        bandwidth_bps: u64,
    ) -> LinkId {
        assert!(a != b, "self-loop link at {a:?}");
        assert!(bandwidth_bps > 0, "zero-bandwidth link");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            latency,
            bandwidth_bps,
        });
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        id
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }
    pub fn node_kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.0].kind
    }
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    pub fn link_latency(&self, id: LinkId) -> SimDuration {
        self.links[id.0].latency
    }
    pub fn link_bandwidth(&self, id: LinkId) -> u64 {
        self.links[id.0].bandwidth_bps
    }
    /// The two nodes a link joins.
    pub fn link_endpoints(&self, id: LinkId) -> (NodeId, NodeId) {
        (self.links[id.0].a, self.links[id.0].b)
    }

    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adj[id.0].iter().copied()
    }

    /// Shortest path from `src` to `dst` by cumulative latency.
    /// Returns `None` if unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<PathInfo> {
        if src == dst {
            return Some(PathInfo {
                latency: SimDuration::ZERO,
                bottleneck_bps: u64::MAX,
                hops: vec![src],
            });
        }
        // Dijkstra over latency in nanoseconds.
        let n = self.nodes.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[src.0] = 0;
        heap.push(std::cmp::Reverse((0u64, src.0)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == dst.0 {
                break;
            }
            for &(v, link) in &self.adj[u] {
                let nd = d.saturating_add(self.links[link.0].latency.as_nanos());
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    prev[v.0] = Some((NodeId(u), link));
                    heap.push(std::cmp::Reverse((nd, v.0)));
                }
            }
        }
        if dist[dst.0] == u64::MAX {
            return None;
        }
        // Reconstruct.
        let mut hops = vec![dst];
        let mut bottleneck = u64::MAX;
        let mut cur = dst;
        while let Some((p, link)) = prev[cur.0] {
            bottleneck = bottleneck.min(self.links[link.0].bandwidth_bps);
            hops.push(p);
            cur = p;
        }
        hops.reverse();
        debug_assert_eq!(hops[0], src);
        Some(PathInfo {
            latency: SimDuration::from_nanos(dist[dst.0]),
            bottleneck_bps: bottleneck,
            hops,
        })
    }

    /// One-way latency between two nodes (None if unreachable).
    pub fn latency(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        self.path(src, dst).map(|p| p.latency)
    }
}

/// Memoized shortest-path queries over an (immutable) [`Topology`].
///
/// The testbed's per-request hot path resolves the same (client, host) pairs
/// over and over while the topology never changes mid-run, so each distinct
/// pair pays Dijkstra once and a hash probe afterwards. Kept separate from
/// [`Topology`] so the graph stays freely mutable; callers that alter the
/// graph must [`PathCache::clear`] (or build a fresh cache).
#[derive(Debug, Clone, Default)]
pub struct PathCache {
    paths: DetHashMap<(NodeId, NodeId), Option<PathInfo>>,
}

impl PathCache {
    pub fn new() -> PathCache {
        PathCache::default()
    }

    /// Cached equivalent of [`Topology::path`].
    pub fn path(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<&PathInfo> {
        self.paths
            .entry((src, dst))
            .or_insert_with(|| topo.path(src, dst))
            .as_ref()
    }

    /// Cached equivalent of [`Topology::latency`].
    pub fn latency(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        self.path(topo, src, dst).map(|p| p.latency)
    }

    /// Number of memoized (src, dst) pairs.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Forget everything — required after mutating the underlying topology.
    pub fn clear(&mut self) {
        self.paths.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }
    const GBPS: u64 = 1_000_000_000;

    /// a --1ms-- b --2ms-- c, plus a --10ms-- c direct (slower).
    fn triangle() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Host);
        t.add_link(a, b, ms(1), GBPS);
        t.add_link(b, c, ms(2), GBPS / 10);
        t.add_link(a, c, ms(10), GBPS);
        (t, a, b, c)
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        let (t, a, _b, c) = triangle();
        let p = t.path(a, c).unwrap();
        assert_eq!(p.latency, ms(3));
        assert_eq!(p.hops.len(), 3);
        assert_eq!(p.bottleneck_bps, GBPS / 10);
        assert_eq!(p.rtt(), ms(6));
    }

    #[test]
    fn self_path_is_zero() {
        let (t, a, ..) = triangle();
        let p = t.path(a, a).unwrap();
        assert_eq!(p.latency, SimDuration::ZERO);
        assert_eq!(p.hops, vec![a]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        assert!(t.path(a, b).is_none());
        assert!(t.latency(a, b).is_none());
    }

    #[test]
    fn lookup_by_name() {
        let (t, a, b, _c) = triangle();
        assert_eq!(t.lookup("a"), Some(a));
        assert_eq!(t.lookup("b"), Some(b));
        assert_eq!(t.lookup("zzz"), None);
        assert_eq!(t.node_name(a), "a");
        assert_eq!(t.node_kind(b), NodeKind::Switch);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_name_panics() {
        let mut t = Topology::new();
        t.add_node("x", NodeKind::Host);
        t.add_node("x", NodeKind::Host);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        t.add_link(a, a, ms(1), GBPS);
    }

    #[test]
    fn star_topology_paths() {
        // 20 clients around one switch, like the evaluation topology.
        let mut t = Topology::new();
        let sw = t.add_node("ovs", NodeKind::Switch);
        let egs = t.add_node("egs", NodeKind::Host);
        t.add_link(sw, egs, SimDuration::from_micros(100), 10 * GBPS);
        let clients: Vec<NodeId> = (0..20)
            .map(|i| {
                let c = t.add_node(format!("pi{i}"), NodeKind::Host);
                t.add_link(c, sw, SimDuration::from_micros(200), GBPS);
                c
            })
            .collect();
        for &c in &clients {
            let p = t.path(c, egs).unwrap();
            assert_eq!(p.latency, SimDuration::from_micros(300));
            assert_eq!(p.bottleneck_bps, GBPS);
            assert_eq!(p.hops, vec![c, sw, egs]);
        }
    }

    #[test]
    fn neighbors_enumerates_links() {
        let (t, a, ..) = triangle();
        let n: Vec<_> = t.neighbors(a).collect();
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn path_cache_agrees_with_direct_queries() {
        let (t, a, b, c) = triangle();
        let mut cache = PathCache::new();
        for &(src, dst) in &[(a, c), (c, a), (a, b), (a, a)] {
            // Twice: once computing, once served from the memo.
            assert_eq!(cache.path(&t, src, dst).cloned(), t.path(src, dst));
            assert_eq!(cache.path(&t, src, dst).cloned(), t.path(src, dst));
            assert_eq!(cache.latency(&t, src, dst), t.latency(src, dst));
        }
        assert_eq!(cache.len(), 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn path_cache_memoizes_unreachable_pairs() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Host);
        let mut cache = PathCache::new();
        assert!(cache.path(&t, a, b).is_none());
        assert!(cache.path(&t, a, b).is_none());
        assert_eq!(cache.len(), 1, "negative results are memoized too");
    }
}
