//! The minimal packet representation the switch matches on and rewrites.
//!
//! A simulated "packet" stands for the *first packet of a TCP flow* (the SYN
//! carrying the client's connection attempt). Once the switch has a matching
//! flow entry, the rest of the conversation is modelled at flow level by
//! [`crate::tcp::TcpModel`]; only flow setup goes through the OpenFlow path —
//! exactly how the paper's testbed behaves (subsequent packets hit the
//! installed flow in the data plane and never reach the controller).

use crate::addr::SocketAddr;

/// Transport protocol of a flow. The evaluation traffic is all TCP; UDP exists
/// so flow matches can distinguish protocols like the real switch does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Tcp,
    Udp,
}

/// A packet observed at a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    pub src: SocketAddr,
    pub dst: SocketAddr,
    pub protocol: Protocol,
    /// Wire size in bytes (headers included); used for serialization delay.
    pub size: u32,
    /// Opaque correlation id set by the traffic source (the client request id);
    /// carried through rewrites untouched.
    pub tag: u64,
}

impl Packet {
    /// A TCP SYN-sized packet from `src` to `dst`.
    pub fn syn(src: SocketAddr, dst: SocketAddr, tag: u64) -> Packet {
        Packet {
            src,
            dst,
            protocol: Protocol::Tcp,
            size: 74,
            tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::IpAddr;

    #[test]
    fn syn_has_tcp_and_tag() {
        let a = SocketAddr::new(IpAddr::new(10, 0, 0, 1), 5000);
        let b = SocketAddr::new(IpAddr::new(1, 1, 1, 1), 80);
        let p = Packet::syn(a, b, 99);
        assert_eq!(p.protocol, Protocol::Tcp);
        assert_eq!(p.tag, 99);
        assert_eq!(p.src, a);
        assert_eq!(p.dst, b);
    }
}
