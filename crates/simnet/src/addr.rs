//! IPv4-style addressing. The paper registers edge services by their unique
//! *cloud* `(IP address, port)` pair; these types are used as flow-match keys
//! throughout the workspace, so they are small `Copy` values with total order.

use std::fmt;
use std::str::FromStr;

/// A 32-bit IPv4-style address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IpAddr(pub u32);

impl IpAddr {
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error parsing an [`IpAddr`] or [`SocketAddr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address: {}", self.0)
    }
}
impl std::error::Error for AddrParseError {}

impl FromStr for IpAddr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(AddrParseError(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p.parse().map_err(|_| AddrParseError(s.to_string()))?;
        }
        Ok(IpAddr::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An `(ip, port)` endpoint — the identity of a registered edge service and
/// the src/dst of every simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketAddr {
    pub ip: IpAddr,
    pub port: u16,
}

impl SocketAddr {
    pub const fn new(ip: IpAddr, port: u16) -> SocketAddr {
        SocketAddr { ip, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl FromStr for SocketAddr {
    type Err = AddrParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, port) = s
            .rsplit_once(':')
            .ok_or_else(|| AddrParseError(s.to_string()))?;
        Ok(SocketAddr {
            ip: ip.parse()?,
            port: port.parse().map_err(|_| AddrParseError(s.to_string()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_roundtrip() {
        let ip = IpAddr::new(192, 168, 1, 42);
        assert_eq!(ip.to_string(), "192.168.1.42");
        assert_eq!("192.168.1.42".parse::<IpAddr>().unwrap(), ip);
        assert_eq!(ip.octets(), [192, 168, 1, 42]);
    }

    #[test]
    fn socket_addr_roundtrip() {
        let sa: SocketAddr = "10.0.0.1:8080".parse().unwrap();
        assert_eq!(sa.ip, IpAddr::new(10, 0, 0, 1));
        assert_eq!(sa.port, 8080);
        assert_eq!(sa.to_string(), "10.0.0.1:8080");
    }

    #[test]
    fn parse_errors() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.4.5".parse::<IpAddr>().is_err());
        assert!("1.2.3.999".parse::<IpAddr>().is_err());
        assert!("1.2.3.4".parse::<SocketAddr>().is_err()); // missing port
        assert!("1.2.3.4:notaport".parse::<SocketAddr>().is_err());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let a = SocketAddr::new(IpAddr::new(1, 0, 0, 1), 80);
        let b = SocketAddr::new(IpAddr::new(1, 0, 0, 1), 443);
        let c = SocketAddr::new(IpAddr::new(2, 0, 0, 1), 80);
        assert!(a < b && b < c);
    }
}
