//! # simnet — the simulated network substrate
//!
//! The paper's testbed intercepts client traffic at an Open vSwitch instance
//! controlled over OpenFlow 1.5; redirection to edge services happens by
//! *packet rewriting* (`SetField` on destination IP/port, plus the mirrored
//! rewrite on the return path). This crate reproduces that surface:
//!
//! * [`addr`] — IPv4-style addresses and `ip:port` endpoints,
//! * [`topology`] — nodes and links (latency + bandwidth), Dijkstra routing,
//!   path RTT / bottleneck-bandwidth queries,
//! * [`tcp`] — a flow-level TCP timing model (connect = one RTT, slow-start
//!   aware transfer times) used for both client requests and image pulls,
//! * [`packet`] — the minimal packet representation the switch rewrites,
//! * [`openflow`] — flow tables with priorities and idle/hard timeouts,
//!   match/action processing, `PacketIn` buffering on table miss, `FlowMod` /
//!   `PacketOut` handling, and flow-removed notifications.
//!
//! Everything is deterministic and free of wall-clock time; instants come from
//! [`simcore::SimTime`].

// Verifier-critical crate: non-test code must state its panic invariants via
// `expect` instead of bare `unwrap` (CI denies this warning; tests are exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod addr;
pub mod openflow;
pub mod packet;
pub mod tcp;
pub mod topology;

pub use addr::{IpAddr, SocketAddr};
pub use openflow::{
    Action, ActionList, FlowEntry, FlowMatch, FlowSpec, FlowTable, IpNet, PacketVerdict, Switch,
};
pub use packet::{Packet, Protocol};
pub use tcp::TcpModel;
pub use topology::{LinkId, NodeId, NodeKind, PathCache, PathInfo, Topology};
