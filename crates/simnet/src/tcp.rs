//! Flow-level TCP timing.
//!
//! The evaluation measures `time_total` as reported by Curl: everything from
//! the start of the TCP handshake until the last byte of the HTTP response
//! (paper §VI, the *timecurl* script). We therefore need a model of
//!
//! * connection establishment — one RTT (SYN / SYN-ACK; the request departs
//!   with the ACK),
//! * request upload and response download — serialization at the bottleneck
//!   bandwidth plus slow-start round trips for transfers that exceed the
//!   initial congestion window.
//!
//! The slow-start term models IW10 (RFC 6928: initial window of 10 segments)
//! with the window doubling each RTT until either the transfer completes or
//! the bandwidth-delay product is reached. This level of detail reproduces the
//! behaviours the figures depend on: sub-millisecond LAN requests (Fig. 16),
//! multi-second WAN image pulls that shrink by ~2 s on a LAN registry
//! (Fig. 13), and the 83 KiB ResNet POST upload costing a few extra round
//! trips.

use simcore::SimDuration;

/// Standard Ethernet-ish segment size used to convert bytes to segments.
const MSS: u64 = 1460;
/// RFC 6928 initial congestion window, in segments.
const INITIAL_WINDOW_SEGMENTS: u64 = 10;

/// A TCP timing model over a path with fixed RTT and bottleneck bandwidth.
///
/// ```
/// use simcore::SimDuration;
/// use simnet::TcpModel;
///
/// // a 1 Gbps LAN path with 600 µs RTT
/// let lan = TcpModel::new(SimDuration::from_micros(600), 1_000_000_000);
/// let t = lan.request_response_time(300, 500, SimDuration::from_micros(150));
/// assert!(t.as_millis_f64() < 3.0, "short LAN exchanges are milliseconds");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpModel {
    pub rtt: SimDuration,
    pub bandwidth_bps: u64,
}

impl TcpModel {
    pub fn new(rtt: SimDuration, bandwidth_bps: u64) -> TcpModel {
        assert!(bandwidth_bps > 0, "zero-bandwidth path");
        TcpModel { rtt, bandwidth_bps }
    }

    /// Time to establish a connection: one RTT (the request departs with the
    /// final ACK of the three-way handshake).
    pub fn connect_time(&self) -> SimDuration {
        self.rtt
    }

    /// Pure serialization delay for `bytes` at the bottleneck bandwidth.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps as f64)
    }

    /// One-way delivery time for a message of `bytes` on an **established**
    /// connection: half an RTT of propagation plus the classic
    /// latency/throughput envelope — the transfer takes at least its
    /// serialization time at the bottleneck, and at least the slow-start
    /// ramp (the window doubles from IW10 each round trip, so reaching
    /// `bytes` in flight needs ~log2(bytes/IW) round trips).
    ///
    /// Using the *maximum* of the two envelopes keeps the model strictly
    /// monotone in bytes, bandwidth and RTT (verified by property tests) —
    /// a per-round stall count is not, because a larger bandwidth-delay
    /// product admits more doubling rounds.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let propagation = self.rtt / 2;
        propagation + self.serialization(bytes).max(self.slow_start_ramp(bytes))
    }

    /// Time for the congestion window to grow from IW10 until `bytes` have
    /// been sent: `RTT * log2(1 + bytes/IW)` (continuous/fluid form).
    fn slow_start_ramp(&self, bytes: u64) -> SimDuration {
        let iw = (INITIAL_WINDOW_SEGMENTS * MSS) as f64;
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let rounds = (1.0 + bytes as f64 / iw).log2();
        self.rtt.mul_f64(rounds)
    }

    /// Curl-style `time_total` for a full request/response exchange on a new
    /// connection: handshake + request upload + server think time + response
    /// download.
    pub fn request_response_time(
        &self,
        request_bytes: u64,
        response_bytes: u64,
        server_time: SimDuration,
    ) -> SimDuration {
        self.connect_time()
            + self.transfer_time(request_bytes)
            + server_time
            + self.transfer_time(response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: u64 = 1_000_000_000;
    const MBPS: u64 = 1_000_000;

    fn lan() -> TcpModel {
        TcpModel::new(SimDuration::from_micros(600), GBPS)
    }

    fn wan() -> TcpModel {
        TcpModel::new(SimDuration::from_millis(30), 200 * MBPS)
    }

    #[test]
    fn connect_is_one_rtt() {
        assert_eq!(lan().connect_time(), SimDuration::from_micros(600));
        assert_eq!(wan().connect_time(), SimDuration::from_millis(30));
    }

    #[test]
    fn small_lan_request_is_about_a_millisecond() {
        // Fig. 16: a short request/response on the LAN completes in ~1 ms.
        let t = lan().request_response_time(300, 500, SimDuration::from_micros(100));
        let ms = t.as_millis_f64();
        assert!((0.5..2.5).contains(&ms), "lan request took {ms} ms");
    }

    #[test]
    fn small_lan_transfer_is_serialization_bound_plus_ramp() {
        let m = lan();
        let t = m.transfer_time(10_000);
        let floor = m.rtt / 2 + m.serialization(10_000);
        // the ramp for <1 IW of data is below one RTT
        assert!(t >= floor);
        assert!(t <= floor + m.rtt);
    }

    #[test]
    fn large_transfer_pays_slow_start_on_wan() {
        let m = wan();
        let small = m.transfer_time(10_000);
        let big = m.transfer_time(1_000_000);
        // 1 MB needs ~6 doubling rounds at 30 ms RTT ≈ 180 ms of ramp,
        // far above its 40 ms serialization
        assert!(
            big > small + SimDuration::from_millis(60),
            "big={big} small={small}"
        );
        let ramp_floor = m.rtt.mul_f64(5.0);
        assert!(big >= ramp_floor, "big={big}");
    }

    #[test]
    fn serialization_scales_linearly() {
        let m = lan();
        let one = m.serialization(1_000_000);
        let two = m.serialization(2_000_000);
        assert_eq!(one * 2, two);
        // 1 MB at 1 Gbps = 8 ms
        assert!((one.as_millis_f64() - 8.0).abs() < 0.01);
    }

    #[test]
    fn wan_pull_vs_lan_pull_gap_is_seconds() {
        // Fig. 13 shape: a 135 MiB Nginx image pulls ~1.5-2 s faster from a
        // LAN registry than over the WAN (propagation + slow start + bw).
        let image = 135 * 1024 * 1024;
        let wan_t = wan().transfer_time(image);
        let lan_t = TcpModel::new(SimDuration::from_micros(600), GBPS).transfer_time(image);
        let gap = wan_t.as_secs_f64() - lan_t.as_secs_f64();
        assert!(gap > 1.0, "gap = {gap} s");
    }

    #[test]
    fn zero_bytes_transfer_is_half_rtt() {
        let m = lan();
        assert_eq!(m.transfer_time(0), m.rtt / 2);
        let w = wan();
        assert_eq!(w.transfer_time(0), w.rtt / 2);
    }

    #[test]
    fn request_response_composition() {
        let m = lan();
        let think = SimDuration::from_millis(5);
        let total = m.request_response_time(100, 100, think);
        let manual = m.connect_time() + m.transfer_time(100) * 2 + think;
        assert_eq!(total, manual);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn zero_bandwidth_rejected() {
        TcpModel::new(SimDuration::from_millis(1), 0);
    }
}
