//! An OpenFlow-style switch: flow table with priorities and idle/hard
//! timeouts, match/action processing with SetField rewrites, table-miss
//! buffering (`PacketIn`), `FlowMod`/`PacketOut` handling and flow-removed
//! notifications.
//!
//! This models the control surface the paper's controller uses (paper Fig. 2):
//! the first packet of a flow to a registered service misses the table and is
//! *buffered* at the switch while a `PacketIn` goes to the controller — that
//! buffering is precisely the "keep the client's request waiting" mechanism of
//! on-demand deployment *with waiting*. The controller later answers with a
//! `FlowMod` (install the redirect rewrite) plus a `PacketOut` (release the
//! buffered packet through the new actions).

use std::collections::HashMap;

use simcore::{SimDuration, SimTime};

use crate::addr::{IpAddr, SocketAddr};
use crate::packet::{Packet, Protocol};

/// A switch port. Ports are dense indices; the testbed maps each port to the
/// topology node attached to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub usize);

/// Identifies an installed flow entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// Identifies a packet buffered at the switch awaiting a controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u64);

/// A masked IPv4 prefix (OpenFlow arbitrary-mask match, restricted to CIDR
/// prefixes): `10.1.0.0/16` etc. Used for the static topology routes a
/// multi-switch fabric needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpNet {
    pub addr: IpAddr,
    /// Prefix length 0..=32.
    pub prefix: u8,
}

impl IpNet {
    pub fn new(addr: IpAddr, prefix: u8) -> IpNet {
        assert!(prefix <= 32, "prefix length {prefix} > 32");
        IpNet { addr, prefix }
    }

    pub fn contains(&self, ip: IpAddr) -> bool {
        let mask = if self.prefix == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix as u32)
        };
        (ip.0 & mask) == (self.addr.0 & mask)
    }
}

/// Match fields (all optional = wildcard). The transparent-edge controller
/// matches on (src ip, dst ip, dst port, protocol): per-client, per-service
/// flows, exactly as in the paper's prototype. The masked `*_net` fields
/// express the coarse topology routes of a multi-switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    pub protocol: Option<Protocol>,
    pub src_ip: Option<IpAddr>,
    pub src_port: Option<u16>,
    pub dst_ip: Option<IpAddr>,
    pub dst_port: Option<u16>,
    /// Masked source match (combines with `src_ip` conjunctively).
    pub src_net: Option<IpNet>,
    /// Masked destination match.
    pub dst_net: Option<IpNet>,
}

impl FlowMatch {
    /// Match any packet.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Match every TCP packet addressed to `dst` (service-wide rule).
    pub fn to_service(dst: SocketAddr) -> FlowMatch {
        FlowMatch {
            protocol: Some(Protocol::Tcp),
            dst_ip: Some(dst.ip),
            dst_port: Some(dst.port),
            ..FlowMatch::default()
        }
    }

    /// Match everything destined into `net` (a topology route).
    pub fn to_net(net: IpNet) -> FlowMatch {
        FlowMatch { dst_net: Some(net), ..FlowMatch::default() }
    }

    /// Match everything whose source lies in `net`.
    pub fn from_net(net: IpNet) -> FlowMatch {
        FlowMatch { src_net: Some(net), ..FlowMatch::default() }
    }

    /// Match TCP packets from one client IP to `dst` (per-client rule — what
    /// the controller installs so different clients can go to different
    /// instances).
    pub fn client_to_service(client_ip: IpAddr, dst: SocketAddr) -> FlowMatch {
        FlowMatch {
            src_ip: Some(client_ip),
            ..FlowMatch::to_service(dst)
        }
    }

    pub fn matches(&self, p: &Packet) -> bool {
        self.protocol.is_none_or(|v| v == p.protocol)
            && self.src_ip.is_none_or(|v| v == p.src.ip)
            && self.src_port.is_none_or(|v| v == p.src.port)
            && self.dst_ip.is_none_or(|v| v == p.dst.ip)
            && self.dst_port.is_none_or(|v| v == p.dst.port)
            && self.src_net.is_none_or(|n| n.contains(p.src.ip))
            && self.dst_net.is_none_or(|n| n.contains(p.dst.ip))
    }
}

/// Actions applied to a matching packet, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    SetSrcIp(IpAddr),
    SetSrcPort(u16),
    SetDstIp(IpAddr),
    SetDstPort(u16),
    /// Emit on a port.
    Output(PortId),
    /// Punt to the controller (used by the low-priority catch-all rule for
    /// registered service addresses).
    ToController,
    Drop,
}

/// An installed flow entry.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub id: FlowId,
    pub priority: u16,
    pub matcher: FlowMatch,
    pub actions: Vec<Action>,
    /// Evict after this long without a matching packet.
    pub idle_timeout: Option<SimDuration>,
    /// Evict this long after installation regardless of use.
    pub hard_timeout: Option<SimDuration>,
    pub cookie: u64,
    pub installed_at: SimTime,
    pub last_used: SimTime,
    pub packets: u64,
}

/// Why a flow entry left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    IdleTimeout,
    HardTimeout,
    Deleted,
}

/// A flow-removed notification (OpenFlow `OFPT_FLOW_REMOVED`); the controller
/// uses idle-timeout removals to drive FlowMemory expiry and scale-down.
#[derive(Debug, Clone)]
pub struct FlowRemoved {
    pub entry: FlowEntry,
    pub reason: RemovalReason,
    pub at: SimTime,
}

/// Priority-ordered flow table.
///
/// Entries are kept sorted by `(priority desc, insertion order asc)`;
/// lookup scans in that order and takes the first match, which matches
/// OpenFlow semantics when overlapping same-priority entries exist.
#[derive(Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    next_id: u64,
}

impl FlowTable {
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Install an entry; returns its id.
    ///
    /// OpenFlow `OFPFC_ADD` semantics: an entry with the same `(priority,
    /// match)` replaces the existing one (counters reset), so re-installing a
    /// redirect simply overwrites it.
    #[allow(clippy::too_many_arguments)]
    pub fn add(
        &mut self,
        now: SimTime,
        priority: u16,
        matcher: FlowMatch,
        actions: Vec<Action>,
        idle_timeout: Option<SimDuration>,
        hard_timeout: Option<SimDuration>,
        cookie: u64,
    ) -> FlowId {
        self.entries
            .retain(|e| !(e.priority == priority && e.matcher == matcher));
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let entry = FlowEntry {
            id,
            priority,
            matcher,
            actions,
            idle_timeout,
            hard_timeout,
            cookie,
            installed_at: now,
            last_used: now,
            packets: 0,
        };
        // Insert after all entries with priority >= ours (stable order).
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        id
    }

    /// Find the highest-priority matching entry, updating its stats.
    pub fn lookup(&mut self, now: SimTime, p: &Packet) -> Option<&FlowEntry> {
        let idx = self.entries.iter().position(|e| e.matcher.matches(p))?;
        let e = &mut self.entries[idx];
        e.last_used = now;
        e.packets += 1;
        Some(&self.entries[idx])
    }

    /// Peek without touching stats (diagnostics).
    pub fn find(&self, p: &Packet) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.matcher.matches(p))
    }

    pub fn get(&self, id: FlowId) -> Option<&FlowEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Remove all entries whose matcher equals `matcher` (OpenFlow strict
    /// delete). Returns the removed entries.
    pub fn delete_matching(&mut self, now: SimTime, matcher: &FlowMatch) -> Vec<FlowRemoved> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if &e.matcher == matcher {
                removed.push(FlowRemoved {
                    entry: e.clone(),
                    reason: RemovalReason::Deleted,
                    at: now,
                });
                false
            } else {
                true
            }
        });
        removed
    }

    pub fn delete_by_cookie(&mut self, now: SimTime, cookie: u64) -> Vec<FlowRemoved> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.cookie == cookie {
                removed.push(FlowRemoved {
                    entry: e.clone(),
                    reason: RemovalReason::Deleted,
                    at: now,
                });
                false
            } else {
                true
            }
        });
        removed
    }

    /// Evict entries whose idle or hard timeout has elapsed at `now`.
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if let Some(hard) = e.hard_timeout {
                if now.since(e.installed_at) >= hard {
                    removed.push(FlowRemoved {
                        entry: e.clone(),
                        reason: RemovalReason::HardTimeout,
                        at: now,
                    });
                    return false;
                }
            }
            if let Some(idle) = e.idle_timeout {
                if now.since(e.last_used) >= idle {
                    removed.push(FlowRemoved {
                        entry: e.clone(),
                        reason: RemovalReason::IdleTimeout,
                        at: now,
                    });
                    return false;
                }
            }
            true
        });
        removed
    }

    /// The earliest instant at which some entry could expire — the testbed
    /// schedules its next eviction sweep there.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flat_map(|e| {
                let idle = e.idle_timeout.map(|d| e.last_used + d);
                let hard = e.hard_timeout.map(|d| e.installed_at + d);
                idle.into_iter().chain(hard)
            })
            .min()
    }

    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }
}

/// What the switch decided to do with a received packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Matched a flow with an `Output` action: forward (possibly rewritten).
    Forward { packet: Packet, out_port: PortId },
    /// No match (or an explicit `ToController` action): packet buffered,
    /// `PacketIn` raised to the controller.
    PacketIn { buffer_id: BufferId, packet: Packet },
    /// Matched a flow whose actions drop the packet (or had no output).
    Dropped,
}

/// The switch: a flow table plus ports and a packet buffer.
#[derive(Debug, Default)]
pub struct Switch {
    pub table: FlowTable,
    buffered: HashMap<BufferId, Packet>,
    next_buffer: u64,
    port_count: usize,
    /// Counters for the evaluation: table misses = controller round trips.
    pub stats: SwitchStats,
}

/// Data-plane counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    pub packets: u64,
    pub table_hits: u64,
    pub table_misses: u64,
    pub forwarded: u64,
    pub dropped: u64,
}

impl Switch {
    pub fn new(port_count: usize) -> Switch {
        Switch {
            port_count,
            ..Switch::default()
        }
    }

    pub fn port_count(&self) -> usize {
        self.port_count
    }

    /// Number of packets parked at the switch awaiting controller decisions.
    pub fn buffered_count(&self) -> usize {
        self.buffered.len()
    }

    /// Process a packet arriving on a port.
    pub fn receive(&mut self, now: SimTime, packet: Packet) -> PacketVerdict {
        self.stats.packets += 1;
        let Some(entry) = self.table.lookup(now, &packet) else {
            self.stats.table_misses += 1;
            return self.buffer_packet(packet);
        };
        self.stats.table_hits += 1;
        let actions = entry.actions.clone();
        self.apply(now, packet, &actions)
    }

    fn buffer_packet(&mut self, packet: Packet) -> PacketVerdict {
        let id = BufferId(self.next_buffer);
        self.next_buffer += 1;
        self.buffered.insert(id, packet);
        PacketVerdict::PacketIn { buffer_id: id, packet }
    }

    fn apply(&mut self, _now: SimTime, mut packet: Packet, actions: &[Action]) -> PacketVerdict {
        for action in actions {
            match action {
                Action::SetSrcIp(ip) => packet.src.ip = *ip,
                Action::SetSrcPort(p) => packet.src.port = *p,
                Action::SetDstIp(ip) => packet.dst.ip = *ip,
                Action::SetDstPort(p) => packet.dst.port = *p,
                Action::Output(port) => {
                    assert!(port.0 < self.port_count, "output to unknown port {port:?}");
                    self.stats.forwarded += 1;
                    return PacketVerdict::Forward { packet, out_port: *port };
                }
                Action::ToController => {
                    return self.buffer_packet(packet);
                }
                Action::Drop => break,
            }
        }
        self.stats.dropped += 1;
        PacketVerdict::Dropped
    }

    /// Controller → switch: install a flow entry.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_mod(
        &mut self,
        now: SimTime,
        priority: u16,
        matcher: FlowMatch,
        actions: Vec<Action>,
        idle_timeout: Option<SimDuration>,
        hard_timeout: Option<SimDuration>,
        cookie: u64,
    ) -> FlowId {
        self.table
            .add(now, priority, matcher, actions, idle_timeout, hard_timeout, cookie)
    }

    /// Controller → switch: release a buffered packet through `actions`
    /// (OpenFlow `PacketOut`). Returns the forwarding outcome; `None` if the
    /// buffer id is unknown (already released or expired).
    pub fn packet_out(
        &mut self,
        now: SimTime,
        buffer_id: BufferId,
        actions: &[Action],
    ) -> Option<PacketVerdict> {
        let packet = self.buffered.remove(&buffer_id)?;
        Some(self.apply(now, packet, actions))
    }

    /// Controller → switch: re-inject a buffered packet through the flow
    /// table (OpenFlow `OFPP_TABLE`). This is what the paper's controller does
    /// after a `FlowMod`: the released packet hits the freshly installed rule.
    pub fn packet_out_via_table(&mut self, now: SimTime, buffer_id: BufferId) -> Option<PacketVerdict> {
        let packet = self.buffered.remove(&buffer_id)?;
        Some(self.receive_unbuffered(now, packet))
    }

    /// Like [`Switch::receive`] but a repeated miss drops instead of
    /// re-buffering (prevents PacketIn loops on `OFPP_TABLE` resubmission).
    fn receive_unbuffered(&mut self, now: SimTime, packet: Packet) -> PacketVerdict {
        self.stats.packets += 1;
        let Some(entry) = self.table.lookup(now, &packet) else {
            self.stats.table_misses += 1;
            self.stats.dropped += 1;
            return PacketVerdict::Dropped;
        };
        self.stats.table_hits += 1;
        let actions = entry.actions.clone();
        self.apply(now, packet, &actions)
    }

    /// Drop a buffered packet without forwarding (controller gave up).
    pub fn discard_buffer(&mut self, buffer_id: BufferId) -> Option<Packet> {
        self.buffered.remove(&buffer_id)
    }

    /// Run a timeout sweep; returns flow-removed notifications.
    pub fn sweep(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        self.table.expire(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> IpAddr {
        IpAddr::new(10, 0, 0, d)
    }
    fn sa(d: u8, port: u16) -> SocketAddr {
        SocketAddr::new(ip(d), port)
    }
    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn service_packet() -> Packet {
        Packet::syn(sa(1, 40000), sa(200, 80), 7)
    }

    #[test]
    fn ipnet_contains() {
        let net = IpNet::new(IpAddr::new(10, 1, 0, 0), 16);
        assert!(net.contains(IpAddr::new(10, 1, 0, 1)));
        assert!(net.contains(IpAddr::new(10, 1, 255, 255)));
        assert!(!net.contains(IpAddr::new(10, 2, 0, 1)));
        let all = IpNet::new(IpAddr::new(0, 0, 0, 0), 0);
        assert!(all.contains(IpAddr::new(203, 0, 113, 9)));
        let host = IpNet::new(IpAddr::new(10, 0, 0, 5), 32);
        assert!(host.contains(IpAddr::new(10, 0, 0, 5)));
        assert!(!host.contains(IpAddr::new(10, 0, 0, 6)));
    }

    #[test]
    fn masked_match_routes_by_prefix() {
        let m = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 1, 0, 0), 16));
        let to_client = Packet::syn(sa(200, 80), SocketAddr::new(IpAddr::new(10, 1, 0, 7), 4000), 0);
        let elsewhere = Packet::syn(sa(200, 80), SocketAddr::new(IpAddr::new(10, 2, 0, 7), 4000), 0);
        assert!(m.matches(&to_client));
        assert!(!m.matches(&elsewhere));
        // masked and exact fields combine conjunctively
        let both = FlowMatch {
            dst_net: Some(IpNet::new(IpAddr::new(10, 1, 0, 0), 16)),
            dst_port: Some(4000),
            ..FlowMatch::default()
        };
        assert!(both.matches(&to_client));
        let wrong_port = Packet::syn(sa(200, 80), SocketAddr::new(IpAddr::new(10, 1, 0, 7), 9), 0);
        assert!(!both.matches(&wrong_port));
    }

    #[test]
    fn match_wildcards() {
        let p = service_packet();
        assert!(FlowMatch::any().matches(&p));
        assert!(FlowMatch::to_service(sa(200, 80)).matches(&p));
        assert!(!FlowMatch::to_service(sa(200, 443)).matches(&p));
        assert!(FlowMatch::client_to_service(ip(1), sa(200, 80)).matches(&p));
        assert!(!FlowMatch::client_to_service(ip(2), sa(200, 80)).matches(&p));
    }

    #[test]
    fn table_miss_buffers_and_raises_packet_in() {
        let mut sw = Switch::new(4);
        let p = service_packet();
        match sw.receive(t(0), p) {
            PacketVerdict::PacketIn { packet, .. } => assert_eq!(packet, p),
            other => panic!("expected PacketIn, got {other:?}"),
        }
        assert_eq!(sw.buffered_count(), 1);
        assert_eq!(sw.stats.table_misses, 1);
    }

    #[test]
    fn flow_mod_then_hit_rewrites_and_forwards() {
        let mut sw = Switch::new(4);
        let edge = sa(50, 8080);
        sw.flow_mod(
            t(0),
            100,
            FlowMatch::to_service(sa(200, 80)),
            vec![
                Action::SetDstIp(edge.ip),
                Action::SetDstPort(edge.port),
                Action::Output(PortId(2)),
            ],
            Some(SimDuration::from_secs(10)),
            None,
            1,
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst, edge);
                assert_eq!(packet.src, sa(1, 40000), "src untouched");
                assert_eq!(out_port, PortId(2));
            }
            other => panic!("expected Forward, got {other:?}"),
        }
        assert_eq!(sw.stats.table_hits, 1);
    }

    #[test]
    fn priority_order_wins() {
        let mut sw = Switch::new(4);
        sw.flow_mod(t(0), 1, FlowMatch::any(), vec![Action::Output(PortId(0))], None, None, 0);
        sw.flow_mod(
            t(0),
            100,
            FlowMatch::to_service(sa(200, 80)),
            vec![Action::Output(PortId(3))],
            None,
            None,
            0,
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_priority_same_match_replaces() {
        // OFPFC_ADD semantics: identical (priority, match) overwrites.
        let mut sw = Switch::new(4);
        sw.flow_mod(t(0), 5, FlowMatch::any(), vec![Action::Output(PortId(1))], None, None, 0);
        sw.flow_mod(t(0), 5, FlowMatch::any(), vec![Action::Output(PortId(2))], None, None, 0);
        assert_eq!(sw.table.len(), 1);
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_priority_different_match_first_wins() {
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            5,
            FlowMatch::to_service(sa(200, 80)),
            vec![Action::Output(PortId(1))],
            None,
            None,
            0,
        );
        sw.flow_mod(t(0), 5, FlowMatch::any(), vec![Action::Output(PortId(2))], None, None, 0);
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn packet_out_releases_buffered_packet() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        let verdict = sw
            .packet_out(
                t(2),
                buffer_id,
                &[Action::SetDstIp(ip(50)), Action::Output(PortId(1))],
            )
            .unwrap();
        match verdict {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst.ip, ip(50));
                assert_eq!(out_port, PortId(1));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.buffered_count(), 0);
        // double release fails
        assert!(sw.packet_out(t(3), buffer_id, &[]).is_none());
    }

    #[test]
    fn packet_out_via_table_uses_installed_flow() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        sw.flow_mod(
            t(1),
            100,
            FlowMatch::to_service(sa(200, 80)),
            vec![Action::SetDstIp(ip(50)), Action::Output(PortId(2))],
            None,
            None,
            0,
        );
        match sw.packet_out_via_table(t(2), buffer_id).unwrap() {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst.ip, ip(50));
                assert_eq!(out_port, PortId(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resubmission_miss_drops_instead_of_rebuffering() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        // no flow installed: resubmission must not loop
        assert_eq!(
            sw.packet_out_via_table(t(1), buffer_id),
            Some(PacketVerdict::Dropped)
        );
        assert_eq!(sw.buffered_count(), 0);
    }

    #[test]
    fn idle_timeout_expires_unused_flows() {
        let mut table = FlowTable::new();
        table.add(
            t(0),
            10,
            FlowMatch::to_service(sa(200, 80)),
            vec![Action::Output(PortId(0))],
            Some(SimDuration::from_secs(5)),
            None,
            7,
        );
        assert!(table.expire(t(4999)).is_empty());
        let removed = table.expire(t(5000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovalReason::IdleTimeout);
        assert_eq!(removed[0].entry.cookie, 7);
        assert!(table.is_empty());
    }

    #[test]
    fn traffic_refreshes_idle_timer() {
        let mut table = FlowTable::new();
        table.add(
            t(0),
            10,
            FlowMatch::to_service(sa(200, 80)),
            vec![Action::Output(PortId(0))],
            Some(SimDuration::from_secs(5)),
            None,
            0,
        );
        let p = service_packet();
        assert!(table.lookup(t(3000), &p).is_some());
        assert!(table.expire(t(5000)).is_empty(), "refreshed at t=3s");
        assert_eq!(table.expire(t(8000)).len(), 1);
    }

    #[test]
    fn hard_timeout_fires_even_with_traffic() {
        let mut table = FlowTable::new();
        table.add(
            t(0),
            10,
            FlowMatch::any(),
            vec![Action::Output(PortId(0))],
            Some(SimDuration::from_secs(60)),
            Some(SimDuration::from_secs(10)),
            0,
        );
        let p = service_packet();
        assert!(table.lookup(t(9000), &p).is_some());
        let removed = table.expire(t(10_000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovalReason::HardTimeout);
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let mut table = FlowTable::new();
        table.add(
            t(0),
            1,
            FlowMatch::any(),
            vec![],
            Some(SimDuration::from_secs(30)),
            None,
            0,
        );
        table.add(
            t(0),
            1,
            FlowMatch::any(),
            vec![],
            None,
            Some(SimDuration::from_secs(7)),
            0,
        );
        assert_eq!(table.next_expiry(), Some(t(7000)));
        assert_eq!(FlowTable::new().next_expiry(), None);
    }

    #[test]
    fn delete_by_cookie_and_matcher() {
        let mut table = FlowTable::new();
        let m = FlowMatch::to_service(sa(200, 80));
        table.add(t(0), 1, m, vec![], None, None, 42);
        table.add(t(0), 1, FlowMatch::any(), vec![], None, None, 42);
        table.add(t(0), 1, FlowMatch::to_service(sa(201, 80)), vec![], None, None, 1);
        assert_eq!(table.delete_matching(t(1), &m).len(), 1);
        assert_eq!(table.delete_by_cookie(t(1), 42).len(), 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn lookup_updates_stats() {
        let mut table = FlowTable::new();
        let id = table.add(t(0), 1, FlowMatch::any(), vec![], None, None, 0);
        let p = service_packet();
        table.lookup(t(5), &p);
        table.lookup(t(9), &p);
        let e = table.get(id).unwrap();
        assert_eq!(e.packets, 2);
        assert_eq!(e.last_used, t(9));
    }

    #[test]
    fn drop_action() {
        let mut sw = Switch::new(1);
        sw.flow_mod(t(0), 1, FlowMatch::any(), vec![Action::Drop], None, None, 0);
        assert_eq!(sw.receive(t(1), service_packet()), PacketVerdict::Dropped);
        assert_eq!(sw.stats.dropped, 1);
    }

    #[test]
    fn to_controller_action_buffers() {
        let mut sw = Switch::new(1);
        sw.flow_mod(t(0), 1, FlowMatch::any(), vec![Action::ToController], None, None, 0);
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::PacketIn { .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
