//! An OpenFlow-style switch: flow table with priorities and idle/hard
//! timeouts, match/action processing with SetField rewrites, table-miss
//! buffering (`PacketIn`), `FlowMod`/`PacketOut` handling and flow-removed
//! notifications.
//!
//! This models the control surface the paper's controller uses (paper Fig. 2):
//! the first packet of a flow to a registered service misses the table and is
//! *buffered* at the switch while a `PacketIn` goes to the controller — that
//! buffering is precisely the "keep the client's request waiting" mechanism of
//! on-demand deployment *with waiting*. The controller later answers with a
//! `FlowMod` (install the redirect rewrite) plus a `PacketOut` (release the
//! buffered packet through the new actions).
//!
//! ## Indexed flow pipeline
//!
//! The table is indexed so the per-packet and per-tick costs no longer scale
//! with the number of installed flows (see DESIGN.md, "Flow pipeline
//! complexity"):
//!
//! * entries without masked (`IpNet`) fields — including the all-wildcard
//!   catch-all — live in a hash index keyed by their exact-field *shape*
//!   (which of protocol/src/dst/ports are specified) plus the field values;
//!   a lookup probes one bucket per distinct shape currently installed,
//! * entries with masked fields live in a short priority-ordered fallback
//!   list that is scanned only until it can no longer beat the best hash hit,
//! * a `FlowId → slot` map and a cookie index make `get`, `delete_by_cookie`
//!   and strict deletes O(1)/O(matches) instead of O(table),
//! * expiry runs off a lazy-deletion min-heap of `(deadline, id)` records
//!   whose top is kept accurate after every mutation, so `next_expiry` is an
//!   O(1) peek and an eviction sweep is O(evicted · log table).
//!
//! The observable semantics are unchanged: OpenFlow priority order with
//! stable insertion order inside a priority level, `OFPFC_ADD` replace
//! semantics, and `FlowRemoved` notifications in table order.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use simcore::{DetHashMap, SimDuration, SimTime};

use crate::addr::{IpAddr, SocketAddr};
use crate::packet::{Packet, Protocol};

/// A switch port. Ports are dense indices; the testbed maps each port to the
/// topology node attached to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortId(pub usize);

/// Identifies an installed flow entry. Ids are allocated monotonically and
/// never reused, so they double as the insertion-order tiebreaker inside a
/// priority level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifies a packet buffered at the switch awaiting a controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub u64);

/// A masked IPv4 prefix (OpenFlow arbitrary-mask match, restricted to CIDR
/// prefixes): `10.1.0.0/16` etc. Used for the static topology routes a
/// multi-switch fabric needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpNet {
    pub addr: IpAddr,
    /// Prefix length 0..=32.
    pub prefix: u8,
}

impl IpNet {
    pub fn new(addr: IpAddr, prefix: u8) -> IpNet {
        assert!(prefix <= 32, "prefix length {prefix} > 32");
        IpNet { addr, prefix }
    }

    pub fn contains(&self, ip: IpAddr) -> bool {
        let mask = if self.prefix == 0 {
            0
        } else {
            u32::MAX << (32 - self.prefix as u32)
        };
        (ip.0 & mask) == (self.addr.0 & mask)
    }

    /// Every address in `other` is also in `self` (CIDR containment: a
    /// shorter-or-equal prefix whose network covers `other`'s network).
    pub fn subsumes(&self, other: &IpNet) -> bool {
        self.prefix <= other.prefix && self.contains(other.addr)
    }

    /// The two prefixes share at least one address. For CIDR prefixes this is
    /// exactly "one contains the other" — partial overlap is impossible.
    pub fn intersects(&self, other: &IpNet) -> bool {
        self.subsumes(other) || other.subsumes(self)
    }
}

/// `a == Some(x)` forces the same constraint `b` does, for exact match
/// fields: a wildcard subsumes anything; a pinned value subsumes only the
/// same pinned value.
fn exact_subsumes<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
    match a {
        None => true,
        Some(x) => b == Some(x),
    }
}

/// Exact match fields are jointly satisfiable: not both pinned to different
/// values.
fn exact_compatible<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// One direction (src or dst) of a matcher is the conjunction of an optional
/// exact ip and an optional masked prefix. `a` subsumes `b` iff every ip
/// admitted by `b`'s conjunction is admitted by `a`'s. Conservative: when `b`
/// is unsatisfiable we may answer `false` even though subsumption holds
/// vacuously — soundness (no false shadowing reports) is what matters.
fn dir_subsumes(
    a_ip: Option<IpAddr>,
    a_net: Option<IpNet>,
    b_ip: Option<IpAddr>,
    b_net: Option<IpNet>,
) -> bool {
    let ip_ok = match a_ip {
        None => true,
        // b must force the ip to the same value: either pinned exactly, or
        // constrained by a /32 whose sole address is it.
        Some(x) => b_ip == Some(x) || b_net.is_some_and(|n| n.prefix == 32 && n.contains(x)),
    };
    let net_ok = match a_net {
        None => true,
        Some(n) => {
            n.prefix == 0
                || b_ip.is_some_and(|y| n.contains(y))
                || b_net.is_some_and(|m| n.subsumes(&m))
        }
    };
    ip_ok && net_ok
}

/// One direction of two matchers admits at least one common ip.
fn dir_intersects(
    a_ip: Option<IpAddr>,
    a_net: Option<IpNet>,
    b_ip: Option<IpAddr>,
    b_net: Option<IpNet>,
) -> bool {
    if let (Some(x), Some(y)) = (a_ip, b_ip) {
        if x != y {
            return false;
        }
    }
    match a_ip.or(b_ip) {
        // a pinned ip must lie inside every prefix constraint on this side
        Some(x) => a_net.is_none_or(|n| n.contains(x)) && b_net.is_none_or(|n| n.contains(x)),
        None => match (a_net, b_net) {
            (Some(n), Some(m)) => n.intersects(&m),
            _ => true,
        },
    }
}

/// Match fields (all optional = wildcard). The transparent-edge controller
/// matches on (src ip, dst ip, dst port, protocol): per-client, per-service
/// flows, exactly as in the paper's prototype. The masked `*_net` fields
/// express the coarse topology routes of a multi-switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    pub protocol: Option<Protocol>,
    pub src_ip: Option<IpAddr>,
    pub src_port: Option<u16>,
    pub dst_ip: Option<IpAddr>,
    pub dst_port: Option<u16>,
    /// Masked source match (combines with `src_ip` conjunctively).
    pub src_net: Option<IpNet>,
    /// Masked destination match.
    pub dst_net: Option<IpNet>,
}

impl FlowMatch {
    /// Match any packet.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Match every TCP packet addressed to `dst` (service-wide rule).
    pub fn to_service(dst: SocketAddr) -> FlowMatch {
        FlowMatch {
            protocol: Some(Protocol::Tcp),
            dst_ip: Some(dst.ip),
            dst_port: Some(dst.port),
            ..FlowMatch::default()
        }
    }

    /// Match everything destined into `net` (a topology route).
    pub fn to_net(net: IpNet) -> FlowMatch {
        FlowMatch {
            dst_net: Some(net),
            ..FlowMatch::default()
        }
    }

    /// Match everything whose source lies in `net`.
    pub fn from_net(net: IpNet) -> FlowMatch {
        FlowMatch {
            src_net: Some(net),
            ..FlowMatch::default()
        }
    }

    /// Match TCP packets from one client IP to `dst` (per-client rule — what
    /// the controller installs so different clients can go to different
    /// instances).
    pub fn client_to_service(client_ip: IpAddr, dst: SocketAddr) -> FlowMatch {
        FlowMatch {
            src_ip: Some(client_ip),
            ..FlowMatch::to_service(dst)
        }
    }

    pub fn matches(&self, p: &Packet) -> bool {
        self.protocol.is_none_or(|v| v == p.protocol)
            && self.src_ip.is_none_or(|v| v == p.src.ip)
            && self.src_port.is_none_or(|v| v == p.src.port)
            && self.dst_ip.is_none_or(|v| v == p.dst.ip)
            && self.dst_port.is_none_or(|v| v == p.dst.port)
            && self.src_net.is_none_or(|n| n.contains(p.src.ip))
            && self.dst_net.is_none_or(|n| n.contains(p.dst.ip))
    }

    /// Every packet matched by `other` is also matched by `self` (header-space
    /// subsumption). If a higher-or-equal-priority rule with this matcher sits
    /// earlier in table order, a rule with `other`'s matcher can never fire.
    ///
    /// Conservative: returns `false` rather than reasoning about unsatisfiable
    /// matchers, so a `true` answer is always a genuine cover.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        exact_subsumes(self.protocol, other.protocol)
            && exact_subsumes(self.src_port, other.src_port)
            && exact_subsumes(self.dst_port, other.dst_port)
            && dir_subsumes(self.src_ip, self.src_net, other.src_ip, other.src_net)
            && dir_subsumes(self.dst_ip, self.dst_net, other.dst_ip, other.dst_net)
    }

    /// Some packet is matched by both matchers. Two same-priority rules that
    /// intersect but rewrite differently are a nondeterminism hazard.
    pub fn intersects(&self, other: &FlowMatch) -> bool {
        exact_compatible(self.protocol, other.protocol)
            && exact_compatible(self.src_port, other.src_port)
            && exact_compatible(self.dst_port, other.dst_port)
            && dir_intersects(self.src_ip, self.src_net, other.src_ip, other.src_net)
            && dir_intersects(self.dst_ip, self.dst_net, other.dst_ip, other.dst_net)
    }

    /// At least one packet satisfies this matcher's own conjunction (an exact
    /// ip pinned outside its own mask makes a rule dead on arrival).
    pub fn is_satisfiable(&self) -> bool {
        self.src_ip
            .is_none_or(|x| self.src_net.is_none_or(|n| n.contains(x)))
            && self
                .dst_ip
                .is_none_or(|x| self.dst_net.is_none_or(|n| n.contains(x)))
    }

    /// Exact-field shape bitmask; see [`ExactKey`].
    fn shape(&self) -> u8 {
        (self.protocol.is_some() as u8)
            | (self.src_ip.is_some() as u8) << 1
            | (self.src_port.is_some() as u8) << 2
            | (self.dst_ip.is_some() as u8) << 3
            | (self.dst_port.is_some() as u8) << 4
    }

    /// Whether this matcher is hash-indexable: every constrained field is an
    /// exact equality (no masked prefixes).
    fn is_exact(&self) -> bool {
        self.src_net.is_none() && self.dst_net.is_none()
    }
}

/// Hash key for exact matchers: the `Some`-ness pattern of the five exact
/// fields is the *shape*, and the values under that shape identify the
/// matcher uniquely. A packet is probed once per shape present in the table
/// (tuple-space search); a bucket hit is a guaranteed match, no re-check
/// needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ExactKey {
    protocol: Option<Protocol>,
    src_ip: Option<IpAddr>,
    src_port: Option<u16>,
    dst_ip: Option<IpAddr>,
    dst_port: Option<u16>,
}

impl ExactKey {
    fn of_matcher(m: &FlowMatch) -> ExactKey {
        debug_assert!(m.is_exact());
        ExactKey {
            protocol: m.protocol,
            src_ip: m.src_ip,
            src_port: m.src_port,
            dst_ip: m.dst_ip,
            dst_port: m.dst_port,
        }
    }

    /// Project a packet onto a shape: the key an exact matcher of that shape
    /// must equal for the packet to match it.
    fn of_packet(shape: u8, p: &Packet) -> ExactKey {
        ExactKey {
            protocol: (shape & 1 != 0).then_some(p.protocol),
            src_ip: (shape & 2 != 0).then_some(p.src.ip),
            src_port: (shape & 4 != 0).then_some(p.src.port),
            dst_ip: (shape & 8 != 0).then_some(p.dst.ip),
            dst_port: (shape & 16 != 0).then_some(p.dst.port),
        }
    }
}

/// Actions applied to a matching packet, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    SetSrcIp(IpAddr),
    SetSrcPort(u16),
    SetDstIp(IpAddr),
    SetDstPort(u16),
    /// Emit on a port.
    Output(PortId),
    /// Punt to the controller (used by the low-priority catch-all rule for
    /// registered service addresses).
    ToController,
    Drop,
}

/// An action list with inline capacity for the common case.
///
/// Controller-installed redirects carry at most three actions (two rewrites
/// plus an output), so the list stores up to [`ActionList::INLINE`] actions
/// in place — cloning an installed entry's actions on the per-packet apply
/// path then copies a few words instead of heap-allocating a `Vec`. Longer
/// lists (seeded experiment flows, synthetic tests) spill to a `Vec`
/// transparently.
#[derive(Debug, Clone)]
pub enum ActionList {
    /// Up to `INLINE` actions stored in place; slots past `len` are padding.
    Inline { len: u8, items: [Action; 4] },
    /// Fallback for longer lists.
    Spilled(Vec<Action>),
}

impl ActionList {
    /// Inline capacity; pushes past this spill to the heap.
    pub const INLINE: usize = 4;
    const PAD: Action = Action::Drop;

    pub fn new() -> ActionList {
        ActionList::Inline {
            len: 0,
            items: [Self::PAD; Self::INLINE],
        }
    }

    pub fn push(&mut self, action: Action) {
        match self {
            ActionList::Inline { len, items } => {
                if (*len as usize) < Self::INLINE {
                    items[*len as usize] = action;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(Self::INLINE + 1);
                    v.extend_from_slice(&items[..]);
                    v.push(action);
                    *self = ActionList::Spilled(v);
                }
            }
            ActionList::Spilled(v) => v.push(action),
        }
    }

    pub fn as_slice(&self) -> &[Action] {
        match self {
            ActionList::Inline { len, items } => &items[..*len as usize],
            ActionList::Spilled(v) => v,
        }
    }
}

impl Default for ActionList {
    fn default() -> ActionList {
        ActionList::new()
    }
}

impl std::ops::Deref for ActionList {
    type Target = [Action];
    fn deref(&self) -> &[Action] {
        self.as_slice()
    }
}

// Padding slots are not part of the value: equality is slice equality, so an
// inline list equals a spilled list with the same actions.
impl PartialEq for ActionList {
    fn eq(&self, other: &ActionList) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ActionList {}

impl From<Vec<Action>> for ActionList {
    fn from(v: Vec<Action>) -> ActionList {
        if v.len() <= Self::INLINE {
            let mut list = ActionList::new();
            for a in v {
                list.push(a);
            }
            list
        } else {
            ActionList::Spilled(v)
        }
    }
}

impl From<&[Action]> for ActionList {
    fn from(v: &[Action]) -> ActionList {
        v.iter().copied().collect()
    }
}

impl FromIterator<Action> for ActionList {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> ActionList {
        let mut list = ActionList::new();
        for a in iter {
            list.push(a);
        }
        list
    }
}

impl<'a> IntoIterator for &'a ActionList {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Everything that defines a flow entry except its identity and counters:
/// matcher, priority, actions and timeouts. Built fluently and handed to
/// [`FlowTable::install`] / [`Switch::flow_mod`]:
///
/// ```
/// use simnet::openflow::{Action, FlowMatch, FlowSpec, FlowTable, PortId};
/// use simnet::{IpAddr, SocketAddr};
/// use simcore::{SimDuration, SimTime};
///
/// let mut table = FlowTable::new();
/// let spec = FlowSpec::new(FlowMatch::to_service(SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80)))
///     .priority(100)
///     .action(Action::Output(PortId(2)))
///     .idle(SimDuration::from_secs(10))
///     .cookie(7);
/// table.install(SimTime::ZERO, spec);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    pub matcher: FlowMatch,
    pub priority: u16,
    pub actions: ActionList,
    pub idle_timeout: Option<SimDuration>,
    pub hard_timeout: Option<SimDuration>,
    pub cookie: u64,
}

impl FlowSpec {
    /// A spec matching `matcher` with priority 0, no actions, no timeouts and
    /// cookie 0; chain the builder methods to refine it.
    pub fn new(matcher: FlowMatch) -> FlowSpec {
        FlowSpec {
            matcher,
            priority: 0,
            actions: ActionList::new(),
            idle_timeout: None,
            hard_timeout: None,
            cookie: 0,
        }
    }

    pub fn priority(mut self, priority: u16) -> FlowSpec {
        self.priority = priority;
        self
    }

    /// Append one action.
    pub fn action(mut self, action: Action) -> FlowSpec {
        self.actions.push(action);
        self
    }

    /// Replace the action list (accepts a `Vec<Action>`, a slice or an
    /// [`ActionList`]).
    pub fn actions(mut self, actions: impl Into<ActionList>) -> FlowSpec {
        self.actions = actions.into();
        self
    }

    /// Evict after this long without a matching packet.
    pub fn idle(mut self, timeout: SimDuration) -> FlowSpec {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Like [`FlowSpec::idle`] but taking an `Option` (for call-sites that
    /// thread an optional timeout through).
    pub fn idle_opt(mut self, timeout: Option<SimDuration>) -> FlowSpec {
        self.idle_timeout = timeout;
        self
    }

    /// Evict this long after installation regardless of use.
    pub fn hard(mut self, timeout: SimDuration) -> FlowSpec {
        self.hard_timeout = Some(timeout);
        self
    }

    /// Like [`FlowSpec::hard`] but taking an `Option`.
    pub fn hard_opt(mut self, timeout: Option<SimDuration>) -> FlowSpec {
        self.hard_timeout = timeout;
        self
    }

    pub fn cookie(mut self, cookie: u64) -> FlowSpec {
        self.cookie = cookie;
        self
    }
}

/// An installed flow entry.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    pub id: FlowId,
    pub priority: u16,
    pub matcher: FlowMatch,
    pub actions: ActionList,
    /// Evict after this long without a matching packet.
    pub idle_timeout: Option<SimDuration>,
    /// Evict this long after installation regardless of use.
    pub hard_timeout: Option<SimDuration>,
    pub cookie: u64,
    pub installed_at: SimTime,
    pub last_used: SimTime,
    pub packets: u64,
}

impl FlowEntry {
    /// The instant at which this entry currently expires: the earlier of its
    /// idle and hard deadlines, `None` if it has no timeouts.
    fn deadline(&self) -> Option<SimTime> {
        let idle = self.idle_timeout.map(|d| self.last_used + d);
        let hard = self.hard_timeout.map(|d| self.installed_at + d);
        match (idle, hard) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Table order: priority descending, then insertion order ascending.
    fn rank(&self) -> (Reverse<u16>, FlowId) {
        (Reverse(self.priority), self.id)
    }
}

/// Why a flow entry left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    IdleTimeout,
    HardTimeout,
    Deleted,
}

/// A flow-removed notification (OpenFlow `OFPT_FLOW_REMOVED`); the controller
/// uses idle-timeout removals to drive FlowMemory expiry and scale-down.
#[derive(Debug, Clone)]
pub struct FlowRemoved {
    pub entry: FlowEntry,
    pub reason: RemovalReason,
    pub at: SimTime,
}

/// A bucket of slot indices with inline storage for the common case.
///
/// Exact-match buckets hold one slot per `(matcher, priority)`; more than
/// one entry only appears when the same matcher is installed at several
/// priorities. Keeping two slots inline means the per-request install path
/// never allocates a bucket `Vec`.
#[derive(Debug, Clone)]
enum SlotBucket {
    Inline { len: u8, slots: [usize; 2] },
    Spilled(Vec<usize>),
}

impl SlotBucket {
    fn one(slot: usize) -> SlotBucket {
        SlotBucket::Inline {
            len: 1,
            slots: [slot, 0],
        }
    }

    fn slice(&self) -> &[usize] {
        match self {
            SlotBucket::Inline { len, slots } => &slots[..*len as usize],
            SlotBucket::Spilled(v) => v,
        }
    }

    /// Insert `slot` at `pos`, spilling to a `Vec` past two entries.
    fn insert(&mut self, pos: usize, slot: usize) {
        match self {
            SlotBucket::Inline { len, slots } if (*len as usize) < slots.len() => {
                let n = *len as usize;
                debug_assert!(pos <= n);
                if pos < n {
                    slots[1] = slots[0];
                }
                slots[pos] = slot;
                *len = (n + 1) as u8;
            }
            SlotBucket::Inline { len, slots } => {
                let mut v = Vec::with_capacity(*len as usize + 1);
                v.extend_from_slice(&slots[..*len as usize]);
                v.insert(pos, slot);
                *self = SlotBucket::Spilled(v);
            }
            SlotBucket::Spilled(v) => v.insert(pos, slot),
        }
    }

    /// Remove every occurrence of `slot`, preserving order.
    fn remove_slot(&mut self, slot: usize) {
        match self {
            SlotBucket::Inline { len, slots } => {
                let n = *len as usize;
                let mut kept = 0usize;
                for i in 0..n {
                    if slots[i] != slot {
                        slots[kept] = slots[i];
                        kept += 1;
                    }
                }
                *len = kept as u8;
            }
            SlotBucket::Spilled(v) => v.retain(|&s| s != slot),
        }
    }

    fn is_empty(&self) -> bool {
        self.slice().is_empty()
    }
}

/// Priority-ordered flow table with hash-indexed exact-match lookup.
///
/// Matching follows OpenFlow semantics: the winning entry is the first in
/// `(priority desc, insertion order asc)` order whose matcher accepts the
/// packet. Internally, exact matchers (no `IpNet` masks) are found through a
/// per-shape hash index and masked matchers through a short ordered fallback
/// list; the module docs describe the structures and DESIGN.md the complexity
/// argument.
#[derive(Debug, Default)]
pub struct FlowTable {
    /// Slab of entries; a slot is `None` after its entry is removed and may
    /// be reused by a later install.
    slots: Vec<Option<FlowEntry>>,
    free_slots: Vec<usize>,
    by_id: DetHashMap<FlowId, usize>,
    /// Exact matchers: full key → bucket of slots sorted by table order.
    /// Every entry in a bucket has the *same* matcher (the key pins all
    /// constrained fields), so buckets only grow past 1 when the same matcher
    /// is installed at several priorities — [`SlotBucket`] keeps the common
    /// 1–2 entry case inline, so an install allocates nothing here.
    exact: DetHashMap<ExactKey, SlotBucket>,
    /// How many exact entries exist per shape — the set of keys to probe per
    /// packet.
    // BTreeMap: `find_slot` iterates the live shapes per lookup; the probe
    // order must not depend on the process hash seed.
    shape_counts: BTreeMap<u8, usize>,
    /// Masked (`IpNet`) matchers, sorted by table order.
    masked: Vec<usize>,
    /// Cookie → slots holding that cookie (unordered). Buckets are kept
    /// even when drained: cookies are per-service, so the map stays tiny and
    /// the bucket `Vec`s are reused across the service's whole flow churn.
    by_cookie: DetHashMap<u64, Vec<usize>>,
    /// Position of each occupied slot inside its cookie bucket — makes the
    /// detach-side bucket removal O(1) `swap_remove` instead of an O(bucket)
    /// scan (hot: every expiry sweeps through here).
    cookie_pos: Vec<usize>,
    /// Lazy-deletion expiry schedule. Invariant ("accurate top"): after every
    /// `&mut self` method returns, the heap top — if any — is a *live* record
    /// (its entry exists and still expires at exactly that instant), so
    /// [`FlowTable::next_expiry`] is a plain peek. Stale records below the
    /// top are tolerated and popped when they surface.
    expiry: BinaryHeap<Reverse<(SimTime, FlowId)>>,
    next_id: u64,
    len: usize,
}

impl FlowTable {
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Install an entry; returns its id.
    ///
    /// OpenFlow `OFPFC_ADD` semantics: an entry with the same `(priority,
    /// match)` replaces the existing one (counters reset), so re-installing a
    /// redirect simply overwrites it.
    pub fn install(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        let FlowSpec {
            matcher,
            priority,
            actions,
            idle_timeout,
            hard_timeout,
            cookie,
        } = spec;

        // Replace any existing entry with the same (priority, match).
        if let Some(slot) = self.find_same_rule(priority, &matcher) {
            self.detach(slot);
        }

        let id = FlowId(self.next_id);
        self.next_id += 1;
        let entry = FlowEntry {
            id,
            priority,
            matcher,
            actions,
            idle_timeout,
            hard_timeout,
            cookie,
            installed_at: now,
            last_used: now,
            packets: 0,
        };
        let deadline = entry.deadline();

        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s] = Some(entry);
                s
            }
            None => {
                self.slots.push(Some(entry));
                self.cookie_pos.push(0);
                self.slots.len() - 1
            }
        };
        self.by_id.insert(id, slot);
        let bucket = self.by_cookie.entry(cookie).or_default();
        bucket.push(slot);
        self.cookie_pos[slot] = bucket.len() - 1;

        if matcher.is_exact() {
            *self.shape_counts.entry(matcher.shape()).or_insert(0) += 1;
            match self.exact.entry(ExactKey::of_matcher(&matcher)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let pos = Self::ordered_position(&self.slots, e.get().slice(), priority);
                    e.get_mut().insert(pos, slot);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(SlotBucket::one(slot));
                }
            }
        } else {
            let pos = Self::ordered_position(&self.slots, &self.masked, priority);
            self.masked.insert(pos, slot);
        }

        if let Some(d) = deadline {
            self.expiry.push(Reverse((d, id)));
        }
        self.len += 1;
        self.normalize_expiry();
        id
    }

    /// Position in `list` (sorted by table order) where a new entry of
    /// `priority` belongs. New entries carry the largest id so far, so they
    /// go after every entry with priority >= theirs.
    fn ordered_position(slots: &[Option<FlowEntry>], list: &[usize], priority: u16) -> usize {
        list.iter()
            .position(|&s| slots[s].as_ref().expect("indexed slot occupied").priority < priority)
            .unwrap_or(list.len())
    }

    /// Slot of the entry with exactly this (priority, matcher), if installed.
    fn find_same_rule(&self, priority: u16, matcher: &FlowMatch) -> Option<usize> {
        if matcher.is_exact() {
            let bucket = self.exact.get(&ExactKey::of_matcher(matcher))?;
            bucket.slice().iter().copied().find(|&s| {
                self.slots[s]
                    .as_ref()
                    .expect("indexed slot occupied")
                    .priority
                    == priority
            })
        } else {
            self.masked.iter().copied().find(|&s| {
                let e = self.slots[s].as_ref().expect("indexed slot occupied");
                e.priority == priority && &e.matcher == matcher
            })
        }
    }

    /// Winning slot for a packet: best hash-bucket head across installed
    /// shapes, then the masked fallback list scanned only while it can still
    /// beat that.
    fn find_slot(&self, p: &Packet) -> Option<usize> {
        let mut best: Option<usize> = None;
        let consider = |slots: &[Option<FlowEntry>], best: &mut Option<usize>, cand: usize| {
            let better = match *best {
                None => true,
                Some(b) => {
                    let rank = |s: usize| slots[s].as_ref().expect("indexed slot occupied").rank();
                    rank(cand) < rank(b)
                }
            };
            if better {
                *best = Some(cand);
            }
        };

        for &shape in self.shape_counts.keys() {
            if let Some(bucket) = self.exact.get(&ExactKey::of_packet(shape, p)) {
                // Bucket heads are guaranteed matches: the key pins every
                // constrained field to the packet's values.
                if let Some(&head) = bucket.slice().first() {
                    consider(&self.slots, &mut best, head);
                }
            }
        }

        for &slot in &self.masked {
            let e = self.slots[slot].as_ref().expect("indexed slot occupied");
            if let Some(b) = best {
                // The masked list is in table order; once we fall behind the
                // best exact candidate no masked entry can win.
                if e.rank()
                    > self.slots[b]
                        .as_ref()
                        .expect("indexed slot occupied")
                        .rank()
                {
                    break;
                }
            }
            if e.matcher.matches(p) {
                best = Some(slot);
                break;
            }
        }
        best
    }

    /// Find the highest-priority matching entry, updating its stats.
    pub fn lookup(&mut self, now: SimTime, p: &Packet) -> Option<&FlowEntry> {
        let slot = self.find_slot(p)?;
        let (id, refresh) = {
            let e = self.slots[slot].as_mut().expect("indexed slot occupied");
            e.last_used = now;
            e.packets += 1;
            // Touching only moves the deadline if an idle timeout exists.
            (
                e.id,
                e.idle_timeout.is_some().then(|| e.deadline()).flatten(),
            )
        };
        if let Some(d) = refresh {
            self.expiry.push(Reverse((d, id)));
        }
        self.normalize_expiry();
        self.slots[slot].as_ref()
    }

    /// Peek without touching stats (diagnostics).
    pub fn find(&self, p: &Packet) -> Option<&FlowEntry> {
        self.find_slot(p).and_then(|s| self.slots[s].as_ref())
    }

    pub fn get(&self, id: FlowId) -> Option<&FlowEntry> {
        self.by_id.get(&id).and_then(|&s| self.slots[s].as_ref())
    }

    /// Remove all entries whose matcher equals `matcher` (OpenFlow strict
    /// delete). Returns the removed entries in table order.
    pub fn delete_matching(&mut self, now: SimTime, matcher: &FlowMatch) -> Vec<FlowRemoved> {
        let slots: Vec<usize> = if matcher.is_exact() {
            // The key pins the whole matcher, so the bucket *is* the result
            // set (already in table order).
            self.exact
                .get(&ExactKey::of_matcher(matcher))
                .map(|b| b.slice().to_vec())
                .unwrap_or_default()
        } else {
            self.masked
                .iter()
                .copied()
                .filter(|&s| {
                    &self.slots[s]
                        .as_ref()
                        .expect("indexed slot occupied")
                        .matcher
                        == matcher
                })
                .collect()
        };
        self.remove_slots(now, slots, RemovalReason::Deleted)
    }

    /// Remove all entries carrying `cookie`; returns them in table order.
    pub fn delete_by_cookie(&mut self, now: SimTime, cookie: u64) -> Vec<FlowRemoved> {
        let mut slots = self.by_cookie.get(&cookie).cloned().unwrap_or_default();
        slots.sort_by_key(|&s| {
            self.slots[s]
                .as_ref()
                .expect("indexed slot occupied")
                .rank()
        });
        self.remove_slots(now, slots, RemovalReason::Deleted)
    }

    fn remove_slots(
        &mut self,
        now: SimTime,
        slots: Vec<usize>,
        reason: RemovalReason,
    ) -> Vec<FlowRemoved> {
        let removed = slots
            .into_iter()
            .map(|slot| FlowRemoved {
                entry: self.detach(slot),
                reason,
                at: now,
            })
            .collect();
        self.normalize_expiry();
        removed
    }

    /// Evict entries whose idle or hard timeout has elapsed at `now`.
    /// Notifications come back in table order, hard timeouts reported in
    /// preference to idle ones, exactly like the scan-based implementation.
    pub fn expire(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        let mut removed: Vec<FlowRemoved> = Vec::new();
        loop {
            // The top is accurate, so `> now` means nothing else is due.
            match self.expiry.peek() {
                Some(&Reverse((deadline, id))) if deadline <= now => {
                    self.expiry.pop();
                    let slot = self.by_id[&id];
                    let entry = self.detach(slot);
                    let hard_elapsed = entry
                        .hard_timeout
                        .is_some_and(|h| now.since(entry.installed_at) >= h);
                    removed.push(FlowRemoved {
                        entry,
                        reason: if hard_elapsed {
                            RemovalReason::HardTimeout
                        } else {
                            RemovalReason::IdleTimeout
                        },
                        at: now,
                    });
                    self.normalize_expiry();
                }
                _ => break,
            }
        }
        removed.sort_by_key(|r| r.entry.rank());
        removed
    }

    /// [`FlowTable::expire`] without materializing the notifications: evict
    /// everything due at `now` and drop the removed entries. The testbed's
    /// event loop discards its sweep results, so the hot path takes this
    /// no-`Vec`, no-sort variant; the eviction *order* is unobservable here
    /// because nothing is reported.
    pub fn expire_discard(&mut self, now: SimTime) {
        while let Some(&Reverse((deadline, id))) = self.expiry.peek() {
            if deadline > now {
                break;
            }
            self.expiry.pop();
            let slot = self.by_id[&id];
            self.detach(slot);
            self.normalize_expiry();
        }
    }

    /// The earliest instant at which some entry could expire — the testbed
    /// schedules its next eviction sweep there. O(1): the heap top is kept
    /// accurate by every mutation.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.expiry.peek().map(|&Reverse((deadline, _))| deadline)
    }

    /// Pre-size the slab and hash indexes for `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.slots.reserve(additional);
        self.cookie_pos.reserve(additional);
        self.by_id.reserve(additional);
        self.exact.reserve(additional);
    }

    /// Iterate over entries in table order (diagnostics; allocates to sort).
    pub fn iter_ordered(&self) -> impl Iterator<Item = &FlowEntry> {
        let mut entries: Vec<&FlowEntry> = self.slots.iter().flatten().collect();
        entries.sort_by_key(|e| e.rank());
        entries.into_iter()
    }

    /// First entry earlier in table order whose matcher fully covers `id`'s —
    /// if one exists, `id` can never match a packet. O(table); diagnostics
    /// and the `debug_assertions` install hook use it, the hot path does not.
    pub fn shadowed_by(&self, id: FlowId) -> Option<FlowId> {
        let target = self.get(id)?;
        self.iter_ordered()
            .take_while(|e| e.id != id)
            .find(|e| e.matcher.subsumes(&target.matcher))
            .map(|e| e.id)
    }

    /// Unlink an entry from every index and free its slot. Stale expiry
    /// records are left behind for `normalize_expiry` to reap.
    fn detach(&mut self, slot: usize) -> FlowEntry {
        let entry = self.slots[slot].take().expect("detach of empty slot");
        self.by_id.remove(&entry.id);

        // O(1) bucket removal via the back-index; the moved tail element (if
        // any) inherits the vacated position. Drained buckets stay in the map
        // — cookies are per-service, so they are about to be refilled.
        let bucket = self
            .by_cookie
            .get_mut(&entry.cookie)
            .expect("cookie bucket exists for installed entry");
        let pos = self.cookie_pos[slot];
        debug_assert_eq!(bucket[pos], slot);
        bucket.swap_remove(pos);
        if pos < bucket.len() {
            self.cookie_pos[bucket[pos]] = pos;
        }

        if entry.matcher.is_exact() {
            let shape = entry.matcher.shape();
            let count = self
                .shape_counts
                .get_mut(&shape)
                .expect("shape counted while entries remain");
            *count -= 1;
            if *count == 0 {
                self.shape_counts.remove(&shape);
            }
            let key = ExactKey::of_matcher(&entry.matcher);
            let bucket = self
                .exact
                .get_mut(&key)
                .expect("bucket exists for installed matcher");
            bucket.remove_slot(slot);
            if bucket.is_empty() {
                self.exact.remove(&key);
            }
        } else {
            self.masked.retain(|&s| s != slot);
        }

        self.free_slots.push(slot);
        self.len -= 1;
        entry
    }

    /// Restore the accurate-top invariant: pop records whose entry is gone or
    /// no longer expires at the recorded instant (it was touched since).
    fn normalize_expiry(&mut self) {
        while let Some(&Reverse((deadline, id))) = self.expiry.peek() {
            let live = self
                .by_id
                .get(&id)
                .and_then(|&s| self.slots[s].as_ref())
                .and_then(FlowEntry::deadline)
                == Some(deadline);
            if live {
                break;
            }
            self.expiry.pop();
        }
    }
}

/// What the switch decided to do with a received packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketVerdict {
    /// Matched a flow with an `Output` action: forward (possibly rewritten).
    Forward { packet: Packet, out_port: PortId },
    /// No match (or an explicit `ToController` action): packet buffered,
    /// `PacketIn` raised to the controller.
    PacketIn { buffer_id: BufferId, packet: Packet },
    /// Matched a flow whose actions drop the packet (or had no output).
    Dropped,
}

/// The switch: a flow table plus ports and a packet buffer.
#[derive(Debug, Default)]
pub struct Switch {
    pub table: FlowTable,
    buffered: DetHashMap<BufferId, Packet>,
    next_buffer: u64,
    port_count: usize,
    /// Counters for the evaluation: table misses = controller round trips.
    pub stats: SwitchStats,
    /// Debug-build check-on-install findings: a `flow_mod` that installed a
    /// rule already fully covered by an earlier table entry records it here
    /// instead of panicking, so seeded-violation tests can observe the sim
    /// running to completion. Drained by whoever audits the switch.
    #[cfg(debug_assertions)]
    pub install_warnings: Vec<InstallWarning>,
}

/// A suspicious install noticed by the `debug_assertions` hook in
/// [`Switch::flow_mod`].
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallWarning {
    /// The rule that was just installed and can never match.
    pub installed: FlowId,
    /// The earlier, equal-or-higher-priority rule that covers it.
    pub shadowed_by: FlowId,
}

/// Data-plane counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    pub packets: u64,
    pub table_hits: u64,
    pub table_misses: u64,
    pub forwarded: u64,
    pub dropped: u64,
}

impl Switch {
    pub fn new(port_count: usize) -> Switch {
        Switch {
            port_count,
            ..Switch::default()
        }
    }

    pub fn port_count(&self) -> usize {
        self.port_count
    }

    /// Number of packets parked at the switch awaiting controller decisions.
    pub fn buffered_count(&self) -> usize {
        self.buffered.len()
    }

    /// Peek a parked packet without releasing it — lets an engine attribute
    /// a buffered-packet outcome (release failure, discard) to the packet's
    /// tag before deciding its fate.
    pub fn buffered_packet(&self, buffer_id: BufferId) -> Option<&Packet> {
        self.buffered.get(&buffer_id)
    }

    /// Process a packet arriving on a port.
    pub fn receive(&mut self, now: SimTime, packet: Packet) -> PacketVerdict {
        self.stats.packets += 1;
        let Some(entry) = self.table.lookup(now, &packet) else {
            self.stats.table_misses += 1;
            return self.buffer_packet(packet);
        };
        self.stats.table_hits += 1;
        let actions = entry.actions.clone();
        self.apply(now, packet, &actions)
    }

    fn buffer_packet(&mut self, packet: Packet) -> PacketVerdict {
        let id = BufferId(self.next_buffer);
        self.next_buffer += 1;
        self.buffered.insert(id, packet);
        PacketVerdict::PacketIn {
            buffer_id: id,
            packet,
        }
    }

    fn apply(&mut self, _now: SimTime, mut packet: Packet, actions: &[Action]) -> PacketVerdict {
        for action in actions {
            match action {
                Action::SetSrcIp(ip) => packet.src.ip = *ip,
                Action::SetSrcPort(p) => packet.src.port = *p,
                Action::SetDstIp(ip) => packet.dst.ip = *ip,
                Action::SetDstPort(p) => packet.dst.port = *p,
                Action::Output(port) => {
                    assert!(port.0 < self.port_count, "output to unknown port {port:?}");
                    self.stats.forwarded += 1;
                    return PacketVerdict::Forward {
                        packet,
                        out_port: *port,
                    };
                }
                Action::ToController => {
                    return self.buffer_packet(packet);
                }
                Action::Drop => break,
            }
        }
        self.stats.dropped += 1;
        PacketVerdict::Dropped
    }

    /// Controller → switch: install a flow entry. Debug builds additionally
    /// run a check-on-install shadowing probe and record (not panic on) any
    /// rule that arrives dead — see [`InstallWarning`].
    pub fn flow_mod(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        let id = self.table.install(now, spec);
        #[cfg(debug_assertions)]
        if let Some(by) = self.table.shadowed_by(id) {
            self.install_warnings.push(InstallWarning {
                installed: id,
                shadowed_by: by,
            });
        }
        id
    }

    /// Controller → switch: release a buffered packet through `actions`
    /// (OpenFlow `PacketOut`). Returns the forwarding outcome; `None` if the
    /// buffer id is unknown (already released or expired).
    pub fn packet_out(
        &mut self,
        now: SimTime,
        buffer_id: BufferId,
        actions: &[Action],
    ) -> Option<PacketVerdict> {
        let packet = self.buffered.remove(&buffer_id)?;
        Some(self.apply(now, packet, actions))
    }

    /// Controller → switch: re-inject a buffered packet through the flow
    /// table (OpenFlow `OFPP_TABLE`). This is what the paper's controller does
    /// after a `FlowMod`: the released packet hits the freshly installed rule.
    pub fn packet_out_via_table(
        &mut self,
        now: SimTime,
        buffer_id: BufferId,
    ) -> Option<PacketVerdict> {
        let packet = self.buffered.remove(&buffer_id)?;
        Some(self.receive_unbuffered(now, packet))
    }

    /// Like [`Switch::receive`] but a repeated miss drops instead of
    /// re-buffering (prevents PacketIn loops on `OFPP_TABLE` resubmission).
    fn receive_unbuffered(&mut self, now: SimTime, packet: Packet) -> PacketVerdict {
        self.stats.packets += 1;
        let Some(entry) = self.table.lookup(now, &packet) else {
            self.stats.table_misses += 1;
            self.stats.dropped += 1;
            return PacketVerdict::Dropped;
        };
        self.stats.table_hits += 1;
        let actions = entry.actions.clone();
        self.apply(now, packet, &actions)
    }

    /// Drop a buffered packet without forwarding (controller gave up).
    pub fn discard_buffer(&mut self, buffer_id: BufferId) -> Option<Packet> {
        self.buffered.remove(&buffer_id)
    }

    /// Run a timeout sweep; returns flow-removed notifications.
    pub fn sweep(&mut self, now: SimTime) -> Vec<FlowRemoved> {
        self.table.expire(now)
    }

    /// [`Switch::sweep`] for callers that discard the notifications: no
    /// `Vec`, no table-order sort (see [`FlowTable::expire_discard`]).
    pub fn sweep_discard(&mut self, now: SimTime) {
        self.table.expire_discard(now);
    }

    /// Earliest instant a timeout sweep could evict anything. O(1); lets the
    /// event loop skip sweeps entirely while nothing is due.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.table.next_expiry()
    }

    /// Pre-size the flow table and packet buffer for an expected load.
    pub fn reserve(&mut self, flows: usize, buffers: usize) {
        self.table.reserve(flows);
        self.buffered.reserve(buffers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(d: u8) -> IpAddr {
        IpAddr::new(10, 0, 0, d)
    }
    fn sa(d: u8, port: u16) -> SocketAddr {
        SocketAddr::new(ip(d), port)
    }
    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn service_packet() -> Packet {
        Packet::syn(sa(1, 40000), sa(200, 80), 7)
    }

    fn out(port: usize) -> Vec<Action> {
        vec![Action::Output(PortId(port))]
    }

    #[test]
    fn ipnet_contains() {
        let net = IpNet::new(IpAddr::new(10, 1, 0, 0), 16);
        assert!(net.contains(IpAddr::new(10, 1, 0, 1)));
        assert!(net.contains(IpAddr::new(10, 1, 255, 255)));
        assert!(!net.contains(IpAddr::new(10, 2, 0, 1)));
        let all = IpNet::new(IpAddr::new(0, 0, 0, 0), 0);
        assert!(all.contains(IpAddr::new(203, 0, 113, 9)));
        let host = IpNet::new(IpAddr::new(10, 0, 0, 5), 32);
        assert!(host.contains(IpAddr::new(10, 0, 0, 5)));
        assert!(!host.contains(IpAddr::new(10, 0, 0, 6)));
    }

    #[test]
    fn ipnet_contains_edge_cases() {
        // /0 matches everything no matter what address bits it carries
        let all = IpNet::new(IpAddr::new(192, 0, 2, 77), 0);
        assert!(all.contains(IpAddr::new(0, 0, 0, 0)));
        assert!(all.contains(IpAddr::new(255, 255, 255, 255)));
        // /32 is an exact host match, including the extremes of the space
        let zero = IpNet::new(IpAddr::new(0, 0, 0, 0), 32);
        assert!(zero.contains(IpAddr::new(0, 0, 0, 0)));
        assert!(!zero.contains(IpAddr::new(0, 0, 0, 1)));
        let top = IpNet::new(IpAddr::new(255, 255, 255, 255), 32);
        assert!(top.contains(IpAddr::new(255, 255, 255, 255)));
        assert!(!top.contains(IpAddr::new(255, 255, 255, 254)));
        // /31 pairs exactly two addresses; /1 splits the space in half
        let pair = IpNet::new(IpAddr::new(10, 0, 0, 4), 31);
        assert!(pair.contains(IpAddr::new(10, 0, 0, 4)));
        assert!(pair.contains(IpAddr::new(10, 0, 0, 5)));
        assert!(!pair.contains(IpAddr::new(10, 0, 0, 6)));
        let high_half = IpNet::new(IpAddr::new(128, 0, 0, 0), 1);
        assert!(high_half.contains(IpAddr::new(200, 1, 2, 3)));
        assert!(!high_half.contains(IpAddr::new(127, 255, 255, 255)));
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn ipnet_rejects_v6_style_prefix() {
        // The address model is v4-only; a /128 (v6-length) prefix is the
        // family-mismatch analogue and must be rejected loudly, not wrap.
        let _ = IpNet::new(IpAddr::new(10, 0, 0, 0), 128);
    }

    #[test]
    fn flow_match_edge_cases() {
        let p = service_packet(); // tcp 10.0.0.1:40000 -> 10.0.0.200:80
                                  // /0 masked fields are pure wildcards
        let any_net = FlowMatch {
            src_net: Some(IpNet::new(IpAddr::new(9, 9, 9, 9), 0)),
            dst_net: Some(IpNet::new(IpAddr::new(1, 2, 3, 4), 0)),
            ..FlowMatch::default()
        };
        assert!(any_net.matches(&p));
        // a /32 mask behaves exactly like the corresponding exact-ip match
        let host_net = FlowMatch {
            dst_net: Some(IpNet::new(ip(200), 32)),
            ..FlowMatch::default()
        };
        let host_exact = FlowMatch {
            dst_ip: Some(ip(200)),
            ..FlowMatch::default()
        };
        assert_eq!(host_net.matches(&p), host_exact.matches(&p));
        let other = Packet::syn(sa(1, 40000), sa(201, 80), 0);
        assert!(!host_net.matches(&other));
        assert!(!host_exact.matches(&other));
        // exact ip and mask combine conjunctively: pinning an ip outside the
        // mask yields a dead matcher
        let dead = FlowMatch {
            dst_ip: Some(ip(200)),
            dst_net: Some(IpNet::new(IpAddr::new(192, 168, 0, 0), 16)),
            ..FlowMatch::default()
        };
        assert!(!dead.matches(&p));
        assert!(!dead.is_satisfiable());
        // protocol family mismatch: a udp-only matcher never sees tcp
        let udp_only = FlowMatch {
            protocol: Some(Protocol::Udp),
            ..FlowMatch::default()
        };
        assert!(!udp_only.matches(&p));
    }

    #[test]
    fn flow_match_subsumption() {
        let svc = sa(200, 80);
        let broad = FlowMatch::to_service(svc);
        let narrow = FlowMatch::client_to_service(ip(1), svc);
        assert!(broad.subsumes(&narrow));
        assert!(!narrow.subsumes(&broad));
        assert!(broad.subsumes(&broad));
        // wildcard covers everything
        assert!(FlowMatch::any().subsumes(&broad));
        assert!(!broad.subsumes(&FlowMatch::any()));
        // a /16 route covers the exact ips and the /24s under it
        let wide = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 16));
        assert!(wide.subsumes(&broad));
        assert!(wide.subsumes(&FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 3, 0), 24))));
        assert!(!wide.subsumes(&FlowMatch::to_net(IpNet::new(IpAddr::new(10, 1, 0, 0), 24))));
        // an exact-ip requirement is met by a /32 pinning the same host
        let pinned = FlowMatch {
            dst_ip: Some(ip(200)),
            ..FlowMatch::default()
        };
        let via_host_mask = FlowMatch {
            dst_net: Some(IpNet::new(ip(200), 32)),
            ..FlowMatch::default()
        };
        assert!(pinned.subsumes(&via_host_mask));
        assert!(via_host_mask.subsumes(&pinned));
        // /0 subsumes any destination constraint
        let zero = FlowMatch::to_net(IpNet::new(IpAddr::new(0, 0, 0, 0), 0));
        assert!(zero.subsumes(&broad));
    }

    #[test]
    fn flow_match_intersection() {
        let svc = sa(200, 80);
        // same destination, different pinned clients: disjoint
        let a = FlowMatch::client_to_service(ip(1), svc);
        let b = FlowMatch::client_to_service(ip(2), svc);
        assert!(!a.intersects(&b));
        // service-wide rule overlaps each per-client rule
        assert!(FlowMatch::to_service(svc).intersects(&a));
        // sibling /24s are disjoint, nested prefixes overlap
        let left = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 1, 0), 24));
        let right = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 2, 0), 24));
        let parent = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 16));
        assert!(!left.intersects(&right));
        assert!(parent.intersects(&left));
        // pinned ip vs a mask that excludes it
        let pin = FlowMatch {
            dst_ip: Some(ip(200)),
            ..FlowMatch::default()
        };
        assert!(!pin.intersects(&FlowMatch::to_net(IpNet::new(
            IpAddr::new(192, 168, 0, 0),
            16
        ))));
        assert!(pin.intersects(&FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 8))));
        // protocol disagreement kills the intersection
        let tcp = FlowMatch {
            protocol: Some(Protocol::Tcp),
            ..FlowMatch::default()
        };
        let udp = FlowMatch {
            protocol: Some(Protocol::Udp),
            ..FlowMatch::default()
        };
        assert!(!tcp.intersects(&udp));
    }

    #[test]
    fn shadowed_by_reports_covering_rule() {
        let mut table = FlowTable::new();
        let broad = table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(200)
                .actions(out(1)),
        );
        let narrow = table.install(
            t(1),
            FlowSpec::new(FlowMatch::client_to_service(ip(1), sa(200, 80)))
                .priority(100)
                .actions(out(2)),
        );
        assert_eq!(table.shadowed_by(narrow), Some(broad));
        assert_eq!(table.shadowed_by(broad), None);
        // an unrelated rule is not shadowed
        let other = table.install(
            t(2),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(100)
                .actions(out(3)),
        );
        assert_eq!(table.shadowed_by(other), None);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn flow_mod_records_install_warning_for_shadowed_rule() {
        let mut sw = Switch::new(4);
        let broad = sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(200)
                .actions(out(1)),
        );
        assert!(sw.install_warnings.is_empty());
        let narrow = sw.flow_mod(
            t(1),
            FlowSpec::new(FlowMatch::client_to_service(ip(1), sa(200, 80)))
                .priority(100)
                .actions(out(2)),
        );
        assert_eq!(
            sw.install_warnings,
            vec![InstallWarning {
                installed: narrow,
                shadowed_by: broad,
            }]
        );
    }

    #[test]
    fn masked_match_routes_by_prefix() {
        let m = FlowMatch::to_net(IpNet::new(IpAddr::new(10, 1, 0, 0), 16));
        let to_client = Packet::syn(
            sa(200, 80),
            SocketAddr::new(IpAddr::new(10, 1, 0, 7), 4000),
            0,
        );
        let elsewhere = Packet::syn(
            sa(200, 80),
            SocketAddr::new(IpAddr::new(10, 2, 0, 7), 4000),
            0,
        );
        assert!(m.matches(&to_client));
        assert!(!m.matches(&elsewhere));
        // masked and exact fields combine conjunctively
        let both = FlowMatch {
            dst_net: Some(IpNet::new(IpAddr::new(10, 1, 0, 0), 16)),
            dst_port: Some(4000),
            ..FlowMatch::default()
        };
        assert!(both.matches(&to_client));
        let wrong_port = Packet::syn(sa(200, 80), SocketAddr::new(IpAddr::new(10, 1, 0, 7), 9), 0);
        assert!(!both.matches(&wrong_port));
    }

    #[test]
    fn match_wildcards() {
        let p = service_packet();
        assert!(FlowMatch::any().matches(&p));
        assert!(FlowMatch::to_service(sa(200, 80)).matches(&p));
        assert!(!FlowMatch::to_service(sa(200, 443)).matches(&p));
        assert!(FlowMatch::client_to_service(ip(1), sa(200, 80)).matches(&p));
        assert!(!FlowMatch::client_to_service(ip(2), sa(200, 80)).matches(&p));
    }

    #[test]
    fn table_miss_buffers_and_raises_packet_in() {
        let mut sw = Switch::new(4);
        let p = service_packet();
        match sw.receive(t(0), p) {
            PacketVerdict::PacketIn { packet, .. } => assert_eq!(packet, p),
            other => panic!("expected PacketIn, got {other:?}"),
        }
        assert_eq!(sw.buffered_count(), 1);
        assert_eq!(sw.stats.table_misses, 1);
    }

    #[test]
    fn flow_mod_then_hit_rewrites_and_forwards() {
        let mut sw = Switch::new(4);
        let edge = sa(50, 8080);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(100)
                .action(Action::SetDstIp(edge.ip))
                .action(Action::SetDstPort(edge.port))
                .action(Action::Output(PortId(2)))
                .idle(SimDuration::from_secs(10))
                .cookie(1),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst, edge);
                assert_eq!(packet.src, sa(1, 40000), "src untouched");
                assert_eq!(out_port, PortId(2));
            }
            other => panic!("expected Forward, got {other:?}"),
        }
        assert_eq!(sw.stats.table_hits, 1);
    }

    #[test]
    fn priority_order_wins() {
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any()).priority(1).actions(out(0)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(100)
                .actions(out(3)),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(3)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_priority_same_match_replaces() {
        // OFPFC_ADD semantics: identical (priority, match) overwrites.
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any()).priority(5).actions(out(1)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any()).priority(5).actions(out(2)),
        );
        assert_eq!(sw.table.len(), 1);
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_priority_different_match_first_wins() {
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(5)
                .actions(out(1)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any()).priority(5).actions(out(2)),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn masked_entry_beats_lower_priority_exact() {
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(1)
                .actions(out(1)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 8)))
                .priority(50)
                .actions(out(2)),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn same_priority_exact_vs_masked_insertion_order_wins() {
        // Exact installed first at the same priority: insertion order decides.
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(5)
                .actions(out(1)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 8)))
                .priority(5)
                .actions(out(2)),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(1)),
            other => panic!("{other:?}"),
        }

        // And the mirror image: masked first, exact second.
        let mut sw = Switch::new(4);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_net(IpNet::new(IpAddr::new(10, 0, 0, 0), 8)))
                .priority(5)
                .actions(out(2)),
        );
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(5)
                .actions(out(1)),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::Forward { out_port, .. } => assert_eq!(out_port, PortId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn packet_out_releases_buffered_packet() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        let verdict = sw
            .packet_out(
                t(2),
                buffer_id,
                &[Action::SetDstIp(ip(50)), Action::Output(PortId(1))],
            )
            .unwrap();
        match verdict {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst.ip, ip(50));
                assert_eq!(out_port, PortId(1));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(sw.buffered_count(), 0);
        // double release fails
        assert!(sw.packet_out(t(3), buffer_id, &[]).is_none());
    }

    #[test]
    fn packet_out_via_table_uses_installed_flow() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        sw.flow_mod(
            t(1),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(100)
                .action(Action::SetDstIp(ip(50)))
                .action(Action::Output(PortId(2))),
        );
        match sw.packet_out_via_table(t(2), buffer_id).unwrap() {
            PacketVerdict::Forward { packet, out_port } => {
                assert_eq!(packet.dst.ip, ip(50));
                assert_eq!(out_port, PortId(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resubmission_miss_drops_instead_of_rebuffering() {
        let mut sw = Switch::new(4);
        let PacketVerdict::PacketIn { buffer_id, .. } = sw.receive(t(0), service_packet()) else {
            panic!("expected PacketIn");
        };
        // no flow installed: resubmission must not loop
        assert_eq!(
            sw.packet_out_via_table(t(1), buffer_id),
            Some(PacketVerdict::Dropped)
        );
        assert_eq!(sw.buffered_count(), 0);
    }

    #[test]
    fn idle_timeout_expires_unused_flows() {
        let mut table = FlowTable::new();
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(10)
                .actions(out(0))
                .idle(SimDuration::from_secs(5))
                .cookie(7),
        );
        assert!(table.expire(t(4999)).is_empty());
        let removed = table.expire(t(5000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovalReason::IdleTimeout);
        assert_eq!(removed[0].entry.cookie, 7);
        assert!(table.is_empty());
    }

    #[test]
    fn traffic_refreshes_idle_timer() {
        let mut table = FlowTable::new();
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(10)
                .actions(out(0))
                .idle(SimDuration::from_secs(5)),
        );
        let p = service_packet();
        assert!(table.lookup(t(3000), &p).is_some());
        assert!(table.expire(t(5000)).is_empty(), "refreshed at t=3s");
        assert_eq!(table.expire(t(8000)).len(), 1);
    }

    #[test]
    fn hard_timeout_fires_even_with_traffic() {
        let mut table = FlowTable::new();
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::any())
                .priority(10)
                .actions(out(0))
                .idle(SimDuration::from_secs(60))
                .hard(SimDuration::from_secs(10)),
        );
        let p = service_packet();
        assert!(table.lookup(t(9000), &p).is_some());
        let removed = table.expire(t(10_000));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, RemovalReason::HardTimeout);
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let mut table = FlowTable::new();
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::any())
                .priority(1)
                .idle(SimDuration::from_secs(30)),
        );
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(1)
                .hard(SimDuration::from_secs(7)),
        );
        assert_eq!(table.next_expiry(), Some(t(7000)));
        assert_eq!(FlowTable::new().next_expiry(), None);
    }

    #[test]
    fn next_expiry_follows_refreshes_and_deletes() {
        let mut table = FlowTable::new();
        let id = table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(1)
                .idle(SimDuration::from_secs(5))
                .cookie(9),
        );
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(1)
                .idle(SimDuration::from_secs(8)),
        );
        assert_eq!(table.next_expiry(), Some(t(5000)));
        // a hit pushes the first entry's deadline past the second's
        let p = Packet::syn(sa(1, 40000), sa(200, 80), 0);
        table.lookup(t(4000), &p);
        assert_eq!(table.next_expiry(), Some(t(8000)));
        // deleting the second leaves only the refreshed deadline
        table.delete_matching(t(4000), &FlowMatch::to_service(sa(201, 80)));
        assert_eq!(table.next_expiry(), Some(t(9000)));
        assert!(table.get(id).is_some());
    }

    #[test]
    fn expire_reports_in_table_order() {
        let mut table = FlowTable::new();
        // Install in an order different from table order; give the *later*
        // table position the earlier deadline.
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(1)
                .idle(SimDuration::from_secs(1))
                .cookie(1),
        );
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(9)
                .idle(SimDuration::from_secs(2))
                .cookie(2),
        );
        let removed = table.expire(t(60_000));
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].entry.cookie, 2, "higher priority first");
        assert_eq!(removed[1].entry.cookie, 1);
    }

    #[test]
    fn delete_by_cookie_and_matcher() {
        let mut table = FlowTable::new();
        let m = FlowMatch::to_service(sa(200, 80));
        table.install(t(0), FlowSpec::new(m).priority(1).cookie(42));
        table.install(t(0), FlowSpec::new(FlowMatch::any()).priority(1).cookie(42));
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(1)
                .cookie(1),
        );
        assert_eq!(table.delete_matching(t(1), &m).len(), 1);
        assert_eq!(table.delete_by_cookie(t(1), 42).len(), 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn delete_by_cookie_spans_priorities_in_table_order() {
        let mut table = FlowTable::new();
        table.install(t(0), FlowSpec::new(FlowMatch::any()).priority(1).cookie(7));
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(9)
                .cookie(7),
        );
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(5)
                .cookie(8),
        );
        let removed = table.delete_by_cookie(t(1), 7);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].entry.priority, 9);
        assert_eq!(removed[1].entry.priority, 1);
        assert!(removed.iter().all(|r| r.reason == RemovalReason::Deleted));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn lookup_updates_stats() {
        let mut table = FlowTable::new();
        let id = table.install(t(0), FlowSpec::new(FlowMatch::any()).priority(1));
        let p = service_packet();
        table.lookup(t(5), &p);
        table.lookup(t(9), &p);
        let e = table.get(id).unwrap();
        assert_eq!(e.packets, 2);
        assert_eq!(e.last_used, t(9));
    }

    #[test]
    fn slots_are_reused_but_ids_are_not() {
        let mut table = FlowTable::new();
        let first = table.install(t(0), FlowSpec::new(FlowMatch::any()).priority(1).cookie(1));
        table.delete_by_cookie(t(1), 1);
        let second = table.install(t(2), FlowSpec::new(FlowMatch::any()).priority(1).cookie(2));
        assert!(second > first, "flow ids must stay monotonic");
        assert!(table.get(first).is_none());
        assert_eq!(table.get(second).unwrap().cookie, 2);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn iter_ordered_walks_table_order() {
        let mut table = FlowTable::new();
        table.install(t(0), FlowSpec::new(FlowMatch::any()).priority(1).cookie(1));
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(200, 80)))
                .priority(9)
                .cookie(2),
        );
        table.install(
            t(0),
            FlowSpec::new(FlowMatch::to_service(sa(201, 80)))
                .priority(9)
                .cookie(3),
        );
        let cookies: Vec<u64> = table.iter_ordered().map(|e| e.cookie).collect();
        assert_eq!(cookies, vec![2, 3, 1]);
    }

    #[test]
    fn drop_action() {
        let mut sw = Switch::new(1);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any())
                .priority(1)
                .action(Action::Drop),
        );
        assert_eq!(sw.receive(t(1), service_packet()), PacketVerdict::Dropped);
        assert_eq!(sw.stats.dropped, 1);
    }

    #[test]
    fn to_controller_action_buffers() {
        let mut sw = Switch::new(1);
        sw.flow_mod(
            t(0),
            FlowSpec::new(FlowMatch::any())
                .priority(1)
                .action(Action::ToController),
        );
        match sw.receive(t(1), service_packet()) {
            PacketVerdict::PacketIn { .. } => {}
            other => panic!("{other:?}"),
        }
    }
}
