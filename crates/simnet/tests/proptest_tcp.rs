//! Property tests of the flow-level TCP timing model: monotonicity in every
//! argument and compositionality — properties the calibration story depends
//! on (if more bytes could ever be faster, the pull-time and payload curves
//! would be meaningless).

use proptest::prelude::*;
use simcore::SimDuration;
use simnet::TcpModel;

fn model_strategy() -> impl Strategy<Value = TcpModel> {
    // RTT 0.1 ms .. 100 ms, bandwidth 1 Mbps .. 10 Gbps
    (100u64..100_000, 1_000_000u64..10_000_000_000)
        .prop_map(|(rtt_us, bw)| TcpModel::new(SimDuration::from_micros(rtt_us), bw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn transfer_monotone_in_bytes(m in model_strategy(), a in 0u64..100_000_000, b in 0u64..100_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            m.transfer_time(lo) <= m.transfer_time(hi),
            "transfer({lo}) > transfer({hi})"
        );
    }

    #[test]
    fn transfer_monotone_in_bandwidth(
        rtt_us in 100u64..100_000,
        bytes in 1u64..100_000_000,
        bw_a in 1_000_000u64..10_000_000_000,
        bw_b in 1_000_000u64..10_000_000_000,
    ) {
        let (slow, fast) = if bw_a <= bw_b { (bw_a, bw_b) } else { (bw_b, bw_a) };
        let rtt = SimDuration::from_micros(rtt_us);
        let t_slow = TcpModel::new(rtt, slow).transfer_time(bytes);
        let t_fast = TcpModel::new(rtt, fast).transfer_time(bytes);
        prop_assert!(t_fast <= t_slow, "more bandwidth must never be slower");
    }

    #[test]
    fn transfer_monotone_in_rtt(
        bw in 1_000_000u64..10_000_000_000,
        bytes in 0u64..100_000_000,
        rtt_a in 100u64..100_000,
        rtt_b in 100u64..100_000,
    ) {
        let (short, long) = if rtt_a <= rtt_b { (rtt_a, rtt_b) } else { (rtt_b, rtt_a) };
        let t_short = TcpModel::new(SimDuration::from_micros(short), bw).transfer_time(bytes);
        let t_long = TcpModel::new(SimDuration::from_micros(long), bw).transfer_time(bytes);
        prop_assert!(t_short <= t_long, "longer RTT must never be faster");
    }

    #[test]
    fn request_response_composes(m in model_strategy(), req in 0u64..1_000_000, resp in 0u64..1_000_000, think_us in 0u64..1_000_000) {
        let think = SimDuration::from_micros(think_us);
        let total = m.request_response_time(req, resp, think);
        let manual = m.connect_time() + m.transfer_time(req) + think + m.transfer_time(resp);
        prop_assert_eq!(total, manual);
    }

    #[test]
    fn transfer_at_least_serialization_plus_propagation(m in model_strategy(), bytes in 0u64..100_000_000) {
        let t = m.transfer_time(bytes);
        let floor = m.rtt / 2 + m.serialization(bytes);
        prop_assert!(t >= floor);
        // and bounded: slow start can add at most ~32 extra RTTs for any
        // realistic transfer size
        prop_assert!(t <= floor + m.rtt * 64, "unreasonable slow-start stalls");
    }
}
