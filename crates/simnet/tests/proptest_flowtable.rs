//! Model-based property tests of the OpenFlow flow table: priority order,
//! OFPFC_ADD replace semantics, idle/hard timeout eviction and stats must
//! match a naive reference implementation under arbitrary operation
//! sequences.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simnet::openflow::{Action, FlowMatch, FlowTable, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

#[derive(Debug, Clone)]
enum Op {
    Add { priority: u16, client: u8, dst: u8, idle_ms: Option<u64>, hard_ms: Option<u64> },
    Packet { client: u8, dst: u8, advance_ms: u64 },
    Expire { advance_ms: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u16..4, 0u8..4, 0u8..4, prop::option::of(1u64..5000), prop::option::of(1u64..5000))
            .prop_map(|(priority, client, dst, idle_ms, hard_ms)| Op::Add {
                priority, client, dst, idle_ms, hard_ms
            }),
        4 => (0u8..4, 0u8..4, 0u64..500).prop_map(|(client, dst, advance_ms)| Op::Packet {
            client, dst, advance_ms
        }),
        1 => (0u64..3000).prop_map(|advance_ms| Op::Expire { advance_ms }),
    ]
}

fn matcher(client: u8, dst: u8) -> FlowMatch {
    FlowMatch::client_to_service(
        IpAddr::new(10, 0, 0, client),
        SocketAddr::new(IpAddr::new(93, 184, 0, dst), 80),
    )
}

fn packet(client: u8, dst: u8) -> Packet {
    Packet::syn(
        SocketAddr::new(IpAddr::new(10, 0, 0, client), 40000),
        SocketAddr::new(IpAddr::new(93, 184, 0, dst), 80),
        0,
    )
}

/// Naive reference: ordered Vec of entries.
#[derive(Debug)]
struct ModelEntry {
    priority: u16,
    client: u8,
    dst: u8,
    idle: Option<u64>,
    hard: Option<u64>,
    installed: u64,
    last_used: u64,
    cookie: u64,
}

#[derive(Default)]
struct Model {
    entries: Vec<ModelEntry>,
}

impl Model {
    fn add(&mut self, now: u64, e: ModelEntry) {
        // OFPFC_ADD: same (priority, match) replaces
        self.entries
            .retain(|x| !(x.priority == e.priority && x.client == e.client && x.dst == e.dst));
        let pos = self
            .entries
            .iter()
            .position(|x| x.priority < e.priority)
            .unwrap_or(self.entries.len());
        let mut e = e;
        e.installed = now;
        e.last_used = now;
        self.entries.insert(pos, e);
    }

    fn expire(&mut self, now: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| {
            let hard_dead = e.hard.is_some_and(|h| now - e.installed >= h);
            let idle_dead = e.idle.is_some_and(|i| now - e.last_used >= i);
            !(hard_dead || idle_dead)
        });
        before - self.entries.len()
    }

    fn lookup(&mut self, now: u64, client: u8, dst: u8) -> Option<u64> {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.client == client && e.dst == dst)?;
        e.last_used = now;
        Some(e.cookie)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flow_table_matches_model(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut table = FlowTable::new();
        let mut model = Model::default();
        let mut now_ms = 0u64;
        let mut cookie = 0u64;

        for op in ops {
            match op {
                Op::Add { priority, client, dst, idle_ms, hard_ms } => {
                    cookie += 1;
                    let t = SimTime::ZERO + SimDuration::from_millis(now_ms);
                    table.add(
                        t,
                        priority,
                        matcher(client, dst),
                        vec![Action::Output(PortId(0))],
                        idle_ms.map(SimDuration::from_millis),
                        hard_ms.map(SimDuration::from_millis),
                        cookie,
                    );
                    model.add(now_ms, ModelEntry {
                        priority, client, dst,
                        idle: idle_ms, hard: hard_ms,
                        installed: 0, last_used: 0, cookie,
                    });
                }
                Op::Packet { client, dst, advance_ms } => {
                    now_ms += advance_ms;
                    let t = SimTime::ZERO + SimDuration::from_millis(now_ms);
                    // expire first in both (the switch sweeps before receive
                    // in the testbed loop)
                    table.expire(t);
                    model.expire(now_ms);
                    let got = table.lookup(t, &packet(client, dst)).map(|e| e.cookie);
                    let want = model.lookup(now_ms, client, dst);
                    prop_assert_eq!(got, want, "lookup mismatch at t={}ms", now_ms);
                }
                Op::Expire { advance_ms } => {
                    now_ms += advance_ms;
                    let t = SimTime::ZERO + SimDuration::from_millis(now_ms);
                    let removed = table.expire(t).len();
                    let model_removed = model.expire(now_ms);
                    prop_assert_eq!(removed, model_removed, "eviction count at t={}ms", now_ms);
                }
            }
            prop_assert_eq!(table.len(), model.entries.len(), "table size");
        }
    }

    #[test]
    fn next_expiry_is_sound(
        idles in prop::collection::vec(1u64..1000, 1..20),
    ) {
        // next_expiry() never reports an instant later than a real expiry:
        // sweeping at next_expiry always evicts at least one entry.
        let mut table = FlowTable::new();
        for (i, &idle) in idles.iter().enumerate() {
            table.add(
                SimTime::ZERO,
                1,
                matcher((i % 250) as u8, (i / 250) as u8),
                vec![],
                Some(SimDuration::from_millis(idle)),
                None,
                i as u64,
            );
        }
        let at = table.next_expiry().expect("entries have timeouts");
        prop_assert!(table.expire(at - SimDuration::from_nanos(1)).is_empty(),
            "nothing may expire before next_expiry");
        prop_assert!(!table.expire(at).is_empty(), "something must expire at next_expiry");
    }
}
