//! Model-based equivalence tests of the indexed OpenFlow flow table: under
//! arbitrary operation sequences mixing exact, wildcard and masked (`IpNet`)
//! entries, the hash-indexed implementation must behave exactly like a naive
//! linear scan over a priority-ordered list — identical match results,
//! identical eviction order, identical `FlowRemoved` reasons, identical
//! `next_expiry` schedule.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simnet::openflow::{Action, FlowMatch, FlowSpec, FlowTable, IpNet, PortId, RemovalReason};
use simnet::{IpAddr, Packet, SocketAddr};

fn client_ip(c: u8) -> IpAddr {
    IpAddr::new(10, 0, 0, c)
}

fn svc_addr(d: u8) -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, d), 80)
}

fn packet(client: u8, dst: u8) -> Packet {
    Packet::syn(SocketAddr::new(client_ip(client), 40000), svc_addr(dst), 0)
}

/// Matchers drawn from a deliberately small universe so installs collide,
/// replace each other, and overlap in lookup: fully exact per-client rules,
/// partially-wildcarded exact rules, catch-alls, and masked topology routes
/// on either side.
fn matcher_strategy() -> impl Strategy<Value = FlowMatch> {
    let prefix = prop_oneof![Just(8u8), Just(16u8), Just(24u8), Just(32u8)];
    let prefix2 = prop_oneof![Just(8u8), Just(16u8), Just(24u8), Just(32u8)];
    prop_oneof![
        3 => (0u8..4, 0u8..4).prop_map(|(c, d)| {
            FlowMatch::client_to_service(client_ip(c), svc_addr(d))
        }),
        2 => (0u8..4).prop_map(|d| FlowMatch::to_service(svc_addr(d))),
        1 => (0u8..4).prop_map(|c| FlowMatch {
            src_ip: Some(client_ip(c)),
            ..FlowMatch::default()
        }),
        1 => Just(FlowMatch::any()),
        2 => (0u8..4, prefix).prop_map(|(c, p)| {
            FlowMatch::from_net(IpNet::new(client_ip(c), p))
        }),
        2 => (0u8..4, prefix2).prop_map(|(d, p)| {
            FlowMatch::to_net(IpNet::new(svc_addr(d).ip, p))
        }),
        1 => (0u8..4, 0u8..4).prop_map(|(c, d)| FlowMatch {
            src_net: Some(IpNet::new(client_ip(c), 24)),
            dst_ip: Some(svc_addr(d).ip),
            dst_port: Some(80),
            ..FlowMatch::default()
        }),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Install {
        matcher: FlowMatch,
        priority: u16,
        idle_ms: Option<u64>,
        hard_ms: Option<u64>,
        cookie: u64,
    },
    Packet {
        client: u8,
        dst: u8,
        advance_ms: u64,
    },
    Expire {
        advance_ms: u64,
    },
    DeleteMatching {
        matcher: FlowMatch,
    },
    DeleteByCookie {
        cookie: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (
            matcher_strategy(),
            0u16..4,
            prop::option::of(1u64..5000),
            prop::option::of(1u64..5000),
            0u64..3,
        )
            .prop_map(|(matcher, priority, idle_ms, hard_ms, cookie)| Op::Install {
                matcher, priority, idle_ms, hard_ms, cookie
            }),
        4 => (0u8..4, 0u8..4, 0u64..500).prop_map(|(client, dst, advance_ms)| Op::Packet {
            client, dst, advance_ms
        }),
        1 => (0u64..3000).prop_map(|advance_ms| Op::Expire { advance_ms }),
        1 => matcher_strategy().prop_map(|matcher| Op::DeleteMatching { matcher }),
        1 => (0u64..3).prop_map(|cookie| Op::DeleteByCookie { cookie }),
    ]
}

/// The retained reference implementation: a plain `Vec` kept in table order
/// (priority descending, insertion order ascending) and scanned linearly for
/// everything, exactly like the pre-index flow table.
#[derive(Debug)]
struct ModelEntry {
    id: u64,
    priority: u16,
    matcher: FlowMatch,
    idle: Option<SimDuration>,
    hard: Option<SimDuration>,
    cookie: u64,
    installed: SimTime,
    last_used: SimTime,
}

impl ModelEntry {
    fn deadline(&self) -> Option<SimTime> {
        let idle = self.idle.map(|d| self.last_used + d);
        let hard = self.hard.map(|d| self.installed + d);
        match (idle, hard) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[derive(Debug, Default)]
struct Model {
    entries: Vec<ModelEntry>,
    next_id: u64,
}

impl Model {
    fn install(
        &mut self,
        now: SimTime,
        matcher: FlowMatch,
        priority: u16,
        idle: Option<SimDuration>,
        hard: Option<SimDuration>,
        cookie: u64,
    ) -> u64 {
        // OFPFC_ADD: same (priority, match) replaces, counters reset.
        self.entries
            .retain(|e| !(e.priority == priority && e.matcher == matcher));
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < priority)
            .unwrap_or(self.entries.len());
        let id = self.next_id;
        self.next_id += 1;
        self.entries.insert(
            pos,
            ModelEntry {
                id,
                priority,
                matcher,
                idle,
                hard,
                cookie,
                installed: now,
                last_used: now,
            },
        );
        id
    }

    fn lookup(&mut self, now: SimTime, p: &Packet) -> Option<u64> {
        let e = self.entries.iter_mut().find(|e| e.matcher.matches(p))?;
        e.last_used = now;
        Some(e.id)
    }

    fn expire(&mut self, now: SimTime) -> Vec<(u64, RemovalReason)> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.deadline().is_some_and(|d| d <= now) {
                // Hard timeouts are reported in preference to idle ones.
                let hard_elapsed = e.hard.is_some_and(|h| now.since(e.installed) >= h);
                let reason = if hard_elapsed {
                    RemovalReason::HardTimeout
                } else {
                    RemovalReason::IdleTimeout
                };
                removed.push((e.id, reason));
                false
            } else {
                true
            }
        });
        removed
    }

    fn delete_matching(&mut self, matcher: &FlowMatch) -> Vec<(u64, RemovalReason)> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if &e.matcher == matcher {
                removed.push((e.id, RemovalReason::Deleted));
                false
            } else {
                true
            }
        });
        removed
    }

    fn delete_by_cookie(&mut self, cookie: u64) -> Vec<(u64, RemovalReason)> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.cookie == cookie {
                removed.push((e.id, RemovalReason::Deleted));
                false
            } else {
                true
            }
        });
        removed
    }

    fn next_expiry(&self) -> Option<SimTime> {
        self.entries.iter().filter_map(|e| e.deadline()).min()
    }
}

/// Removed-notification fingerprint: identity + reason, in reported order.
fn removal_ids(removed: &[simnet::openflow::FlowRemoved]) -> Vec<(u64, RemovalReason)> {
    removed.iter().map(|r| (r.entry.id.0, r.reason)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn flow_table_matches_linear_scan_model(
        ops in prop::collection::vec(op_strategy(), 0..120),
    ) {
        let mut table = FlowTable::new();
        let mut model = Model::default();
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Install { matcher, priority, idle_ms, hard_ms, cookie } => {
                    let idle = idle_ms.map(SimDuration::from_millis);
                    let hard = hard_ms.map(SimDuration::from_millis);
                    let got = table.install(
                        now,
                        FlowSpec::new(matcher)
                            .priority(priority)
                            .action(Action::Output(PortId(0)))
                            .idle_opt(idle)
                            .hard_opt(hard)
                            .cookie(cookie),
                    );
                    let want = model.install(now, matcher, priority, idle, hard, cookie);
                    prop_assert_eq!(got.0, want, "install ids diverged");
                }
                Op::Packet { client, dst, advance_ms } => {
                    now += SimDuration::from_millis(advance_ms);
                    // Expire first in both: the testbed sweeps before receive.
                    let evicted = removal_ids(&table.expire(now));
                    prop_assert_eq!(evicted, model.expire(now), "pre-lookup eviction");
                    let p = packet(client, dst);
                    let got = table.lookup(now, &p).map(|e| e.id.0);
                    let want = model.lookup(now, &p);
                    prop_assert_eq!(got, want, "lookup winner at {}", now);
                }
                Op::Expire { advance_ms } => {
                    now += SimDuration::from_millis(advance_ms);
                    let evicted = removal_ids(&table.expire(now));
                    prop_assert_eq!(evicted, model.expire(now), "eviction at {}", now);
                }
                Op::DeleteMatching { matcher } => {
                    let got = removal_ids(&table.delete_matching(now, &matcher));
                    prop_assert_eq!(got, model.delete_matching(&matcher), "strict delete");
                }
                Op::DeleteByCookie { cookie } => {
                    let got = removal_ids(&table.delete_by_cookie(now, cookie));
                    prop_assert_eq!(got, model.delete_by_cookie(cookie), "cookie delete");
                }
            }
            prop_assert_eq!(table.len(), model.entries.len(), "table size");
            prop_assert_eq!(table.next_expiry(), model.next_expiry(), "next_expiry");
        }
    }

    #[test]
    fn next_expiry_is_sound(
        idles in prop::collection::vec(1u64..1000, 1..20),
    ) {
        // next_expiry() never reports an instant later than a real expiry:
        // sweeping at next_expiry always evicts at least one entry.
        let mut table = FlowTable::new();
        for (i, &idle) in idles.iter().enumerate() {
            let matcher = FlowMatch::client_to_service(
                client_ip((i % 250) as u8),
                svc_addr((i / 250) as u8),
            );
            table.install(
                SimTime::ZERO,
                FlowSpec::new(matcher)
                    .priority(1)
                    .idle(SimDuration::from_millis(idle))
                    .cookie(i as u64),
            );
        }
        let at = table.next_expiry().expect("entries have timeouts");
        prop_assert!(table.expire(at - SimDuration::from_nanos(1)).is_empty(),
            "nothing may expire before next_expiry");
        prop_assert!(!table.expire(at).is_empty(), "something must expire at next_expiry");
    }
}
