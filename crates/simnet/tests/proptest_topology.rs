//! Property tests of the topology's shortest-path routing against a
//! Floyd–Warshall reference on random graphs.

use proptest::prelude::*;
use simcore::SimDuration;
use simnet::topology::{NodeKind, Topology};

/// A random graph: n nodes, a spanning chain (for connectivity on a subset)
/// plus random extra edges.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (3usize..12).prop_flat_map(|n| {
        let extra = prop::collection::vec((0..n, 0..n, 1u64..10_000), 0..20);
        (Just(n), extra)
    })
}

fn build(n: usize, edges: &[(usize, usize, u64)]) -> (Topology, Vec<simnet::NodeId>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| t.add_node(format!("n{i}"), NodeKind::Host))
        .collect();
    for &(a, b, w) in edges {
        if a != b {
            t.add_link(
                nodes[a],
                nodes[b],
                SimDuration::from_micros(w),
                1_000_000_000,
            );
        }
    }
    (t, nodes)
}

/// Floyd–Warshall over the same edge list (µs weights).
fn reference(n: usize, edges: &[(usize, usize, u64)]) -> Vec<Vec<u64>> {
    const INF: u64 = u64::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(a, b, w) in edges {
        if a != b {
            d[a][b] = d[a][b].min(w);
            d[b][a] = d[b][a].min(w);
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dijkstra_matches_floyd_warshall((n, edges) in graph_strategy()) {
        const INF: u64 = u64::MAX / 4;
        let (topo, nodes) = build(n, &edges);
        let want = reference(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let got = topo.latency(nodes[i], nodes[j]);
                if want[i][j] >= INF {
                    prop_assert!(got.is_none(), "{i}->{j} should be unreachable");
                } else {
                    let got = got.expect("reachable").as_micros();
                    prop_assert_eq!(got, want[i][j], "{}->{}", i, j);
                }
            }
        }
    }

    #[test]
    fn path_hops_are_adjacent_and_latencies_sum((n, edges) in graph_strategy()) {
        let (topo, nodes) = build(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let Some(path) = topo.path(nodes[i], nodes[j]) else { continue };
                prop_assert_eq!(*path.hops.first().unwrap(), nodes[i]);
                prop_assert_eq!(*path.hops.last().unwrap(), nodes[j]);
                // consecutive hops are joined by a link, and per-hop latencies
                // sum to the reported total
                let mut sum = 0u64;
                for w in path.hops.windows(2) {
                    let hop_lat = topo
                        .neighbors(w[0])
                        .filter(|&(nb, _)| nb == w[1])
                        .map(|(_, l)| topo.link_latency(l).as_micros())
                        .min();
                    let hop_lat = hop_lat.expect("hops must be adjacent");
                    sum += hop_lat;
                }
                prop_assert_eq!(sum, path.latency.as_micros());
            }
        }
    }
}
