//! Run configuration mirroring the paper's test matrix: which service type
//! (Table I), which backend cluster(s), which scheduler policy, which
//! registry setup, and how much of the deployment pipeline is pre-warmed
//! (Fig. 11 measures Scale-Up only, Fig. 12 Create+Scale-Up, Fig. 13 the
//! Pull phase, Fig. 16 a running instance).

use cluster::{ClusterKind, K8sTimings};
use edgectl::{ControllerConfig, SchedulerSpec};
use simcore::SimDuration;
use simnet::openflow::FlowSpec;
use workload::ServiceKind;

use crate::topology::SiteSpec;

/// Which proactive-deployment predictor runs alongside on-demand handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Pure on-demand (the paper's evaluated setting).
    None,
    /// Exponentially-decayed popularity scores.
    Popularity,
    /// Perfect foresight over the trace — bounds the achievable benefit.
    Oracle,
}

/// How much of the pipeline is already done before the measured request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSetup {
    /// Nothing pre-warmed: the first request pays Pull + Create + Scale-Up.
    Cold,
    /// Images cached: the request pays Create + Scale-Up (Fig. 12).
    ImagesCached,
    /// Images cached and service created: the request pays Scale-Up only
    /// (Fig. 11).
    Created,
    /// Instance running: the request is a plain redirect (Fig. 16).
    Running,
}

/// Multi-controller federation knobs (the `edgemesh` crate's input). Plain
/// data here so scenario files can configure a mesh without `testbed`
/// depending on `edgemesh` (the dependency runs the other way).
#[derive(Debug, Clone, PartialEq)]
pub struct MeshParams {
    /// How many controller instances the ingress switches are sharded
    /// across. `1` (the default) is the plain single-controller testbed —
    /// byte-identical to every pinned trace.
    pub shards: usize,
    /// One-way controller↔controller gossip link latency.
    pub link_latency: SimDuration,
    /// Per-delivery loss probability of a gossiped delta; lost deltas are
    /// retransmitted every `gossip_interval` until delivered.
    pub loss: f64,
    /// Deployment-lease coordination on/off. Off reproduces Cohen et al.'s
    /// duplicate-deployment failure mode.
    pub leases: bool,
    /// Retransmission back-off after a lost delta delivery.
    pub gossip_interval: SimDuration,
    /// Worker threads for the windowed parallel mesh engine. `1` (the
    /// default) runs the same windowed algorithm single-threaded; the mesh
    /// trace hash is identical for every value. Callers reject values above
    /// `shards` (`edgemesh::validate_threads`) — extra workers could only
    /// idle.
    pub threads: usize,
}

impl Default for MeshParams {
    fn default() -> Self {
        MeshParams {
            shards: 1,
            link_latency: SimDuration::from_micros(500),
            loss: 0.0,
            leases: true,
            gossip_interval: SimDuration::from_millis(50),
            threads: 1,
        }
    }
}

/// Full scenario description; `Default` is the paper's standard setup.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub seed: u64,
    /// The service type under test (one per run, paper §VI).
    pub service: ServiceKind,
    /// Which backend clusters exist on the EGS. The paper runs Docker and
    /// Kubernetes in separate test runs; the hybrid scheduler wants both.
    /// Ignored when `sites` is non-empty.
    pub backends: Vec<ClusterKind>,
    /// Explicit edge sites for hierarchical continuum scenarios
    /// (paper §IV-A2). Empty = derive EGS-class sites from `backends`.
    pub sites: Vec<(SiteSpec, ClusterKind)>,
    /// Which Global Scheduler policy drives the run, by registry name (see
    /// [`edgectl::SchedulerRegistry`]). Unknown names fail at build time with
    /// the registry's typed [`edgectl::UnknownPolicy`] error.
    pub scheduler: SchedulerSpec,
    /// Pull from the private LAN registry instead of Docker Hub / GCR.
    pub private_registry: bool,
    pub phase_setup: PhaseSetup,
    /// Which sites the `phase_setup` pre-warming applies to; `None` = all.
    /// Hierarchical scenarios use this to model "a farther edge is much more
    /// likely to have the service cached or even running already" (§IV-A2).
    pub prewarm_sites: Option<Vec<usize>>,
    /// Mean time between instance crashes across the whole run (fault
    /// injection); `None` = no crashes (the paper's setting).
    pub crash_mtbf: Option<SimDuration>,
    /// Kubernetes control-plane latency knobs; `None` = the calibrated EGS
    /// defaults. Used by the "what makes K8s slow" ablation.
    pub k8s_timings: Option<K8sTimings>,
    /// Proactive pre-deployment predictor (paper §VII outlook).
    pub predictor: PredictorKind,
    /// How often the predictor runs, and how far ahead it looks.
    pub predict_interval: SimDuration,
    pub controller: ControllerConfig,
    /// Number of Raspberry Pi clients.
    pub clients: usize,
    /// Flow entries installed on the switch before the run starts — operator
    /// pre-provisioning (static routes, policy rules). `edgesim verify`
    /// audits them against the controller's own installs.
    pub seed_flows: Vec<FlowSpec>,
    /// Controller federation (shard count, gossip link, leases). The default
    /// single-shard mesh leaves every existing scenario untouched.
    pub mesh: MeshParams,
    /// The workload engine's description of the generated traffic: arrival
    /// model, service mix, model knobs and client mobility (the `workload:`
    /// scenario block). The default replays the paper's bigFlows trace
    /// byte-identically. `mix.clients` is overridden by `clients` at
    /// generation time (see `generate_workload`).
    pub workload: workload::WorkloadConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            service: ServiceKind::Nginx,
            backends: vec![ClusterKind::Docker],
            sites: Vec::new(),
            scheduler: SchedulerSpec::default(),
            private_registry: false,
            phase_setup: PhaseSetup::Created,
            prewarm_sites: None,
            crash_mtbf: None,
            k8s_timings: None,
            predictor: PredictorKind::None,
            predict_interval: SimDuration::from_secs(5),
            // Evaluation defaults: no idle scale-down within a five-minute
            // run (the paper observes exactly 42 deployments, i.e. none of
            // the services is scaled down and redeployed inside the window).
            controller: ControllerConfig {
                memory_idle_timeout: SimDuration::from_secs(600),
                scale_down_idle: false,
                ..ControllerConfig::default()
            },
            clients: 20,
            seed_flows: Vec::new(),
            mesh: MeshParams::default(),
            workload: workload::WorkloadConfig::default(),
        }
    }
}

impl ScenarioConfig {
    pub fn with_service(mut self, service: ServiceKind) -> Self {
        self.service = service;
        self
    }

    pub fn with_backend(mut self, backend: ClusterKind) -> Self {
        self.backends = vec![backend];
        self
    }

    pub fn with_phase(mut self, phase: PhaseSetup) -> Self {
        self.phase_setup = phase;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The edge sites this scenario runs on: explicit `sites` if set, else
    /// one EGS-class site per entry of `backends` (the paper's layout).
    pub fn resolved_sites(&self) -> Vec<(SiteSpec, ClusterKind)> {
        if !self.sites.is_empty() {
            return self.sites.clone();
        }
        self.backends
            .iter()
            .enumerate()
            .map(|(i, &kind)| (SiteSpec::egs(format!("egs-{i}")), kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = ScenarioConfig::default();
        assert_eq!(c.clients, 20);
        assert_eq!(c.backends, vec![ClusterKind::Docker]);
        assert!(!c.controller.scale_down_idle);
    }

    #[test]
    fn builder_chains() {
        let c = ScenarioConfig::default()
            .with_service(ServiceKind::ResNet)
            .with_backend(ClusterKind::Kubernetes)
            .with_phase(PhaseSetup::Cold)
            .with_seed(9);
        assert_eq!(c.service, ServiceKind::ResNet);
        assert_eq!(c.backends, vec![ClusterKind::Kubernetes]);
        assert_eq!(c.phase_setup, PhaseSetup::Cold);
        assert_eq!(c.seed, 9);
    }
}
