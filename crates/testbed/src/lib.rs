//! # testbed — the simulated Carinthian Computing Continuum (C³)
//!
//! Paper §VI evaluates on a real testbed: an Edge Gateway Server (EGS)
//! running the SDN controller, a virtual OVS switch, a Kubernetes cluster and
//! Docker; clients on 20 Raspberry Pis; a layer-3 switch connecting them; the
//! cloud reachable over the WAN (Fig. 8). This crate reproduces that setup as
//! one deterministic event loop:
//!
//! * [`topology`] — the C³ network graph and the switch port map,
//! * [`scenario`] — run configuration (service type, backend(s), scheduler
//!   policy, registry setup, pre-warm level) mirroring the paper's test
//!   matrix,
//! * [`sim`] — the event loop: client SYNs traverse the OpenFlow switch,
//!   table misses reach the controller (with control-channel latency), the
//!   controller deploys / redirects / holds, released packets complete as
//!   flow-level TCP exchanges measured with timecurl semantics.

pub mod config;
pub mod fabric;
pub mod scenario;
pub mod sim;
pub mod topology;

pub use config::scenario_from_yaml;
pub use edgectl::{SchedulerRegistry, SchedulerSpec};
pub use fabric::{run_mobility, FabricConfig, FabricResult};
pub use scenario::{MeshParams, PhaseSetup, PredictorKind, ScenarioConfig};
pub use sim::{
    generate_workload, measure_first_request, run_bigflows, run_bigflows_audited,
    run_trace_scenario, AllocProfile, AuditReport, RunResult, Testbed,
};
pub use topology::{C3Topology, SiteSpec, CLOUD_PORT, DOCKER_PORT, K8S_PORT};
