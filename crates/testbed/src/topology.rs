//! The C³ evaluation topology (paper Fig. 8).
//!
//! One OVS switch connects: the EGS (10 Gbps; hosts the controller, the
//! Docker "cluster" and the Kubernetes cluster), 20 Raspberry Pi clients
//! (1 Gbps), and the WAN uplink to the cloud. The SDN control channel between
//! switch and controller is local (both run on the EGS).

use cluster::SiteCapacity;
use simcore::SimDuration;
use simnet::openflow::PortId;
use simnet::topology::{NodeId, NodeKind, Topology};
use simnet::IpAddr;

/// Switch port toward the cloud/WAN.
pub const CLOUD_PORT: PortId = PortId(0);
/// Switch port toward the EGS host for the Docker backend, in the standard
/// two-site layout built by [`C3Topology::build`].
pub const DOCKER_PORT: PortId = PortId(1);
/// Switch port toward the EGS host for the Kubernetes backend, in the
/// standard two-site layout.
pub const K8S_PORT: PortId = PortId(2);

const GBPS: u64 = 1_000_000_000;

/// The hardware class of an edge site's host (paper §VI: the EGS is a
/// Threadripper-class x86, the other edge nodes are Raspberry Pi 4Bs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// The Edge Gateway Server: 12 cores, 32 GiB, 10 Gbps.
    Egs,
    /// A Raspberry Pi 4B: 4 cores, 4 GiB, 1 Gbps, ~3.5x slower containerd.
    RaspberryPi,
}

/// Where one edge cluster lives in the network: its host class and its
/// distance from the ingress switch. Hierarchical continuums (paper §IV-A2:
/// "clusters in close vicinity of the users tend to be smaller, with cluster
/// size and performance growing when further away") are lists of these.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    pub name: String,
    pub class: NodeClass,
    /// One-way latency switch → site host.
    pub latency: SimDuration,
    pub bandwidth_bps: u64,
    /// How many physical nodes of this class back the cluster; the site's
    /// capacity scales linearly (the paper's C³ has 35 Raspberry Pis behind
    /// the edge layer). Modelled as one aggregate runtime.
    pub nodes: usize,
    /// Schedulable resources the controller's admission control enforces.
    /// [`SiteCapacity::UNLIMITED`] (the default) reproduces the paper's
    /// capacity-blind behaviour byte-identically.
    pub capacity: SiteCapacity,
    /// Placement labels the site advertises (matched against service
    /// affinity/anti-affinity requirements).
    pub labels: Vec<String>,
}

impl SiteSpec {
    /// The standard EGS site (sub-millisecond, 10 Gbps).
    pub fn egs(name: impl Into<String>) -> SiteSpec {
        SiteSpec {
            name: name.into(),
            class: NodeClass::Egs,
            latency: SimDuration::from_micros(80),
            bandwidth_bps: 10 * GBPS,
            nodes: 1,
            capacity: SiteCapacity::UNLIMITED,
            labels: Vec::new(),
        }
    }

    /// A Raspberry-Pi-class near edge at a given distance.
    pub fn pi(name: impl Into<String>, latency: SimDuration) -> SiteSpec {
        SiteSpec {
            name: name.into(),
            class: NodeClass::RaspberryPi,
            latency,
            bandwidth_bps: GBPS,
            nodes: 8,
            capacity: SiteCapacity::UNLIMITED,
            labels: Vec::new(),
        }
    }

    /// Override the number of backing nodes.
    pub fn with_nodes(mut self, nodes: usize) -> SiteSpec {
        self.nodes = nodes;
        self
    }

    /// Declare a finite schedulable capacity for this site.
    pub fn with_capacity(mut self, capacity: SiteCapacity) -> SiteSpec {
        self.capacity = capacity;
        self
    }

    /// Advertise placement labels on this site.
    pub fn with_labels(mut self, labels: impl IntoIterator<Item = impl Into<String>>) -> SiteSpec {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }
}

/// The built topology plus the lookups the event loop needs.
#[derive(Debug)]
pub struct C3Topology {
    pub net: Topology,
    pub switch: NodeId,
    pub cloud: NodeId,
    /// One host node per edge site, in site order (switch port `1 + i`).
    pub site_hosts: Vec<NodeId>,
    /// IP each site's cluster binds its service ports on.
    pub site_ips: Vec<IpAddr>,
    pub sites: Vec<SiteSpec>,
    pub clients: Vec<NodeId>,
    /// IPs assigned to the Pi clients, indexed like `clients`.
    pub client_ips: Vec<IpAddr>,
}

impl C3Topology {
    /// The standard evaluation network (paper Fig. 8): both backends on the
    /// EGS, `n_clients` Raspberry Pis. Site 0 answers on [`DOCKER_PORT`],
    /// site 1 on [`K8S_PORT`].
    pub fn build(n_clients: usize) -> C3Topology {
        C3Topology::build_sites(&[SiteSpec::egs("egs-a"), SiteSpec::egs("egs-b")], n_clients)
    }

    /// Build a network with an arbitrary list of edge sites (hierarchical
    /// continuum scenarios).
    pub fn build_sites(sites: &[SiteSpec], n_clients: usize) -> C3Topology {
        assert!(!sites.is_empty(), "at least one edge site");
        let mut net = Topology::new();
        let switch = net.add_node("ovs", NodeKind::Switch);
        let cloud = net.add_node("cloud", NodeKind::Cloud);
        // WAN to the cloud: tens of ms.
        net.add_link(switch, cloud, SimDuration::from_millis(25), GBPS);

        let mut site_hosts = Vec::with_capacity(sites.len());
        let mut site_ips = Vec::with_capacity(sites.len());
        for (i, site) in sites.iter().enumerate() {
            let node = net.add_node(site.name.clone(), NodeKind::Host);
            net.add_link(switch, node, site.latency, site.bandwidth_bps);
            site_hosts.push(node);
            site_ips.push(IpAddr::new(10, 0, i as u8, 100));
        }

        let mut clients = Vec::with_capacity(n_clients);
        let mut client_ips = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let node = net.add_node(format!("pi{i:02}"), NodeKind::Host);
            net.add_link(node, switch, SimDuration::from_micros(200), GBPS);
            clients.push(node);
            // 250 clients per /24 so city-scale client counts stay unique
            // (identical to the historical 10.1.0.x layout for i < 250).
            client_ips.push(IpAddr::new(10, 1, (i / 250) as u8, (i % 250 + 1) as u8));
        }

        C3Topology {
            net,
            switch,
            cloud,
            site_hosts,
            site_ips,
            sites: sites.to_vec(),
            clients,
            client_ips,
        }
    }

    /// Switch port of edge site `i`.
    pub fn site_port(&self, i: usize) -> PortId {
        PortId(1 + i)
    }

    /// First client port; client `i` sits on `client_port_base() + i`.
    pub fn client_port_base(&self) -> usize {
        1 + self.site_hosts.len()
    }

    /// Switch port for client `i`.
    pub fn client_port(&self, i: usize) -> PortId {
        PortId(self.client_port_base() + i)
    }

    /// The site a switch port leads to, if it is a site port.
    pub fn site_of_port(&self, port: PortId) -> Option<usize> {
        (port != CLOUD_PORT && port.0 <= self.site_hosts.len()).then(|| port.0 - 1)
    }

    /// Total number of switch ports (cloud + sites + clients).
    pub fn port_count(&self) -> usize {
        self.client_port_base() + self.clients.len()
    }

    /// One-way latency client → switch.
    pub fn client_switch_latency(&self, i: usize) -> SimDuration {
        self.net
            .latency(self.clients[i], self.switch)
            .expect("client is attached")
    }

    /// One-way latency switch → site `i`.
    pub fn switch_site_latency(&self, i: usize) -> SimDuration {
        self.net
            .latency(self.switch, self.site_hosts[i])
            .expect("site attached")
    }

    /// One-way latency switch → cloud.
    pub fn switch_cloud_latency(&self) -> SimDuration {
        self.net
            .latency(self.switch, self.cloud)
            .expect("cloud attached")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_shape() {
        let c3 = C3Topology::build(20);
        assert_eq!(c3.clients.len(), 20);
        assert_eq!(c3.client_ips.len(), 20);
        assert_eq!(c3.site_hosts.len(), 2);
        assert_eq!(c3.port_count(), 23);
        assert_eq!(c3.net.node_count(), 24); // switch + cloud + 2 sites + 20 pis
                                             // every client reaches both sites through the switch
        for i in 0..20 {
            for &host in &c3.site_hosts {
                let p = c3.net.path(c3.clients[i], host).unwrap();
                assert_eq!(p.hops.len(), 3);
                assert!(p.latency < SimDuration::from_millis(1));
            }
        }
        // cloud is an order of magnitude farther
        assert!(c3.switch_cloud_latency() > c3.switch_site_latency(0) * 100);
        // standard port constants hold in this layout
        assert_eq!(c3.site_port(0), DOCKER_PORT);
        assert_eq!(c3.site_port(1), K8S_PORT);
    }

    #[test]
    fn client_ports_distinct_and_after_sites() {
        let c3 = C3Topology::build(5);
        let mut ports: Vec<usize> = (0..5).map(|i| c3.client_port(i).0).collect();
        ports.dedup();
        assert_eq!(ports.len(), 5);
        assert!(ports.iter().all(|&p| p >= c3.client_port_base()));
    }

    #[test]
    fn hierarchical_sites_ordered_by_distance() {
        let sites = vec![
            SiteSpec::pi("near-edge", SimDuration::from_micros(300)),
            SiteSpec::egs("mid-edge"),
            SiteSpec {
                latency: SimDuration::from_millis(8),
                ..SiteSpec::egs("far-edge")
            },
        ];
        let c3 = C3Topology::build_sites(&sites, 4);
        assert_eq!(c3.site_hosts.len(), 3);
        assert!(
            c3.switch_site_latency(0) < c3.switch_site_latency(1) + SimDuration::from_micros(300)
        );
        assert!(c3.switch_site_latency(2) > c3.switch_site_latency(1));
        assert!(c3.switch_cloud_latency() > c3.switch_site_latency(2));
        // distinct IPs per site
        assert_ne!(c3.site_ips[0], c3.site_ips[1]);
        assert_ne!(c3.site_ips[1], c3.site_ips[2]);
    }

    #[test]
    fn site_of_port_maps_back() {
        let c3 = C3Topology::build_sites(
            &[SiteSpec::egs("a"), SiteSpec::egs("b"), SiteSpec::egs("c")],
            2,
        );
        assert_eq!(c3.site_of_port(CLOUD_PORT), None);
        assert_eq!(c3.site_of_port(c3.site_port(0)), Some(0));
        assert_eq!(c3.site_of_port(c3.site_port(2)), Some(2));
        assert_eq!(c3.site_of_port(c3.client_port(0)), None);
    }
}
