//! A *distributed* edge fabric: several ingress switches in a chain, one edge
//! site per switch, the cloud behind switch 0 — and clients that may roam
//! between switches mid-run.
//!
//! This exercises what the single-switch C³ testbed cannot: the controller
//! instructing "the switch(es)" (paper §II/Fig. 2), per-ingress nearest-site
//! decisions, cross-switch packet forwarding over trunk links, and the
//! Follow-Me-Edge behaviour of the related work (\[12\], \[13\]): after a client
//! roams, its requests enter at the new switch, the Dispatcher's location
//! tracking updates, and the scheduler redirects it to the site nearest to
//! its *new* position — deploying there on demand if needed.
//!
//! Port layout per switch in the chain:
//!
//! | port | meaning |
//! |------|---------|
//! | 0    | uplink: the cloud (switch 0) or the trunk toward switch s−1 |
//! | 1    | downlink trunk toward switch s+1 (unused on the last switch) |
//! | 2    | the local edge site |
//! | 3+i  | local client i |

use std::collections::HashMap;

use cluster::{ClusterBackend, DockerCluster};
use containers::Runtime;
use edgectl::{
    Controller, ControllerConfig, ControllerOutput, NearestWaiting, RoundRobinLocal, SwitchId,
};
use simcore::{EventQueue, Percentiles, SimDuration, SimRng, SimTime};
use simnet::openflow::{Action, BufferId, FlowMatch, FlowSpec, PacketVerdict, PortId, Switch};
use simnet::{IpAddr, Packet, SocketAddr, TcpModel};
use workload::client::RequestRecord;
use workload::ServiceProfile;

const UPLINK: PortId = PortId(0);
const DOWNLINK: PortId = PortId(1);
const SITE_PORT: PortId = PortId(2);
const CLIENT_PORT_BASE: usize = 3;
const CTRL_LATENCY: SimDuration = SimDuration::from_micros(150);
const GBPS: u64 = 1_000_000_000;

/// Configuration of a mobility run.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    pub seed: u64,
    /// Number of chained switches (== number of edge sites).
    pub switches: usize,
    pub clients_per_switch: usize,
    /// Latency of each inter-switch trunk (one way).
    pub trunk_latency: SimDuration,
    /// Request interval per client.
    pub request_interval: SimDuration,
    /// Run duration.
    pub duration: SimDuration,
    /// If set, every client of switch 0 roams to the last switch at this
    /// instant (relative to run start).
    pub roam_at: Option<SimDuration>,
    pub controller: ControllerConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            seed: 1,
            switches: 2,
            clients_per_switch: 4,
            trunk_latency: SimDuration::from_millis(3),
            request_interval: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(120),
            roam_at: Some(SimDuration::from_secs(60)),
            controller: ControllerConfig {
                memory_idle_timeout: SimDuration::from_secs(600),
                scale_down_idle: false,
                ..ControllerConfig::default()
            },
        }
    }
}

/// Result of a mobility run.
#[derive(Debug)]
pub struct FabricResult {
    pub records: Vec<RequestRecord>,
    pub deployments: Vec<edgectl::DeploymentRecord>,
    pub lost: u64,
    /// Deployments per site (cluster index).
    pub deployments_per_site: Vec<usize>,
    /// Median time_total before / after the roam instant (ms; NaN if empty).
    pub median_before_ms: f64,
    pub median_after_ms: f64,
}

enum Ev {
    /// A packet arrives at a switch (hops guards against forwarding loops).
    PacketAtSwitch {
        sw: usize,
        packet: Packet,
        hops: u8,
    },
    CtrlPacketIn {
        sw: usize,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    },
    ApplyOutput {
        output: ControllerOutput,
    },
    /// The controller asked to be woken (deployment machine steps, retarget
    /// drains, housekeeping — its `next_wakeup`/`on_wakeup` surface).
    Wakeup,
}

struct InFlight {
    started: SimTime,
    syn_at_switch: SimTime,
    client: usize,
    /// Ingress switch at send time.
    ingress: usize,
}

/// Run the mobility scenario: one (Nginx-class) service, clients requesting
/// it periodically, optional mid-run roam of switch-0 clients to the last
/// switch.
pub fn run_mobility(cfg: FabricConfig) -> FabricResult {
    assert!(cfg.switches >= 2, "a fabric needs at least two switches");
    let rng = SimRng::seed_from_u64(cfg.seed);
    let profile = ServiceProfile::of(workload::ServiceKind::Nginx);
    let registries = workload::services::standard_registries(false);
    let service_addr = SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80);

    // --- controller with one Docker site per switch ---
    let mut controller = Controller::builder(cfg.controller.clone())
        .global(NearestWaiting)
        .local(RoundRobinLocal::default())
        .registries(registries)
        .cloud_port(UPLINK) // cloud behind switch 0's uplink
        .build();
    let site_latency = SimDuration::from_micros(80);
    // Distance from switch s to site j: hops over the chain.
    let dist = |s: usize, j: usize| -> SimDuration {
        let hops = s.abs_diff(j) as u64;
        site_latency + cfg.trunk_latency * hops
    };
    for j in 0..cfg.switches {
        let backend: Box<dyn ClusterBackend> = Box::new(DockerCluster::new(
            format!("site-{j}"),
            IpAddr::new(10, 0, j as u8, 100),
            Runtime::egs(rng.stream(&format!("rt-{j}"))),
            rng.stream(&format!("docker-{j}")),
        ));
        // attach_cluster covers switch 0's view of site j.
        let port0 = if j == 0 { SITE_PORT } else { DOWNLINK };
        controller.attach_cluster(backend, dist(0, j), port0);
    }
    for s in 1..cfg.switches {
        let ports: Vec<(PortId, SimDuration)> = (0..cfg.switches)
            .map(|j| {
                let port = if j == s {
                    SITE_PORT
                } else if j < s {
                    UPLINK
                } else {
                    DOWNLINK
                };
                (port, dist(s, j))
            })
            .collect();
        controller.add_switch(UPLINK, ports);
    }
    controller
        .catalog
        .register(service_addr, profile.template.clone());

    // --- switches with static topology routes ---
    let port_count = CLIENT_PORT_BASE + cfg.clients_per_switch;
    let mut switches: Vec<Switch> = (0..cfg.switches).map(|_| Switch::new(port_count)).collect();
    for (s, sw) in switches.iter_mut().enumerate() {
        for j in 0..cfg.switches {
            let port = if j == s {
                SITE_PORT
            } else if j < s {
                UPLINK
            } else {
                DOWNLINK
            };
            // route rewritten packets (dst = site address) toward site j
            let matcher = FlowMatch {
                dst_ip: Some(IpAddr::new(10, 0, j as u8, 100)),
                ..FlowMatch::default()
            };
            sw.flow_mod(
                SimTime::ZERO,
                FlowSpec::new(matcher)
                    .priority(1)
                    .action(Action::Output(port))
                    .cookie(0xF0 + j as u64),
            );
        }
    }

    // --- client placement and request schedule ---
    let total_clients = cfg.switches * cfg.clients_per_switch;
    let client_ip = |c: usize| IpAddr::new(10, 1, (c / 250) as u8, (c % 250 + 1) as u8);
    let home_switch = |c: usize| c / cfg.clients_per_switch;
    let client_switch_at = |c: usize, t: SimTime| -> usize {
        match cfg.roam_at {
            Some(roam) if home_switch(c) == 0 && t >= SimTime::ZERO + roam => cfg.switches - 1,
            _ => home_switch(c),
        }
    };
    let client_link = SimDuration::from_micros(200);

    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut in_flight: HashMap<u64, InFlight> = HashMap::new();
    let mut tag = 0u64;
    let mut schedule_rng = rng.stream("schedule");
    for c in 0..total_clients {
        // Jittered periodic requests over the window.
        let mut t = SimTime::ZERO
            + SimDuration::from_secs_f64(schedule_rng.f64() * cfg.request_interval.as_secs_f64());
        while t < SimTime::ZERO + cfg.duration {
            let ingress = client_switch_at(c, t);
            let syn_at = t + client_link;
            in_flight.insert(
                tag,
                InFlight {
                    started: t,
                    syn_at_switch: syn_at,
                    client: c,
                    ingress,
                },
            );
            events.push(
                syn_at,
                Ev::PacketAtSwitch {
                    sw: ingress,
                    packet: Packet::syn(SocketAddr::new(client_ip(c), 40000), service_addr, tag),
                    hops: 0,
                },
            );
            tag += 1;
            t += cfg.request_interval;
        }
    }

    // --- event loop ---
    let mut records: Vec<RequestRecord> = Vec::new();
    let mut lost = 0u64;
    let mut server_rng = rng.stream("server");
    let roam_abs = cfg.roam_at.map(|d| SimTime::ZERO + d);
    let mut wakeup_armed: Option<SimTime> = None;

    while let Some((now, ev)) = events.pop() {
        match ev {
            Ev::PacketAtSwitch { sw, packet, hops } => {
                if hops > 8 {
                    lost += 1;
                    continue;
                }
                switches[sw].sweep(now);
                let verdict = switches[sw].receive(now, packet);
                handle_verdict(
                    now,
                    sw,
                    verdict,
                    hops,
                    &cfg,
                    &mut events,
                    &mut switches,
                    &mut in_flight,
                    &mut records,
                    &mut lost,
                    &profile,
                    &mut server_rng,
                    client_link,
                    site_latency,
                );
            }
            Ev::CtrlPacketIn {
                sw,
                packet,
                buffer_id,
                in_port,
            } => {
                let outputs =
                    controller.on_packet_in_at(now, SwitchId(sw), packet, buffer_id, in_port);
                for output in outputs {
                    events.push(output.at() + CTRL_LATENCY, Ev::ApplyOutput { output });
                }
            }
            Ev::ApplyOutput { output } => {
                let sw = output.switch().0;
                switches[sw].sweep(now);
                match output {
                    ControllerOutput::FlowMod { spec, .. } => {
                        switches[sw].flow_mod(now, spec);
                    }
                    ControllerOutput::ReleaseViaTable { buffer_id, .. } => {
                        match switches[sw].packet_out_via_table(now, buffer_id) {
                            Some(verdict) => handle_verdict(
                                now,
                                sw,
                                verdict,
                                0,
                                &cfg,
                                &mut events,
                                &mut switches,
                                &mut in_flight,
                                &mut records,
                                &mut lost,
                                &profile,
                                &mut server_rng,
                                client_link,
                                site_latency,
                            ),
                            None => lost += 1,
                        }
                    }
                    ControllerOutput::DropBuffered { buffer_id, .. } => {
                        switches[sw].discard_buffer(buffer_id);
                        lost += 1;
                    }
                    ControllerOutput::FlowDelete { matcher, .. } => {
                        switches[sw].table.delete_matching(now, &matcher);
                    }
                }
            }
            Ev::Wakeup => {
                wakeup_armed = None;
                for output in controller.on_wakeup(now) {
                    events.push(output.at() + CTRL_LATENCY, Ev::ApplyOutput { output });
                }
            }
        }
        // Keep one wakeup event armed at the controller's earliest need —
        // without this, held requests would wait on machines nobody steps.
        if let Some(at) = controller.next_wakeup() {
            let at = at.max(now);
            if wakeup_armed.is_none_or(|t| at < t) {
                events.push(at, Ev::Wakeup);
                wakeup_armed = Some(at);
            }
        }
    }

    // --- summarize ---
    let mut per_site = vec![0usize; cfg.switches];
    for d in &controller.stats.deployments {
        per_site[d.cluster.0] += 1;
    }
    let mut before = Percentiles::new();
    let mut after = Percentiles::new();
    for r in &records {
        match roam_abs {
            Some(roam) if r.started >= roam => after.record_duration(r.time_total()),
            _ => before.record_duration(r.time_total()),
        }
    }
    FabricResult {
        deployments: controller.stats.deployments.clone(),
        lost,
        deployments_per_site: per_site,
        median_before_ms: before.median(),
        median_after_ms: after.median(),
        records,
    }
}

/// Shared verdict handling for fresh arrivals and controller releases.
#[allow(clippy::too_many_arguments)]
fn handle_verdict(
    now: SimTime,
    sw: usize,
    verdict: PacketVerdict,
    hops: u8,
    cfg: &FabricConfig,
    events: &mut EventQueue<Ev>,
    _switches: &mut [Switch],
    in_flight: &mut HashMap<u64, InFlight>,
    records: &mut Vec<RequestRecord>,
    lost: &mut u64,
    profile: &ServiceProfile,
    server_rng: &mut SimRng,
    client_link: SimDuration,
    site_latency: SimDuration,
) {
    match verdict {
        PacketVerdict::Forward { packet, out_port } => {
            if out_port == SITE_PORT || (sw == 0 && out_port == UPLINK) {
                // Terminal: the local site, or the cloud behind switch 0.
                let Some(fl) = in_flight.remove(&packet.tag) else {
                    return;
                };
                let is_cloud = sw == 0 && out_port == UPLINK;
                // Path from the client's ingress to here: trunk hops.
                let trunk_hops = fl.ingress.abs_diff(sw) as u64;
                let last_leg = if is_cloud {
                    SimDuration::from_millis(25)
                } else {
                    site_latency
                };
                let one_way = client_link + cfg.trunk_latency * trunk_hops + last_leg;
                let tcp = TcpModel::new(one_way * 2, GBPS);
                let server_time = profile.server_time.sample(server_rng);
                let hold = now - fl.syn_at_switch;
                let exchange = tcp.request_response_time(
                    profile.request_bytes,
                    profile.response_bytes,
                    server_time,
                );
                records.push(RequestRecord {
                    started: fl.started,
                    finished: fl.started + hold + exchange,
                    service: 0,
                    client: fl.client,
                    triggered_deployment: hold > SimDuration::from_millis(100),
                });
            } else if out_port == UPLINK {
                events.push(
                    now + cfg.trunk_latency,
                    Ev::PacketAtSwitch {
                        sw: sw - 1,
                        packet,
                        hops: hops + 1,
                    },
                );
            } else if out_port == DOWNLINK {
                if sw + 1 >= cfg.switches {
                    *lost += 1;
                } else {
                    events.push(
                        now + cfg.trunk_latency,
                        Ev::PacketAtSwitch {
                            sw: sw + 1,
                            packet,
                            hops: hops + 1,
                        },
                    );
                }
            } else {
                // a client port: responses are modelled analytically, so a
                // request landing here means a misrouted flow
                *lost += 1;
            }
        }
        PacketVerdict::PacketIn { buffer_id, packet } => {
            // in_port: the client's port if locally attached, else the trunk
            // it came from. For PacketIns we only reach here on the client's
            // ingress switch (redirect flows handle transit), so look the
            // client up.
            let in_port = in_flight
                .get(&packet.tag)
                .map(|fl| PortId(CLIENT_PORT_BASE + fl.client % cfg.clients_per_switch))
                .unwrap_or(PortId(CLIENT_PORT_BASE));
            events.push(
                now + CTRL_LATENCY,
                Ev::CtrlPacketIn {
                    sw,
                    packet,
                    buffer_id,
                    in_port,
                },
            );
        }
        PacketVerdict::Dropped => {
            *lost += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_serves_all_requests_without_roaming() {
        let cfg = FabricConfig {
            roam_at: None,
            ..FabricConfig::default()
        };
        let expected: usize = {
            // each client sends ceil(duration/interval) requests
            let per =
                (cfg.duration.as_secs_f64() / cfg.request_interval.as_secs_f64()).ceil() as usize;
            cfg.switches * cfg.clients_per_switch * per
        };
        let result = run_mobility(cfg);
        assert_eq!(result.lost, 0, "no packets lost");
        assert!(
            (result.records.len() as i64 - expected as i64).abs() <= 8,
            "served {} of ~{expected}",
            result.records.len()
        );
        // each switch's clients are served by their local site: one
        // deployment per site
        assert_eq!(result.deployments_per_site, vec![1, 1]);
        // steady state is fast
        assert!(result.median_before_ms < 10.0);
    }

    #[test]
    fn roaming_clients_follow_to_the_nearest_site() {
        let cfg = FabricConfig::default(); // roam at 60 s
        let result = run_mobility(cfg);
        assert_eq!(result.lost, 0);
        // Both sites see deployments: site 0 for the pre-roam clients, site 1
        // for its own clients (and the roamers keep using site 1 afterwards).
        assert_eq!(result.deployments_per_site.len(), 2);
        assert_eq!(result.deployments_per_site[0], 1);
        assert_eq!(result.deployments_per_site[1], 1);
        // Post-roam requests stay edge-fast: the roamed clients are served at
        // the site local to their new switch, not hairpinned across trunks
        // (a hairpin would pay ≥ 3 trunk round trips ≈ 18 ms; local service
        // stays well under 5 ms).
        assert!(
            result.median_after_ms < 5.0,
            "post-roam median {} ms suggests hairpinning",
            result.median_after_ms
        );
        assert!(result.median_before_ms < 5.0);
        // Once settled, *every* post-roam steady-state request is local: the
        // slowest post-roam request is bounded by one deployment wait, and
        // the bulk sits below the hairpin cost.
        let after: Vec<f64> = result
            .records
            .iter()
            .filter(|r| r.started >= simcore::SimTime::ZERO + SimDuration::from_secs(70))
            .map(|r| r.time_total().as_millis_f64())
            .collect();
        assert!(!after.is_empty());
        let slow = after.iter().copied().fold(0.0_f64, f64::max);
        assert!(
            slow < 10.0,
            "late post-roam request took {slow} ms (hairpin?)"
        );
    }

    #[test]
    fn deterministic() {
        let a = run_mobility(FabricConfig::default());
        let b = run_mobility(FabricConfig::default());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn three_switch_chain_works() {
        let cfg = FabricConfig {
            switches: 3,
            roam_at: Some(SimDuration::from_secs(60)),
            ..FabricConfig::default()
        };
        let result = run_mobility(cfg);
        assert_eq!(result.lost, 0);
        assert_eq!(result.deployments_per_site.iter().sum::<usize>(), 3);
    }
}
