//! The event loop: clients, switch, controller and clusters in one
//! deterministic simulation.
//!
//! Per request, only the **first packet** (the TCP SYN) travels through the
//! OpenFlow machinery — matching reality, where subsequent packets hit the
//! installed flow in the data plane. Once the SYN is forwarded (immediately
//! on a table hit, or after the controller's decision/deployment released the
//! buffered packet), the rest of the exchange is computed with the flow-level
//! TCP model and recorded with timecurl `time_total` semantics: from the
//! client starting the connection until the full response arrived. The time
//! the SYN spent buffered at the switch (on-demand deployment *with waiting*)
//! is part of that total, exactly as the paper measures it.

use std::collections::HashSet;

use cluster::{
    ClusterBackend, ClusterKind, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate,
};
use containers::Runtime;
use edgectl::controller::INGRESS;
use edgectl::{Controller, ControllerOutput, RoundRobinLocal, SchedulerRegistry};
use edgeverify::{CoherenceView, Fabric, FabricSwitch, Link, PacketClass, Verifier, Violation};
use simcore::{EventQueue, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PacketVerdict, PortId, Switch};
use simnet::{Packet, PathCache, SocketAddr, TcpModel};
use workload::client::RequestRecord;
use workload::{ServiceProfile, Trace};

use crate::scenario::{PhaseSetup, PredictorKind, ScenarioConfig};
use crate::topology::{C3Topology, NodeClass, CLOUD_PORT};

/// Latency of the SDN control channel (switch ↔ controller, both on the EGS).
const CTRL_LATENCY: SimDuration = SimDuration::from_micros(150);

/// Events of the testbed simulation. Client SYN arrivals are *not* queued:
/// they are fed lazily from the sorted arrival index (see
/// [`Testbed::run_loop`]), so the future-event list holds only the live
/// control-plane horizon instead of the whole trace.
enum Ev {
    /// A PacketIn reaches the controller.
    CtrlPacketIn {
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    },
    /// A controller output reaches the switch.
    ApplyOutput { output: ControllerOutput },
    /// The controller asked to be woken: deployment machine steps, retarget
    /// drains, FlowMemory housekeeping and predictor runs all ride on this
    /// one event (the controller's `next_wakeup`/`on_wakeup` surface).
    Wakeup,
    /// Fault injection: crash one running instance of a random service.
    CrashTick,
    /// A mobile client hands over away from this ingress: tear down its
    /// flows so the next request re-runs the Dispatcher.
    Handover { client: u32 },
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Completed requests, in completion order.
    pub records: Vec<RequestRecord>,
    /// All on-demand deployments the controller performed.
    pub deployments: Vec<edgectl::DeploymentRecord>,
    /// Requests whose packet was dropped (deployment failed / flow raced).
    pub lost: u64,
    pub switch_stats: simnet::openflow::SwitchStats,
    pub memory_hits: u64,
    pub cloud_forwards: u64,
    pub held_requests: u64,
    pub detoured_requests: u64,
    pub scale_downs: u64,
    /// Services fully removed after prolonged idleness (Fig. 4 Remove).
    /// Surfaced for the bench reports; deliberately NOT part of
    /// [`RunResult::metrics_trace`] so pinned hashes stay stable.
    pub removes: u64,
    /// Scheduler decisions refused by admission control (site out of
    /// capacity / labels unmet). Like `removes`, surfaced for the bench
    /// reports and deliberately NOT part of [`RunResult::metrics_trace`]:
    /// the default unlimited capacities keep pinned hashes byte-identical.
    pub admission_rejections: u64,
    /// Bookings that pushed a site past its declared capacity — the bench
    /// gates on this staying zero.
    pub capacity_violations: u64,
    pub retargets: u64,
    /// Client handovers processed (flow teardowns for departing clients).
    /// In [`RunResult::metrics_trace`] only when non-zero, so static-client
    /// pinned hashes stay byte-identical.
    pub handovers: u64,
    pub proactive_deployments: u64,
    /// Instances killed by fault injection.
    pub crashes_injected: u64,
    /// Instant the trace's t=0 was mapped to (after pre-warm setup).
    pub trace_offset: SimDuration,
    /// Total events the run scheduled (engine diagnostic; lazily fed SYN
    /// arrivals count like queue pushes so the figure matches an eager loop).
    pub events_scheduled: u64,
    /// High-water mark of the future-event list (engine diagnostic).
    pub peak_queue_depth: usize,
    /// Per-phase heap-allocation counts (populated when the
    /// `counting-alloc` feature is on; `None` otherwise).
    pub alloc_profile: Option<AllocProfile>,
}

/// Heap allocations attributed to each phase of a trace run, measured with
/// the workspace-wide counting allocator (feature `counting-alloc`). The
/// `event_loop` lane is the numerator of the pinned allocs/request budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocProfile {
    /// Cluster pre-warm per the scenario's [`PhaseSetup`].
    pub prewarm: u64,
    /// Predictor/crash-schedule arming plus request-lane construction.
    pub schedule: u64,
    /// The event loop itself — every allocation between the first and last
    /// simulated event.
    pub event_loop: u64,
}

impl RunResult {
    /// `time_total` values in milliseconds, in trace order.
    pub fn time_totals_ms(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.time_total().as_millis_f64())
            .collect()
    }

    /// Median `time_total` over all requests (ms).
    pub fn median_time_total_ms(&self) -> f64 {
        let mut p = simcore::Percentiles::new();
        for r in &self.records {
            p.record_duration(r.time_total());
        }
        p.median()
    }

    /// Median `time_total` over deployment-triggering requests only (ms).
    pub fn median_first_request_ms(&self) -> f64 {
        let mut p = simcore::Percentiles::new();
        for r in self.records.iter().filter(|r| r.triggered_deployment) {
            p.record_duration(r.time_total());
        }
        p.median()
    }

    /// Stream the canonical metrics text into any [`std::fmt::Write`] sink —
    /// the one formatter behind both [`RunResult::metrics_trace`] (a `String`
    /// for dumps/diffs) and [`RunResult::metrics_hash`] (a streaming FNV
    /// state, so hashing never materializes the multi-hundred-MB trace).
    fn write_metrics<W: std::fmt::Write>(&self, out: &mut W) {
        let _ = writeln!(
            out,
            "lost={} memory_hits={} cloud_forwards={} held={} detoured={} \
             scale_downs={} retargets={} proactive={} crashes={} offset_ns={}",
            self.lost,
            self.memory_hits,
            self.cloud_forwards,
            self.held_requests,
            self.detoured_requests,
            self.scale_downs,
            self.retargets,
            self.proactive_deployments,
            self.crashes_injected,
            self.trace_offset.as_nanos(),
        );
        if self.handovers > 0 {
            let _ = writeln!(out, "handovers={}", self.handovers);
        }
        let _ = writeln!(out, "switch={:?}", self.switch_stats);
        for d in &self.deployments {
            let _ = writeln!(out, "deploy={d:?}");
        }
        for r in &self.records {
            let _ = writeln!(
                out,
                "req started={} finished={} service={} client={} triggered={}",
                r.started.as_nanos(),
                r.finished.as_nanos(),
                r.service,
                r.client,
                r.triggered_deployment,
            );
        }
    }

    /// Canonical textual trace of everything the run *measured* — the
    /// determinism artifact. Two runs are behaviourally identical iff this
    /// string is byte-identical. Engine-internal diagnostics (events
    /// scheduled, peak queue depth) are deliberately excluded so the trace
    /// is comparable across event-core implementations.
    pub fn metrics_trace(&self) -> String {
        let mut out = String::with_capacity(64 * self.records.len() + 1024);
        self.write_metrics(&mut out);
        out
    }

    /// FNV-1a over [`RunResult::metrics_trace`] — the drift gate used by the
    /// determinism regression test and the `cityscale` benchmark. Streams
    /// the formatter's bytes straight into the hash state (no intermediate
    /// `String`), which is byte-equivalent because `fmt::Write` delivers the
    /// identical byte sequence either way (see `simcore::FnvStream`).
    pub fn metrics_hash(&self) -> u64 {
        let mut h = simcore::FnvStream::new();
        self.write_metrics(&mut h);
        h.finish()
    }
}

/// What `Testbed::run_trace_audited` found: the static verifier's view of
/// every flow install the controller performed plus the final data-plane /
/// control-plane state.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Violations raised while rules were being installed (including the
    /// scenario's pre-provisioned `seed_flows`), deduplicated by message —
    /// re-installed redirects produce fresh `FlowId`s but the same finding.
    pub install_violations: Vec<Violation>,
    /// Violations in the final state: reachability over the C³ fabric for
    /// every client × service class, plus FlowMemory ↔ switch coherence.
    pub final_violations: Vec<Violation>,
    /// How many controller flow installs were checked.
    pub checked_installs: u64,
}

impl AuditReport {
    pub fn is_clean(&self) -> bool {
        self.install_violations.is_empty() && self.final_violations.is_empty()
    }

    /// All violations in report order (install-time first).
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.install_violations
            .iter()
            .chain(self.final_violations.iter())
    }
}

/// Live state of an audited run.
struct AuditState {
    verifier: Verifier,
    install_violations: Vec<Violation>,
    /// Dedup key: rendered message (stable across re-installs).
    seen: HashSet<String>,
    checked_installs: u64,
    /// Timestamp of the last processed event — "now" for the final audit.
    last_event: SimTime,
}

impl AuditState {
    fn new() -> AuditState {
        AuditState {
            verifier: Verifier::new(),
            install_violations: Vec::new(),
            seen: HashSet::new(),
            checked_installs: 0,
            last_event: SimTime::ZERO,
        }
    }

    fn record(&mut self, violations: Vec<Violation>) {
        for v in violations {
            let msg = v.to_string();
            if self.seen.insert(msg) {
                self.install_violations.push(v);
            }
        }
    }
}

/// The assembled testbed.
pub struct Testbed {
    cfg: ScenarioConfig,
    c3: C3Topology,
    switch: Switch,
    controller: Controller,
    profile: ServiceProfile,
    /// Cloud addresses of the registered services (trace order).
    service_addrs: Vec<SocketAddr>,
    /// Per-service deployable templates (trace order).
    templates: Vec<ServiceTemplate>,
    rng: SimRng,
    events: EventQueue<Ev>,
    // --- Per-request state as SoA lanes (DESIGN.md §5i), indexed by the
    // dense trace tag. The packet path touches only the lanes it needs —
    // no boxed per-request struct, no hashing.
    req_started: Vec<SimTime>,
    req_syn_at: Vec<SimTime>,
    req_service: Vec<u32>,
    req_client: Vec<u32>,
    /// Deployment machines started before this request's PacketIn — the
    /// lower bound of the window used to attribute `triggered_deployment`.
    req_machines_before: Vec<u64>,
    req_live: Vec<bool>,
    /// Lazy SYN feed: `(syn_at_switch, tag)` ascending, `arrival_next` the
    /// cursor. Future SYNs never enter the event queue, so its depth tracks
    /// the live control-plane horizon instead of the whole trace.
    arrivals: Vec<(SimTime, u32)>,
    arrival_next: usize,
    /// Queue seq watermark captured right before the run starts: an entry
    /// with `seq >= runtime_seq_floor` was pushed *during* the run and loses
    /// same-instant ties against a fed SYN (the eager loop pushed all SYNs
    /// first), while setup-time pushes (crash ticks, the initial predictor
    /// wakeup) keep winning them.
    runtime_seq_floor: u64,
    /// SYNs delivered from `arrivals`, counted into `events_scheduled` so
    /// the diagnostic matches the eager loop's accounting.
    fed_arrivals: u64,
    /// Memoized routing queries over the (immutable after build) fabric;
    /// saves a Dijkstra per completed request.
    paths: PathCache,
    records: Vec<RequestRecord>,
    /// Requests whose `triggered_deployment` flag depends on a machine that
    /// may still be in flight at completion time: `(record index, lo, hi)`
    /// machine-ordinal windows, resolved against the dispatcher's completion
    /// log in [`Testbed::finish`].
    triggered_windows: Vec<(usize, u64, u64)>,
    lost: u64,
    crashes_injected: u64,
    /// Earliest armed controller wakeup (one outstanding event is enough —
    /// `on_wakeup` is idempotent and re-arms from the authoritative
    /// `next_wakeup`).
    wakeup_armed: Option<SimTime>,
    /// `Some` while a `run_trace_audited` run checks every flow install.
    audit: Option<AuditState>,
    /// Single-server FIFO queue per (service, serving port): the instant the
    /// instance frees up. Requests arriving while it is busy wait in line —
    /// that is what actually happens inside one nginx/TF-Serving instance.
    /// Dense lanes: `service * busy_stride` is the cloud port, `+ 1 + site`
    /// the site ports (`SimTime::ZERO` = idle).
    busy: Vec<SimTime>,
    busy_stride: usize,
    /// Reused buffer for controller outputs — the event loop's only `Vec`,
    /// drained and put back after every controller call.
    outputs_scratch: Vec<ControllerOutput>,
    /// Per-phase allocation counts of the last `run_trace` (populated when
    /// the `counting-alloc` feature is on).
    alloc_profile: Option<AllocProfile>,
    /// Test-only: disable the same-instant PacketIn batch drain and process
    /// one event per loop iteration — the reference schedule the batched
    /// path must match byte-for-byte (`tests/batching_equivalence.rs`).
    #[doc(hidden)]
    pub debug_unbatched: bool,
    /// Test-only mutation: process each same-instant PacketIn batch in
    /// reverse order. Exists to prove the equivalence property can fail.
    #[doc(hidden)]
    pub debug_reverse_batches: bool,
}

impl Testbed {
    /// Build the testbed for `cfg`, registering `n_services` instances of the
    /// configured service type at the given cloud addresses.
    pub fn build(cfg: ScenarioConfig, service_addrs: Vec<SocketAddr>) -> Testbed {
        let rng = SimRng::seed_from_u64(cfg.seed);
        let sites = cfg.resolved_sites();
        let c3 = C3Topology::build_sites(
            &sites.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
            cfg.clients,
        );
        let mut switch = Switch::new(c3.port_count());
        let registries = workload::services::standard_registries(cfg.private_registry);
        let profile = ServiceProfile::of(cfg.service);

        let global = SchedulerRegistry::builtin()
            .create(&cfg.scheduler)
            .unwrap_or_else(|e| panic!("scenario scheduler: {e}"));
        let mut controller = Controller::builder(cfg.controller.clone())
            .global(global)
            .local(RoundRobinLocal::default())
            .registries(registries)
            .cloud_port(CLOUD_PORT)
            .build();

        for (i, (spec, kind)) in sites.iter().enumerate() {
            let nodes = spec.nodes.max(1) as u32;
            let runtime = match spec.class {
                NodeClass::Egs => Runtime::new(
                    containers::CostModel::egs(),
                    rng.stream_indexed("rt", i),
                    12_000 * nodes,
                    32 * (1u64 << 30) * nodes as u64,
                ),
                NodeClass::RaspberryPi => Runtime::new(
                    containers::CostModel::raspberry_pi(),
                    rng.stream_indexed("rt", i),
                    4_000 * nodes,
                    4 * (1u64 << 30) * nodes as u64,
                ),
            };
            let ip = c3.site_ips[i];
            let backend: Box<dyn ClusterBackend> = match kind {
                ClusterKind::Docker => Box::new(DockerCluster::new(
                    format!("{}-docker", spec.name),
                    ip,
                    runtime,
                    rng.stream_indexed("docker", i),
                )),
                ClusterKind::Kubernetes => Box::new(K8sCluster::new(
                    format!("{}-k8s", spec.name),
                    ip,
                    runtime,
                    rng.stream_indexed("k8s", i),
                    cfg.k8s_timings.clone().unwrap_or_else(K8sTimings::egs),
                )),
                ClusterKind::Wasm => Box::new(cluster::WasmEdgeCluster::new(
                    format!("{}-wasm", spec.name),
                    ip,
                    rng.stream_indexed("wasm", i),
                    cluster::WasmTimings::egs(),
                )),
            };
            let id = controller.attach_cluster(backend, c3.switch_site_latency(i), c3.site_port(i));
            controller.configure_site(id, spec.capacity, spec.labels.clone());
        }

        // Register one service per cloud address; all are instances of the
        // same Table I service type (paper: one type per test run).
        let mut templates = Vec::with_capacity(service_addrs.len());
        for (i, addr) in service_addrs.iter().enumerate() {
            let mut template = profile.template.clone();
            template.name = format!("{}-{i:02}", profile.template.name);
            controller.catalog.register(*addr, template.clone());
            templates.push(template);
        }

        // Operator pre-provisioning: the scenario's seed flows go onto the
        // switch before the run starts.
        for spec in cfg.seed_flows.clone() {
            switch.flow_mod(SimTime::ZERO, spec);
        }

        // One busy lane per service × {cloud, site…} pair, sized up front
        // from the scenario metadata (a few MB even at 1000×).
        let busy_stride = 1 + c3.site_hosts.len();
        let busy = vec![SimTime::ZERO; service_addrs.len() * busy_stride];
        Testbed {
            cfg,
            c3,
            switch,
            controller,
            profile,
            service_addrs,
            templates,
            rng,
            events: EventQueue::new(),
            req_started: Vec::new(),
            req_syn_at: Vec::new(),
            req_service: Vec::new(),
            req_client: Vec::new(),
            req_machines_before: Vec::new(),
            req_live: Vec::new(),
            arrivals: Vec::new(),
            arrival_next: 0,
            runtime_seq_floor: 0,
            fed_arrivals: 0,
            paths: PathCache::new(),
            records: Vec::new(),
            triggered_windows: Vec::new(),
            lost: 0,
            crashes_injected: 0,
            wakeup_armed: None,
            audit: None,
            busy,
            busy_stride,
            outputs_scratch: Vec::new(),
            alloc_profile: None,
            debug_unbatched: false,
            debug_reverse_batches: false,
        }
    }

    /// Allocation counter snapshot (zero when `counting-alloc` is off).
    #[inline]
    fn alloc_snapshot() -> u64 {
        #[cfg(feature = "counting-alloc")]
        {
            simcore::alloc_count::total()
        }
        #[cfg(not(feature = "counting-alloc"))]
        {
            0
        }
    }

    /// Pre-size every per-request structure from the trace metadata so the
    /// event loop itself never grows them.
    fn reserve_requests(&mut self, n: usize) {
        self.req_started.reserve(n);
        self.req_syn_at.reserve(n);
        self.req_service.reserve(n);
        self.req_client.reserve(n);
        self.req_machines_before.reserve(n);
        self.req_live.reserve(n);
        self.arrivals.reserve(n);
        self.records.reserve(n);
        // The queue holds only the live horizon (SYNs are fed lazily), but
        // seeding the node slab skips the doubling ramp.
        self.events.reserve((n / 8).clamp(64, 65_536));
        // Flow rules are bounded by live client × service pairs (two rules
        // per redirect); buffers by concurrently held SYNs.
        let clients = self.c3.client_ips.len();
        self.switch.reserve(4 * clients, clients);
    }

    /// Pre-warm the pipeline per the scenario's [`PhaseSetup`] on every
    /// attached cluster. Returns the instant the setup finished.
    fn prewarm(&mut self) -> SimTime {
        let setup = self.cfg.phase_setup;
        if setup == PhaseSetup::Cold {
            return SimTime::ZERO;
        }
        let registries = workload::services::standard_registries(self.cfg.private_registry);
        let mut t_end = SimTime::ZERO;
        for c in 0..self.c3.site_hosts.len() {
            if let Some(only) = &self.cfg.prewarm_sites {
                if !only.contains(&c) {
                    continue;
                }
            }
            let mut t = SimTime::ZERO;
            for template in self.templates.clone() {
                let cluster = self.controller.cluster_mut(edgectl::ClusterId(c));
                t = cluster
                    .pull(t, &template, &registries)
                    .expect("prewarm pull");
                if matches!(setup, PhaseSetup::Created | PhaseSetup::Running) {
                    t = cluster.create(t, &template).expect("prewarm create");
                }
                if setup == PhaseSetup::Running {
                    t = cluster
                        .scale_up(t, &template.name, 1)
                        .expect("prewarm scale-up")
                        .expected_ready;
                    // Booked like any controller-driven deployment so finite
                    // capacities account for the pre-warmed replica.
                    if let Some(sid) = self.controller.catalog.id_of(&template.name) {
                        self.controller
                            .note_external_deployment(edgectl::ClusterId(c), sid, 1);
                    }
                }
            }
            t_end = t_end.max(t);
        }
        t_end
    }

    /// Run a full trace through the testbed.
    pub fn run_trace(mut self, trace: &Trace) -> RunResult {
        let offset = self.run_trace_inner(trace);
        self.finish(offset)
    }

    /// Like [`Testbed::run_trace`], but with the `edgeverify` static checker
    /// riding along: the pre-provisioned table is audited before the run,
    /// every controller flow install is re-checked as it lands, and the final
    /// state gets a full fabric-reachability and FlowMemory-coherence pass.
    pub fn run_trace_audited(mut self, trace: &Trace) -> (RunResult, AuditReport) {
        let mut audit = AuditState::new();
        // The seed flows are already on the switch: audit the table they
        // produced before any traffic moves.
        audit.record(audit.verifier.check(&self.switch.table));
        self.audit = Some(audit);
        let offset = self.run_trace_inner(trace);
        let report = self.final_audit();
        (self.finish(offset), report)
    }

    /// Everything up to and including the event loop; returns the trace
    /// offset [`Testbed::finish`] needs.
    fn run_trace_inner(&mut self, trace: &Trace) -> SimDuration {
        assert_eq!(
            trace.service_addrs, self.service_addrs,
            "testbed must be built with the trace's addresses"
        );
        let a_start = Self::alloc_snapshot();
        let setup_end = self.prewarm();
        let a_prewarm = Self::alloc_snapshot();
        // Leave slack after setup so in-flight readiness (Running setup)
        // settles before the first request.
        let offset = (setup_end - SimTime::ZERO) + SimDuration::from_secs(5);

        // Arm the proactive predictor, if configured.
        match self.cfg.predictor {
            PredictorKind::None => {}
            PredictorKind::Popularity => {
                // Nominate generously (the controller skips services that are
                // already running or being deployed): every service whose
                // decayed score clears the threshold.
                self.controller
                    .set_predictor(Box::new(edgectl::PopularityPredictor::new(
                        SimDuration::from_secs(120),
                        usize::MAX,
                        0.4,
                    )));
            }
            PredictorKind::Oracle => {
                let schedule: Vec<(SimTime, simnet::SocketAddr)> = trace
                    .requests
                    .iter()
                    .map(|r| (r.at + offset, trace.service_addrs[r.service]))
                    .collect();
                self.controller
                    .set_predictor(Box::new(edgectl::OraclePredictor::with_schedule(schedule)));
            }
        }
        // Fault injection: exponential inter-crash times over the window.
        if let Some(mtbf) = self.cfg.crash_mtbf {
            let mut crash_rng = self.rng.stream("crash-schedule");
            let mut t = SimTime::ZERO + offset;
            let end = SimTime::ZERO + offset + trace.config.duration;
            loop {
                let gap =
                    SimDuration::from_secs_f64(-mtbf.as_secs_f64() * (1.0 - crash_rng.f64()).ln());
                t += gap;
                if t >= end {
                    break;
                }
                self.events.push(t, Ev::CrashTick);
            }
        }

        if self.cfg.predictor != PredictorKind::None {
            let first = SimTime::ZERO + offset - SimDuration::from_secs(4);
            let end = SimTime::ZERO
                + offset
                + self
                    .cfg
                    .controller
                    .probe_timeout
                    .min(SimDuration::from_secs(1))
                + trace.config.duration;
            // Look one interval plus the typical deployment time ahead so
            // instances are up before their requests arrive.
            let horizon = self.cfg.predict_interval + SimDuration::from_secs(5);
            self.controller
                .set_predict_schedule(first, self.cfg.predict_interval, end, horizon);
            // Arm the first wakeup before the SYNs enter the queue so that
            // at equal instants the predictor (like the old pre-pushed tick
            // chain) runs first.
            self.arm_wakeup(SimTime::ZERO);
        }

        // SoA request lanes plus the sorted arrival index that feeds SYNs
        // lazily into the loop (per-client propagation delays differ, so
        // switch-arrival order is not trace order; ties stay in tag order,
        // the eager loop's push order).
        self.reserve_requests(trace.requests.len());
        // Per-client access latency, one Dijkstra per *client* instead of
        // one per request (the graph is immutable after build).
        let mut client_latency = vec![SimDuration::ZERO; self.c3.client_ips.len()];
        for (c, lat) in client_latency.iter_mut().enumerate() {
            *lat = self.c3.client_switch_latency(c);
        }
        for req in &trace.requests {
            let started = req.at + offset;
            let syn_at_switch = started + client_latency[req.client];
            let tag = self.req_started.len() as u32;
            self.req_started.push(started);
            self.req_syn_at.push(syn_at_switch);
            self.req_service.push(req.service as u32);
            self.req_client.push(req.client as u32);
            self.req_machines_before.push(0);
            self.req_live.push(true);
            self.arrivals.push((syn_at_switch, tag));
        }
        self.arrivals.sort_unstable();
        // Handover events are setup-time pushes: at equal instants the
        // teardown runs before the arriving SYN, matching the mobility
        // model's boundary rule (a request at the handover instant already
        // belongs to the new ingress).
        for h in &trace.handovers {
            self.events.push(
                h.at + offset,
                Ev::Handover {
                    client: h.client as u32,
                },
            );
        }
        self.runtime_seq_floor = self.events.scheduled_total();
        let a_schedule = Self::alloc_snapshot();
        self.run_loop();
        if cfg!(feature = "counting-alloc") {
            self.alloc_profile = Some(AllocProfile {
                prewarm: a_prewarm - a_start,
                schedule: a_schedule - a_prewarm,
                event_loop: Self::alloc_snapshot() - a_schedule,
            });
        }
        offset
    }

    /// The final-state audit of an audited run: fabric reachability for every
    /// client × service class plus FlowMemory ↔ switch coherence.
    fn final_audit(&mut self) -> AuditReport {
        let audit = self.audit.take().expect("audit state enabled");
        let now = audit.last_event;

        // The C³ fabric as the verifier sees it: one switch, port 0 to the
        // cloud, one port per site, then the client access ports.
        let mut links = vec![Link::Cloud];
        links.resize(1 + self.c3.site_hosts.len(), Link::Site);
        links.resize(self.c3.port_count(), Link::Client);
        let classes = self
            .c3
            .client_ips
            .iter()
            .flat_map(|&client| {
                self.service_addrs.iter().map(move |&svc| {
                    PacketClass::client_to_service(SocketAddr::new(client, 40000), svc, 0)
                })
            })
            .collect();
        let fabric = Fabric {
            switches: vec![FabricSwitch {
                table: &self.switch.table,
                links,
            }],
            service_addrs: self.service_addrs.to_vec(),
            classes,
        };
        let mut final_violations = Vec::new();
        // `check_fabric` re-runs the per-table analyses; keep only findings
        // the install-time audit has not already reported.
        for v in audit.verifier.check_fabric(&fabric) {
            if !audit.seen.contains(&v.to_string()) {
                final_violations.push(v);
            }
        }

        let mut live_targets = HashSet::new();
        for c in 0..self.c3.site_hosts.len() {
            let cluster = self.controller.cluster(edgectl::ClusterId(c));
            for template in &self.templates {
                live_targets.extend(cluster.replica_endpoints(now, &template.name));
            }
        }
        let view = CoherenceView {
            now,
            memory: self.controller.memory(),
            tables: vec![&self.switch.table],
            live_targets,
            in_flight: self
                .controller
                .in_flight_deployments(now)
                .into_iter()
                .collect(),
        };
        final_violations.extend(audit.verifier.check_coherence(&view));

        let books: Vec<edgeverify::SiteBooks> = (0..self.c3.site_hosts.len())
            .map(|c| {
                let id = edgectl::ClusterId(c);
                (
                    c,
                    self.controller.site_capacity(id),
                    self.controller.site_allocation(id),
                )
            })
            .collect();
        final_violations.extend(audit.verifier.check_capacity(&books));

        AuditReport {
            install_violations: audit.install_violations,
            final_violations,
            checked_installs: audit.checked_installs,
        }
    }

    /// Run a single request to service 0 from client 0 (the per-figure
    /// measurement helper). Returns the run result with exactly one record.
    pub fn run_single_request(mut self) -> RunResult {
        let setup_end = self.prewarm();
        let offset = (setup_end - SimTime::ZERO) + SimDuration::from_secs(5);
        let started = SimTime::ZERO + offset;
        let syn_at_switch = started + self.c3.client_switch_latency(0);
        self.req_started.push(started);
        self.req_syn_at.push(syn_at_switch);
        self.req_service.push(0);
        self.req_client.push(0);
        self.req_machines_before.push(0);
        self.req_live.push(true);
        self.arrivals.push((syn_at_switch, 0));
        self.runtime_seq_floor = self.events.scheduled_total();
        self.run_loop();
        self.finish(offset)
    }

    fn finish(mut self, offset: SimDuration) -> RunResult {
        // Resolve deferred `triggered_deployment` verdicts: the event loop
        // has drained, so every machine in a window has completed or failed.
        for (idx, lo, hi) in std::mem::take(&mut self.triggered_windows) {
            self.records[idx].triggered_deployment = self.controller.completed_machine_in(lo, hi);
        }
        let stats = &self.controller.stats;
        RunResult {
            deployments: stats.deployments.clone(),
            lost: self.lost,
            switch_stats: self.switch.stats,
            memory_hits: stats.memory_hits,
            cloud_forwards: stats.cloud_forwards,
            held_requests: stats.held_requests,
            detoured_requests: stats.detoured_requests,
            scale_downs: stats.scale_downs,
            removes: stats.removals,
            admission_rejections: stats.admission_rejections,
            capacity_violations: stats.capacity_violations,
            retargets: stats.retargets,
            handovers: stats.handovers,
            proactive_deployments: stats.proactive_deployments,
            crashes_injected: self.crashes_injected,
            events_scheduled: self.events.scheduled_total() + self.fed_arrivals,
            peak_queue_depth: self.events.peak_len(),
            alloc_profile: self.alloc_profile,
            records: self.records,
            trace_offset: offset,
        }
    }

    fn run_loop(&mut self) {
        loop {
            // Pick the earlier of the next queued event and the next lazy
            // SYN arrival. A fed SYN behaves exactly like the eager loop's
            // pre-pushed event: it loses same-instant ties to setup-time
            // pushes (seq below the floor) and wins them against anything
            // pushed during the run.
            let take_arrival = match (
                self.arrivals.get(self.arrival_next),
                self.events.peek_time_seq(),
            ) {
                (Some(&(a, _)), Some((qt, qs))) => {
                    a < qt || (a == qt && qs >= self.runtime_seq_floor)
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let (now, tag) = self.arrivals[self.arrival_next];
                self.arrival_next += 1;
                self.fed_arrivals += 1;
                self.pre_event(now);
                self.on_syn(now, u64::from(tag));
                self.arm_wakeup(now);
                continue;
            }
            let (now, ev) = self.events.pop().expect("peeked a non-empty queue");
            self.pre_event(now);
            match ev {
                Ev::CtrlPacketIn {
                    packet,
                    buffer_id,
                    in_port,
                } => self.on_packet_in_batch(now, packet, buffer_id, in_port),
                Ev::ApplyOutput { output } => self.on_apply_output(now, output),
                Ev::Wakeup => self.on_wakeup(now),
                Ev::CrashTick => self.on_crash_tick(now),
                Ev::Handover { client } => self.on_handover(now, client as usize),
            }
            // Every event can change when the controller next needs to run
            // (a machine stepped, a flow was memorized, a crash landed), so
            // re-arm from the authoritative `next_wakeup` after each one.
            self.arm_wakeup(now);
        }
    }

    /// Per-event prologue: the lazy data-plane timeout sweep (skipped
    /// entirely while the switch reports nothing due — its expiry heap keeps
    /// an accurate top, so the check is an O(1) peek) and the audit
    /// timestamp.
    fn pre_event(&mut self, now: SimTime) {
        if self.switch.next_expiry().is_some_and(|t| t <= now) {
            self.switch.sweep_discard(now);
        }
        if let Some(audit) = &mut self.audit {
            audit.last_event = now;
        }
    }

    /// Handle a PacketIn, then drain every further PacketIn queued at the
    /// same instant — a *maximal same-time run*: the drain stops at the
    /// first event of any other kind, so interleavings with same-instant
    /// wakeups or crash ticks are preserved. Batching amortizes the sweep
    /// check and the wakeup re-arm; the only wakeups it elides are stale
    /// duplicates that are documented no-ops. Equivalence with the
    /// one-event-per-iteration schedule is enforced by
    /// `tests/batching_equivalence.rs`.
    fn on_packet_in_batch(
        &mut self,
        now: SimTime,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    ) {
        if self.debug_unbatched {
            self.on_ctrl_packet_in(now, packet, buffer_id, in_port);
            return;
        }
        if self.debug_reverse_batches {
            let mut batch = vec![(packet, buffer_id, in_port)];
            while let Some((_, ev)) = self
                .events
                .pop_if(|t, e| t == now && matches!(e, Ev::CtrlPacketIn { .. }))
            {
                let Ev::CtrlPacketIn {
                    packet,
                    buffer_id,
                    in_port,
                } = ev
                else {
                    unreachable!("pop_if predicate admitted only PacketIns")
                };
                batch.push((packet, buffer_id, in_port));
            }
            batch.reverse();
            for (packet, buffer_id, in_port) in batch {
                self.on_ctrl_packet_in(now, packet, buffer_id, in_port);
            }
            return;
        }
        self.on_ctrl_packet_in(now, packet, buffer_id, in_port);
        while let Some((_, ev)) = self
            .events
            .pop_if(|t, e| t == now && matches!(e, Ev::CtrlPacketIn { .. }))
        {
            let Ev::CtrlPacketIn {
                packet,
                buffer_id,
                in_port,
            } = ev
            else {
                unreachable!("pop_if predicate admitted only PacketIns")
            };
            self.on_ctrl_packet_in(now, packet, buffer_id, in_port);
        }
    }

    /// Deliver a due wakeup to the controller and ship its outputs.
    fn on_wakeup(&mut self, now: SimTime) {
        self.wakeup_armed = None;
        let mut out = std::mem::take(&mut self.outputs_scratch);
        self.controller.on_wakeup_into(now, &mut out);
        for output in out.drain(..) {
            self.events
                .push(output.at() + CTRL_LATENCY, Ev::ApplyOutput { output });
        }
        self.outputs_scratch = out;
    }

    /// Keep exactly one wakeup event in flight, at the earliest instant the
    /// controller reports. Stale (superseded) events are harmless: `on_wakeup`
    /// with nothing due is a no-op.
    /// The client left this ingress: forget its flows and tear down its
    /// switch entries so its next request (at whatever ingress) re-runs the
    /// Dispatcher from scratch.
    fn on_handover(&mut self, now: SimTime, client: usize) {
        let client_ip = self.c3.client_ips[client];
        let outputs = self.controller.on_client_handover(now, client_ip);
        for output in outputs {
            let at = output.at() + CTRL_LATENCY;
            self.events.push(at, Ev::ApplyOutput { output });
        }
    }

    fn arm_wakeup(&mut self, now: SimTime) {
        if let Some(at) = self.controller.next_wakeup() {
            let at = at.max(now);
            if self.wakeup_armed.is_none_or(|t| at < t) {
                self.events.push(at, Ev::Wakeup);
                self.wakeup_armed = Some(at);
            }
        }
    }

    fn on_syn(&mut self, now: SimTime, tag: u64) {
        let idx = tag as usize;
        debug_assert!(self.req_live[idx], "SYN for untracked request tag");
        let client = self.req_client[idx] as usize;
        let service = self.req_service[idx] as usize;
        let src = SocketAddr::new(self.c3.client_ips[client], 40000 + service as u16);
        let dst = self.service_addrs[service];
        let packet = Packet::syn(src, dst, tag);
        match self.switch.receive(now, packet) {
            PacketVerdict::Forward { packet, out_port } => {
                self.complete_request(now, tag, packet, out_port);
            }
            PacketVerdict::PacketIn { buffer_id, packet } => {
                let in_port = self.c3.client_port(client);
                self.events.push(
                    now + CTRL_LATENCY,
                    Ev::CtrlPacketIn {
                        packet,
                        buffer_id,
                        in_port,
                    },
                );
            }
            PacketVerdict::Dropped => {
                self.lost += 1;
                self.req_live[idx] = false;
            }
        }
    }

    fn on_ctrl_packet_in(
        &mut self,
        now: SimTime,
        packet: Packet,
        buffer_id: BufferId,
        in_port: PortId,
    ) {
        let idx = packet.tag as usize;
        if idx < self.req_live.len() && self.req_live[idx] {
            self.req_machines_before[idx] = self.controller.machines_started();
        }
        let mut out = std::mem::take(&mut self.outputs_scratch);
        self.controller
            .on_packet_in_at_into(now, INGRESS, packet, buffer_id, in_port, &mut out);
        for output in out.drain(..) {
            let at = output.at() + CTRL_LATENCY;
            self.events.push(at, Ev::ApplyOutput { output });
        }
        self.outputs_scratch = out;
    }

    fn on_apply_output(&mut self, now: SimTime, output: ControllerOutput) {
        match output {
            ControllerOutput::FlowMod { spec, .. } => {
                let id = self.switch.flow_mod(now, spec);
                if let Some(mut audit) = self.audit.take() {
                    audit.checked_installs += 1;
                    audit.record(audit.verifier.check_install(0, &self.switch.table, id));
                    self.audit = Some(audit);
                }
            }
            ControllerOutput::ReleaseViaTable { buffer_id, .. } => {
                match self.switch.packet_out_via_table(now, buffer_id) {
                    Some(PacketVerdict::Forward { packet, out_port }) => {
                        self.complete_request(now, packet.tag, packet, out_port);
                    }
                    Some(_) | None => {
                        self.lost += 1;
                    }
                }
            }
            ControllerOutput::DropBuffered { buffer_id, .. } => {
                self.switch.discard_buffer(buffer_id);
                self.lost += 1;
            }
            ControllerOutput::FlowDelete { matcher, .. } => {
                self.switch.table.delete_matching(now, &matcher);
            }
        }
    }

    /// Kill one running instance of a uniformly chosen service on a
    /// uniformly chosen cluster (if any is up).
    fn on_crash_tick(&mut self, now: SimTime) {
        let mut rng = self.rng.stream_u64(now.as_nanos());
        let cluster = edgectl::ClusterId(rng.index(self.c3.site_hosts.len()));
        let start = rng.index(self.templates.len());
        for k in 0..self.templates.len() {
            let name = self.templates[(start + k) % self.templates.len()]
                .name
                .clone();
            if self
                .controller
                .cluster_mut(cluster)
                .inject_crash(now, &name)
                .crashed()
            {
                self.crashes_injected += 1;
                return;
            }
        }
    }

    /// The SYN was forwarded at `release` towards `out_port`; compute the
    /// remainder of the exchange analytically and record timecurl's
    /// `time_total`.
    fn complete_request(&mut self, release: SimTime, tag: u64, _packet: Packet, out_port: PortId) {
        let idx = tag as usize;
        if idx >= self.req_live.len() || !self.req_live[idx] {
            return; // duplicate completion (cannot happen by construction)
        }
        self.req_live[idx] = false;
        let started = self.req_started[idx];
        let syn_at_switch = self.req_syn_at[idx];
        let service = self.req_service[idx] as usize;
        let client = self.req_client[idx] as usize;
        let machines_before = self.req_machines_before[idx];
        let (host, busy_lane) = if out_port == CLOUD_PORT {
            (self.c3.cloud, service * self.busy_stride)
        } else if let Some(site) = self.c3.site_of_port(out_port) {
            (
                self.c3.site_hosts[site],
                service * self.busy_stride + 1 + site,
            )
        } else {
            // Forwarded to a client port: a misinstalled flow. Count as
            // lost rather than fabricating a response.
            debug_assert!(
                out_port.0 >= self.c3.client_port_base(),
                "unknown port {out_port:?}"
            );
            self.lost += 1;
            return;
        };
        let (rtt, bottleneck_bps) = {
            let path = self
                .paths
                .path(&self.c3.net, self.c3.clients[client], host)
                .expect("client reaches host");
            (path.rtt(), path.bottleneck_bps)
        };
        let tcp = TcpModel::new(rtt, bottleneck_bps);
        let server_time = self.profile.server_time.sample(&mut self.rng);
        // Time the SYN spent buffered at the switch (deployment wait).
        let hold = release - syn_at_switch;
        // Queueing at the instance: the request's processing starts when the
        // instance frees up (single-server FIFO per service instance), so
        // concurrent requests to a hot service serialize on its CPU.
        let upload = tcp.connect_time() + tcp.transfer_time(self.profile.request_bytes);
        let at_server = started + hold + upload;
        let slot = &mut self.busy[busy_lane];
        let start_serving = at_server.max(*slot);
        let queue_delay = start_serving - at_server;
        *slot = start_serving + server_time;
        let exchange = tcp.request_response_time(
            self.profile.request_bytes,
            self.profile.response_bytes,
            server_time,
        );
        let finished = started + hold + queue_delay + exchange;
        // A request "triggered" a deployment if its own PacketIn started a
        // machine (window [machines_before, hi)) that eventually completes,
        // and the request was held for it. The machine may still be mid-
        // flight here, so the verdict is resolved in `finish` against the
        // dispatcher's completion log.
        let hi = self.controller.machines_started();
        if hold > SimDuration::ZERO && machines_before < hi {
            self.triggered_windows
                .push((self.records.len(), machines_before, hi));
        }
        self.records.push(RequestRecord {
            started,
            finished,
            service,
            client,
            triggered_deployment: false,
        });
    }
}

/// Run an externally supplied trace (e.g. loaded from CSV) under a scenario.
pub fn run_trace_scenario(cfg: ScenarioConfig, trace: &Trace) -> RunResult {
    let testbed = Testbed::build(cfg, trace.service_addrs.to_vec());
    testbed.run_trace(trace)
}

/// Build a testbed plus the paper's default bigFlows-like trace and run it.
///
/// ```
/// use testbed::{run_bigflows, ScenarioConfig};
///
/// let (trace, result) = run_bigflows(ScenarioConfig::default());
/// assert_eq!(trace.requests.len(), result.records.len());
/// assert_eq!(result.deployments.len(), 42); // one per service, Fig. 10
/// ```
pub fn run_bigflows(cfg: ScenarioConfig) -> (Trace, RunResult) {
    let trace = generate_workload(&cfg);
    let testbed = Testbed::build(cfg, trace.service_addrs.to_vec());
    let result = testbed.run_trace(&trace);
    (trace, result)
}

/// Generate the trace `cfg.workload` describes, with the scenario's client
/// population and the canonical trace-seed derivation (`seed ^ 0xB16F_1085`
/// — the same stream `run_bigflows` has always used, so the default
/// workload replays every pinned trace byte-identically).
pub fn generate_workload(cfg: &ScenarioConfig) -> Trace {
    let mut wl = cfg.workload.clone();
    wl.mix.clients = cfg.clients;
    let mut trace_rng = SimRng::seed_from_u64(cfg.seed ^ 0xB16F_1085);
    wl.generate(&mut trace_rng)
        .unwrap_or_else(|e| panic!("scenario workload: {e}"))
}

/// [`run_bigflows`] with the static verifier auditing the whole run — the
/// `edgesim verify` entry point for scenario files.
pub fn run_bigflows_audited(cfg: ScenarioConfig) -> (Trace, RunResult, AuditReport) {
    let trace = generate_workload(&cfg);
    let testbed = Testbed::build(cfg, trace.service_addrs.to_vec());
    let (result, report) = testbed.run_trace_audited(&trace);
    (trace, result, report)
}

/// Measure a single first request against one service (the Figs. 11–15
/// micro-scenario): returns `(time_total_ms, deployment_record)`.
pub fn measure_first_request(cfg: ScenarioConfig) -> (f64, Option<edgectl::DeploymentRecord>) {
    let addr = SocketAddr::new(simnet::IpAddr::new(93, 184, 0, 1), 80);
    let testbed = Testbed::build(cfg, vec![addr]);
    let result = testbed.run_single_request();
    assert_eq!(result.records.len() + result.lost as usize, 1);
    let ms = result
        .records
        .first()
        .map(|r| r.time_total().as_millis_f64())
        .unwrap_or(f64::NAN);
    (ms, result.deployments.into_iter().next())
}
