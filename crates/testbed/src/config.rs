//! Scenario configuration from YAML — the `edgesim` CLI's input format.
//!
//! ```yaml
//! seed: 7
//! service: Nginx            # Asm | Nginx | ResNet | Nginx+Py | Wasm-Web
//! scheduler: nearest-waiting # | nearest-ready-first | hybrid | least-loaded
//! backends: [docker, k8s]    # | wasm
//! phase: created             # cold | images-cached | created | running
//! private_registry: false
//! clients: 20
//! predictor: none            # | popularity | oracle
//! controller:
//!   probe_interval_ms: 50
//!   switch_idle_timeout_s: 10
//!   memory_idle_timeout_s: 600
//!   scale_down_idle: false
//!   deploy_retries: 2
//!   autoscale_flows_per_replica: 8
//! workload:                  # optional workload-engine block (see below)
//!   model: flash-crowd       # edgesim workloads lists the models
//!   handovers_per_client: 2
//! sites:                     # optional hierarchical layout
//!   - name: near-edge
//!     class: pi              # pi | egs
//!     latency_ms: 0.3
//!     nodes: 8
//!     backend: docker
//!     cpu_millis: 4000       # optional; omitted = unlimited
//!     memory_mib: 4096       # optional; omitted = unlimited
//!     max_replicas: 16       # optional; omitted = unlimited
//!     labels: [gpu]          # optional placement labels
//! ```
//!
//! The `scheduler` value is any name or alias the
//! [`edgectl::SchedulerRegistry`] knows (`edgesim schedulers` lists them).

use cluster::{ClusterKind, SiteCapacity};
use edgectl::{SchedulerRegistry, SchedulerSpec};
use simcore::SimDuration;
use simnet::openflow::PortId;
use simnet::{Action, FlowMatch, FlowSpec, IpAddr, IpNet, Protocol};
use workload::{ServiceKind, WorkloadRegistry};
use yamlite::Yaml;

use crate::scenario::{MeshParams, PhaseSetup, PredictorKind, ScenarioConfig};
use crate::topology::{NodeClass, SiteSpec};

/// Parse a scenario from a YAML document. Unknown keys are rejected so typos
/// fail loudly.
pub fn scenario_from_yaml(doc: &Yaml) -> Result<ScenarioConfig, String> {
    let mut cfg = ScenarioConfig::default();
    let Some(map) = doc.as_map() else {
        return Err("scenario must be a YAML mapping".into());
    };
    for (key, value) in map {
        match key.as_str() {
            "seed" => cfg.seed = as_u64(value, key)?,
            "service" => cfg.service = parse_service(value, key)?,
            "scheduler" => cfg.scheduler = parse_scheduler(value, key)?,
            "backends" => {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                cfg.backends = seq
                    .iter()
                    .map(|v| parse_backend(v, key))
                    .collect::<Result<_, _>>()?;
            }
            "phase" => cfg.phase_setup = parse_phase(value, key)?,
            "private_registry" => cfg.private_registry = as_bool(value, key)?,
            "clients" => cfg.clients = as_u64(value, key)? as usize,
            "predictor" => cfg.predictor = parse_predictor(value, key)?,
            "predict_interval_s" => {
                cfg.predict_interval = SimDuration::from_secs_f64(as_f64(value, key)?)
            }
            "prewarm_sites" => {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                cfg.prewarm_sites = Some(
                    seq.iter()
                        .map(|v| as_u64(v, key).map(|n| n as usize))
                        .collect::<Result<_, _>>()?,
                );
            }
            "controller" => apply_controller(value, &mut cfg)?,
            "mesh" => apply_mesh(value, &mut cfg)?,
            "workload" => apply_workload(value, &mut cfg)?,
            "seed_flows" => {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                cfg.seed_flows = seq.iter().map(parse_seed_flow).collect::<Result<_, _>>()?;
            }
            "sites" => {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                cfg.sites = seq.iter().map(parse_site).collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown scenario key `{other}`")),
        }
    }
    Ok(cfg)
}

fn apply_controller(value: &Yaml, cfg: &mut ScenarioConfig) -> Result<(), String> {
    let Some(map) = value.as_map() else {
        return Err("`controller` must be a mapping".into());
    };
    for (key, v) in map {
        match key.as_str() {
            "probe_interval_ms" => {
                cfg.controller.probe_interval = SimDuration::from_millis_f64(as_f64(v, key)?)
            }
            "probe_timeout_s" => {
                cfg.controller.probe_timeout = SimDuration::from_secs_f64(as_f64(v, key)?)
            }
            "switch_idle_timeout_s" => {
                cfg.controller.switch_idle_timeout = SimDuration::from_secs_f64(as_f64(v, key)?)
            }
            "memory_idle_timeout_s" => {
                cfg.controller.memory_idle_timeout = SimDuration::from_secs_f64(as_f64(v, key)?)
            }
            "scale_down_idle" => cfg.controller.scale_down_idle = as_bool(v, key)?,
            "deploy_retries" => cfg.controller.deploy_retries = as_u64(v, key)? as u32,
            "retry_backoff_ms" => {
                cfg.controller.retry_backoff = SimDuration::from_millis_f64(as_f64(v, key)?)
            }
            "autoscale_flows_per_replica" => {
                cfg.controller.autoscale_flows_per_replica = Some(as_u64(v, key)? as u32)
            }
            "remove_after_s" => {
                cfg.controller.remove_after = Some(SimDuration::from_secs_f64(as_f64(v, key)?))
            }
            other => return Err(format!("unknown controller key `{other}`")),
        }
    }
    Ok(())
}

/// Controller-federation knobs:
///
/// ```yaml
/// mesh:
///   shards: 4            # controller instances; 1 = plain testbed
///   link_latency_us: 500 # one-way gossip latency
///   loss: 0.05           # per-delivery delta loss probability
///   leases: true         # deployment-lease coordination
///   gossip_interval_ms: 50 # retransmit back-off after a lost delta
///   threads: 4           # worker threads (<= shards); hash-invariant
/// ```
fn apply_mesh(value: &Yaml, cfg: &mut ScenarioConfig) -> Result<(), String> {
    let Some(map) = value.as_map() else {
        return Err("`mesh` must be a mapping".into());
    };
    let mut mesh = MeshParams::default();
    for (key, v) in map {
        match key.as_str() {
            "shards" => {
                mesh.shards = as_u64(v, key)? as usize;
                if mesh.shards == 0 {
                    return Err("`mesh.shards` must be at least 1".into());
                }
            }
            "link_latency_us" => {
                mesh.link_latency = SimDuration::from_micros(as_u64(v, key)?);
            }
            "loss" => {
                mesh.loss = as_f64(v, key)?;
                if !(0.0..1.0).contains(&mesh.loss) {
                    return Err("`mesh.loss` must be in [0, 1)".into());
                }
            }
            "leases" => mesh.leases = as_bool(v, key)?,
            "gossip_interval_ms" => {
                mesh.gossip_interval = SimDuration::from_millis_f64(as_f64(v, key)?);
            }
            "threads" => {
                mesh.threads = as_u64(v, key)? as usize;
                if mesh.threads == 0 {
                    return Err("`mesh.threads` must be at least 1".into());
                }
            }
            other => return Err(format!("unknown mesh key `{other}`")),
        }
    }
    if mesh.threads > mesh.shards {
        return Err(format!(
            "`mesh.threads` ({}) exceeds `mesh.shards` ({}): each worker \
             thread owns whole shards, so extra threads could only idle",
            mesh.threads, mesh.shards
        ));
    }
    cfg.mesh = mesh;
    Ok(())
}

/// Workload-engine knobs — which arrival model shapes the generated trace,
/// the service mix, per-model parameters, and client mobility:
///
/// ```yaml
/// workload:
///   model: flash-crowd      # any name/alias the WorkloadRegistry knows
///   services: 42            # service population
///   total_requests: 1708    # requests over the window
///   duration_s: 300         # window length
///   min_per_service: 20     # per-service request floor
///   zipf_exponent: 0.9      # popularity law
///   first_seen_mean_s: 18   # bigflows: mean first-seen offset
///   handovers_per_client: 2 # expected mid-session ingress handovers
///   spike_at_s: 10          # flash-crowd: spike start
///   spike_window_s: 5       # flash-crowd: spike length
///   spike_fraction: 0.5     # flash-crowd: request mass inside the spike
///   burst_on_s: 5           # mmpp: ON-phase length
///   burst_off_s: 20         # mmpp: OFF-phase length
///   burst_ratio: 9          # mmpp: ON-phase rate multiplier (>= 1)
///   diurnal_peak: 0.5       # diurnal: peak position in [0, 1)
///   diurnal_amplitude: 0.8  # diurnal: rate swing in [0, 1)
/// ```
///
/// `model` is validated at parse time against [`workload::WorkloadRegistry`]
/// (the typed [`workload::UnknownModel`] error lists what exists — same
/// contract as `scheduler`). The number of clients comes from the top-level
/// `clients` key; `generate_workload` overrides the mix with it.
fn apply_workload(value: &Yaml, cfg: &mut ScenarioConfig) -> Result<(), String> {
    let Some(map) = value.as_map() else {
        return Err("`workload` must be a mapping".into());
    };
    let mut wl = workload::WorkloadConfig::default();
    for (key, v) in map {
        match key.as_str() {
            "model" => {
                let Some(name) = v.as_str() else {
                    return Err(format!("`{key}` must be a workload model name string"));
                };
                // Parse-time validation: fail with the registry's typed
                // error (listing available models) instead of at run time.
                WorkloadRegistry::builtin()
                    .resolve(name)
                    .map_err(|e| format!("`{key}`: {e}"))?;
                wl.model = name.to_string();
            }
            "services" => wl.mix.services = as_u64(v, key)? as usize,
            "total_requests" => wl.mix.total_requests = as_u64(v, key)? as usize,
            "duration_s" => wl.mix.duration = SimDuration::from_secs_f64(as_f64(v, key)?),
            "min_per_service" => wl.mix.min_per_service = as_u64(v, key)? as usize,
            "zipf_exponent" => wl.mix.zipf_exponent = as_f64(v, key)?,
            "first_seen_mean_s" => {
                wl.mix.first_seen_mean = SimDuration::from_secs_f64(as_f64(v, key)?)
            }
            "handovers_per_client" => {
                wl.handovers_per_client = as_f64(v, key)?;
                if wl.handovers_per_client < 0.0 {
                    return Err("`workload.handovers_per_client` must be non-negative".into());
                }
            }
            "spike_at_s" => wl.spike_at = SimDuration::from_secs_f64(as_f64(v, key)?),
            "spike_window_s" => wl.spike_window = SimDuration::from_secs_f64(as_f64(v, key)?),
            "spike_fraction" => {
                wl.spike_fraction = as_f64(v, key)?;
                if !(0.0..1.0).contains(&wl.spike_fraction) {
                    return Err("`workload.spike_fraction` must be in [0, 1)".into());
                }
            }
            "burst_on_s" => wl.burst_on = SimDuration::from_secs_f64(as_f64(v, key)?),
            "burst_off_s" => wl.burst_off = SimDuration::from_secs_f64(as_f64(v, key)?),
            "burst_ratio" => {
                wl.burst_ratio = as_f64(v, key)?;
                if wl.burst_ratio < 1.0 {
                    return Err("`workload.burst_ratio` must be at least 1".into());
                }
            }
            "diurnal_peak" => {
                wl.diurnal_peak = as_f64(v, key)?;
                if !(0.0..1.0).contains(&wl.diurnal_peak) {
                    return Err("`workload.diurnal_peak` must be in [0, 1)".into());
                }
            }
            "diurnal_amplitude" => {
                wl.diurnal_amplitude = as_f64(v, key)?;
                if !(0.0..1.0).contains(&wl.diurnal_amplitude) {
                    return Err("`workload.diurnal_amplitude` must be in [0, 1)".into());
                }
            }
            other => return Err(format!("unknown workload key `{other}`")),
        }
    }
    if wl.mix.services == 0 {
        return Err("`workload.services` must be at least 1".into());
    }
    if wl.mix.total_requests < wl.mix.services * wl.mix.min_per_service {
        return Err(format!(
            "`workload.total_requests` ({}) cannot satisfy the per-service \
             floor ({} services x {} min_per_service = {})",
            wl.mix.total_requests,
            wl.mix.services,
            wl.mix.min_per_service,
            wl.mix.services * wl.mix.min_per_service
        ));
    }
    let registry = WorkloadRegistry::builtin();
    let resolved = registry
        .resolve(&wl.model)
        .map_err(|e| format!("`workload.model`: {e}"))?;
    if resolved.name == "flash-crowd" && wl.spike_at + wl.spike_window > wl.mix.duration {
        return Err(format!(
            "`workload`: the flash-crowd spike ({} + {}) overruns the window ({})",
            wl.spike_at, wl.spike_window, wl.mix.duration
        ));
    }
    cfg.workload = wl;
    Ok(())
}

fn parse_site(v: &Yaml) -> Result<(SiteSpec, ClusterKind), String> {
    let Some(map) = v.as_map() else {
        return Err("each site must be a mapping".into());
    };
    let mut name = None;
    let mut class = NodeClass::Egs;
    let mut latency = SimDuration::from_micros(80);
    let mut nodes = 1usize;
    let mut backend = ClusterKind::Docker;
    let mut capacity = SiteCapacity::UNLIMITED;
    let mut labels = Vec::new();
    for (key, val) in map {
        match key.as_str() {
            "name" => name = val.as_str().map(str::to_string),
            "class" => {
                class = match val.as_str() {
                    Some("pi") => NodeClass::RaspberryPi,
                    Some("egs") => NodeClass::Egs,
                    other => return Err(format!("unknown site class {other:?}")),
                }
            }
            "latency_ms" => latency = SimDuration::from_millis_f64(as_f64(val, key)?),
            "nodes" => nodes = as_u64(val, key)? as usize,
            "backend" => backend = parse_backend(val, key)?,
            "cpu_millis" => {
                capacity.cpu_millis =
                    u32::try_from(as_u64(val, key)?).map_err(|_| format!("`{key}` out of range"))?
            }
            "memory_mib" => capacity.memory_mib = as_u64(val, key)?,
            "max_replicas" => {
                capacity.max_replicas =
                    u32::try_from(as_u64(val, key)?).map_err(|_| format!("`{key}` out of range"))?
            }
            "labels" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                labels = seq
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("`{key}` entries must be strings"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown site key `{other}`")),
        }
    }
    let name = name.ok_or("site needs a `name`")?;
    let base = match class {
        NodeClass::Egs => SiteSpec::egs(name),
        NodeClass::RaspberryPi => SiteSpec::pi(name, latency),
    };
    Ok((
        SiteSpec {
            latency,
            nodes,
            capacity,
            labels,
            ..base
        },
        backend,
    ))
}

/// One pre-provisioned flow entry:
///
/// ```yaml
/// seed_flows:
///   - priority: 50
///     cookie: 7          # optional
///     idle_s: 30         # optional
///     match:             # all fields optional; omitted = wildcard
///       protocol: tcp    # tcp | udp
///       src_ip: 10.1.0.1
///       src_port: 40000
///       dst_ip: 93.184.0.1
///       dst_port: 80
///       src_net: 10.1.0.0/16
///       dst_net: 93.184.0.0/16
///     actions: [to-controller]
/// ```
///
/// Actions: `drop`, `to-controller`, `output:<port>`, `set-src-ip:<ip>`,
/// `set-dst-ip:<ip>`, `set-src-port:<port>`, `set-dst-port:<port>`.
fn parse_seed_flow(v: &Yaml) -> Result<FlowSpec, String> {
    let Some(map) = v.as_map() else {
        return Err("each seed flow must be a mapping".into());
    };
    let mut spec = FlowSpec::new(FlowMatch::default());
    let mut has_actions = false;
    for (key, val) in map {
        match key.as_str() {
            "priority" => spec.priority = as_u64(val, key)? as u16,
            "cookie" => spec.cookie = as_u64(val, key)?,
            "idle_s" => spec.idle_timeout = Some(SimDuration::from_secs_f64(as_f64(val, key)?)),
            "hard_s" => spec.hard_timeout = Some(SimDuration::from_secs_f64(as_f64(val, key)?)),
            "match" => spec.matcher = parse_flow_match(val)?,
            "actions" => {
                let seq = val
                    .as_seq()
                    .ok_or_else(|| format!("`{key}` must be a sequence"))?;
                spec.actions = seq.iter().map(parse_action).collect::<Result<_, _>>()?;
                has_actions = true;
            }
            other => return Err(format!("unknown seed flow key `{other}`")),
        }
    }
    if !has_actions {
        return Err("seed flow needs an `actions` list".into());
    }
    Ok(spec)
}

fn parse_flow_match(v: &Yaml) -> Result<FlowMatch, String> {
    let Some(map) = v.as_map() else {
        return Err("`match` must be a mapping".into());
    };
    let mut m = FlowMatch::default();
    for (key, val) in map {
        match key.as_str() {
            "protocol" => {
                m.protocol = Some(match val.as_str() {
                    Some("tcp") => Protocol::Tcp,
                    Some("udp") => Protocol::Udp,
                    other => return Err(format!("`{key}`: unknown protocol {other:?}")),
                })
            }
            "src_ip" => m.src_ip = Some(parse_ip(val, key)?),
            "dst_ip" => m.dst_ip = Some(parse_ip(val, key)?),
            "src_port" => m.src_port = Some(as_u64(val, key)? as u16),
            "dst_port" => m.dst_port = Some(as_u64(val, key)? as u16),
            "src_net" => m.src_net = Some(parse_net(val, key)?),
            "dst_net" => m.dst_net = Some(parse_net(val, key)?),
            other => return Err(format!("unknown match key `{other}`")),
        }
    }
    Ok(m)
}

fn parse_ip(v: &Yaml, key: &str) -> Result<IpAddr, String> {
    v.as_str()
        .ok_or_else(|| format!("`{key}` must be a dotted-quad string"))?
        .parse::<IpAddr>()
        .map_err(|e| format!("`{key}`: {e}"))
}

fn parse_net(v: &Yaml, key: &str) -> Result<IpNet, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("`{key}` must be a `addr/prefix` string"))?;
    let (addr, prefix) = s
        .split_once('/')
        .ok_or_else(|| format!("`{key}` must be `addr/prefix`, got `{s}`"))?;
    let addr = addr
        .parse::<IpAddr>()
        .map_err(|e| format!("`{key}`: {e}"))?;
    let prefix: u8 = prefix
        .parse()
        .map_err(|_| format!("`{key}`: bad prefix `{prefix}`"))?;
    if prefix > 32 {
        return Err(format!("`{key}`: prefix {prefix} out of range (0-32)"));
    }
    Ok(IpNet::new(addr, prefix))
}

fn parse_action(v: &Yaml) -> Result<Action, String> {
    let Some(s) = v.as_str() else {
        return Err("each action must be a string".into());
    };
    match s {
        "drop" => return Ok(Action::Drop),
        "to-controller" => return Ok(Action::ToController),
        _ => {}
    }
    let Some((op, arg)) = s.split_once(':') else {
        return Err(format!("unknown action `{s}`"));
    };
    let port_arg = || {
        arg.parse::<u16>()
            .map_err(|_| format!("action `{op}`: bad port `{arg}`"))
    };
    let ip_arg = || {
        arg.parse::<IpAddr>()
            .map_err(|e| format!("action `{op}`: {e}"))
    };
    match op {
        "output" => Ok(Action::Output(PortId(port_arg()? as usize))),
        "set-src-ip" => Ok(Action::SetSrcIp(ip_arg()?)),
        "set-dst-ip" => Ok(Action::SetDstIp(ip_arg()?)),
        "set-src-port" => Ok(Action::SetSrcPort(port_arg()?)),
        "set-dst-port" => Ok(Action::SetDstPort(port_arg()?)),
        other => Err(format!("unknown action `{other}`")),
    }
}

fn parse_service(v: &Yaml, key: &str) -> Result<ServiceKind, String> {
    match v.as_str().map(str::to_ascii_lowercase).as_deref() {
        Some("asm") => Ok(ServiceKind::Asm),
        Some("nginx") => Ok(ServiceKind::Nginx),
        Some("resnet") => Ok(ServiceKind::ResNet),
        Some("nginx+py" | "nginx-py" | "nginxpy") => Ok(ServiceKind::NginxPy),
        Some("wasm-web" | "wasmweb" | "wasm") => Ok(ServiceKind::WasmWeb),
        other => Err(format!("`{key}`: unknown service {other:?}")),
    }
}

fn parse_scheduler(v: &Yaml, key: &str) -> Result<SchedulerSpec, String> {
    let Some(name) = v.as_str() else {
        return Err(format!("`{key}` must be a scheduler name string"));
    };
    // Validate at parse time so bad scenario files fail with the registry's
    // typed error (listing the available policies) instead of at build time.
    SchedulerRegistry::builtin()
        .resolve(name)
        .map_err(|e| format!("`{key}`: {e}"))?;
    Ok(SchedulerSpec::named(name))
}

fn parse_backend(v: &Yaml, key: &str) -> Result<ClusterKind, String> {
    match v.as_str().map(str::to_ascii_lowercase).as_deref() {
        Some("docker") => Ok(ClusterKind::Docker),
        Some("k8s" | "kubernetes") => Ok(ClusterKind::Kubernetes),
        Some("wasm") => Ok(ClusterKind::Wasm),
        other => Err(format!("`{key}`: unknown backend {other:?}")),
    }
}

fn parse_phase(v: &Yaml, key: &str) -> Result<PhaseSetup, String> {
    match v.as_str() {
        Some("cold") => Ok(PhaseSetup::Cold),
        Some("images-cached") => Ok(PhaseSetup::ImagesCached),
        Some("created") => Ok(PhaseSetup::Created),
        Some("running") => Ok(PhaseSetup::Running),
        other => Err(format!("`{key}`: unknown phase {other:?}")),
    }
}

fn parse_predictor(v: &Yaml, key: &str) -> Result<PredictorKind, String> {
    match v.as_str() {
        Some("none") => Ok(PredictorKind::None),
        Some("popularity") => Ok(PredictorKind::Popularity),
        Some("oracle") => Ok(PredictorKind::Oracle),
        other => Err(format!("`{key}`: unknown predictor {other:?}")),
    }
}

fn as_u64(v: &Yaml, key: &str) -> Result<u64, String> {
    v.as_i64()
        .filter(|&n| n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn as_f64(v: &Yaml, key: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn as_bool(v: &Yaml, key: &str) -> Result<bool, String> {
    v.as_bool()
        .ok_or_else(|| format!("`{key}` must be a boolean"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_parses() {
        let doc = yamlite::parse(
            r#"
seed: 7
service: ResNet
scheduler: hybrid
backends: [docker, k8s]
phase: images-cached
private_registry: true
clients: 10
predictor: popularity
predict_interval_s: 2
controller:
  probe_interval_ms: 20
  memory_idle_timeout_s: 120
  scale_down_idle: true
  deploy_retries: 4
"#,
        )
        .unwrap();
        let cfg = scenario_from_yaml(&doc).unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.service, ServiceKind::ResNet);
        assert_eq!(cfg.scheduler, SchedulerSpec::named("hybrid"));
        assert_eq!(
            cfg.backends,
            vec![ClusterKind::Docker, ClusterKind::Kubernetes]
        );
        assert_eq!(cfg.phase_setup, PhaseSetup::ImagesCached);
        assert!(cfg.private_registry);
        assert_eq!(cfg.clients, 10);
        assert_eq!(cfg.predictor, PredictorKind::Popularity);
        assert_eq!(cfg.controller.probe_interval, SimDuration::from_millis(20));
        assert_eq!(
            cfg.controller.memory_idle_timeout,
            SimDuration::from_secs(120)
        );
        assert!(cfg.controller.scale_down_idle);
        assert_eq!(cfg.controller.deploy_retries, 4);
    }

    #[test]
    fn sites_parse_into_specs() {
        let doc = yamlite::parse(
            r#"
sites:
  - name: near-edge
    class: pi
    latency_ms: 0.3
    nodes: 8
    backend: docker
  - name: far-edge
    class: egs
    latency_ms: 8
    backend: k8s
    cpu_millis: 8000
    memory_mib: 16384
    max_replicas: 12
    labels: [gpu, metro]
"#,
        )
        .unwrap();
        let cfg = scenario_from_yaml(&doc).unwrap();
        let sites = cfg.resolved_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].0.name, "near-edge");
        assert_eq!(sites[0].0.class, NodeClass::RaspberryPi);
        assert_eq!(sites[0].0.nodes, 8);
        assert_eq!(sites[0].1, ClusterKind::Docker);
        assert!(sites[0].0.capacity.is_unlimited());
        assert_eq!(sites[1].0.latency, SimDuration::from_millis(8));
        assert_eq!(sites[1].1, ClusterKind::Kubernetes);
        assert_eq!(sites[1].0.capacity.cpu_millis, 8000);
        assert_eq!(sites[1].0.capacity.memory_mib, 16384);
        assert_eq!(sites[1].0.capacity.max_replicas, 12);
        assert_eq!(sites[1].0.labels, vec!["gpu", "metro"]);
    }

    #[test]
    fn unknown_scheduler_lists_available() {
        let err = scenario_from_yaml(&yamlite::parse("scheduler: magic").unwrap()).unwrap_err();
        assert!(err.contains("unknown scheduler `magic`"), "{err}");
        assert!(err.contains("bounded-cost"), "{err}");
    }

    #[test]
    fn defaults_when_empty() {
        let cfg = scenario_from_yaml(&yamlite::parse("{}").unwrap()).unwrap();
        assert_eq!(cfg.service, ServiceKind::Nginx);
        assert_eq!(cfg.clients, 20);
    }

    #[test]
    fn unknown_keys_rejected() {
        let err = scenario_from_yaml(&yamlite::parse("sevice: Nginx").unwrap()).unwrap_err();
        assert!(err.contains("unknown scenario key"), "{err}");
        let err =
            scenario_from_yaml(&yamlite::parse("controller:\n  probez: 1").unwrap()).unwrap_err();
        assert!(err.contains("unknown controller key"), "{err}");
    }

    #[test]
    fn bad_values_rejected() {
        assert!(scenario_from_yaml(&yamlite::parse("service: gopher").unwrap()).is_err());
        assert!(scenario_from_yaml(&yamlite::parse("seed: -4").unwrap()).is_err());
        assert!(scenario_from_yaml(&yamlite::parse("backends: docker").unwrap()).is_err());
        assert!(scenario_from_yaml(&yamlite::parse("42").unwrap()).is_err());
    }

    #[test]
    fn mesh_block_parses() {
        let doc = yamlite::parse(
            r#"
mesh:
  shards: 4
  link_latency_us: 800
  loss: 0.05
  leases: false
  gossip_interval_ms: 25
  threads: 2
"#,
        )
        .unwrap();
        let cfg = scenario_from_yaml(&doc).unwrap();
        assert_eq!(cfg.mesh.shards, 4);
        assert_eq!(cfg.mesh.link_latency, SimDuration::from_micros(800));
        assert!((cfg.mesh.loss - 0.05).abs() < 1e-12);
        assert!(!cfg.mesh.leases);
        assert_eq!(cfg.mesh.gossip_interval, SimDuration::from_millis(25));
        assert_eq!(cfg.mesh.threads, 2);
        // Defaults: single shard, lossless, leases on.
        let cfg = scenario_from_yaml(&yamlite::parse("{}").unwrap()).unwrap();
        assert_eq!(cfg.mesh, MeshParams::default());
        assert_eq!(cfg.mesh.shards, 1);
    }

    #[test]
    fn mesh_bad_values_rejected() {
        for bad in [
            "mesh:\n  shards: 0",
            "mesh:\n  loss: 1.5",
            "mesh:\n  sharts: 2",
            "mesh:\n  threads: 0",
            "mesh:\n  shards: 2\n  threads: 4",
        ] {
            let err = scenario_from_yaml(&yamlite::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains("mesh"), "{err}");
        }
    }

    #[test]
    fn workload_block_parses() {
        let doc = yamlite::parse(
            r#"
clients: 40
workload:
  model: spike
  services: 10
  total_requests: 500
  duration_s: 60
  min_per_service: 5
  zipf_exponent: 1.1
  handovers_per_client: 1.5
  spike_at_s: 20
  spike_window_s: 4
  spike_fraction: 0.6
"#,
        )
        .unwrap();
        let cfg = scenario_from_yaml(&doc).unwrap();
        assert_eq!(cfg.workload.model, "spike");
        assert_eq!(cfg.workload.mix.services, 10);
        assert_eq!(cfg.workload.mix.total_requests, 500);
        assert_eq!(cfg.workload.mix.duration, SimDuration::from_secs(60));
        assert_eq!(cfg.workload.mix.min_per_service, 5);
        assert!((cfg.workload.handovers_per_client - 1.5).abs() < 1e-12);
        assert_eq!(cfg.workload.spike_at, SimDuration::from_secs(20));
        assert!((cfg.workload.spike_fraction - 0.6).abs() < 1e-12);
        // Defaults: the paper's bigflows replay, static clients.
        let cfg = scenario_from_yaml(&yamlite::parse("{}").unwrap()).unwrap();
        assert_eq!(cfg.workload, workload::WorkloadConfig::default());
    }

    #[test]
    fn unknown_workload_model_lists_available() {
        let err = scenario_from_yaml(
            &yamlite::parse(
                "workload:
  model: tsunami",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown workload model `tsunami`"), "{err}");
        assert!(err.contains("flash-crowd"), "{err}");
        assert!(err.contains("bigflows"), "{err}");
    }

    #[test]
    fn workload_bad_values_rejected() {
        for bad in [
            "workload:
  modle: poisson",
            "workload:
  handovers_per_client: -1",
            "workload:
  spike_fraction: 1.5",
            "workload:
  burst_ratio: 0.5",
            "workload:
  diurnal_peak: 1.0",
            "workload:
  diurnal_amplitude: -0.1",
            "workload:
  services: 0",
            "workload:
  services: 50
  total_requests: 100
  min_per_service: 20",
            "workload:
  model: flash-crowd
  duration_s: 8",
        ] {
            let err = scenario_from_yaml(&yamlite::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains("workload"), "{bad}: {err}");
        }
    }

    #[test]
    fn wasm_service_and_backend() {
        let doc = yamlite::parse("service: wasm-web\nbackends: [wasm]\n").unwrap();
        let cfg = scenario_from_yaml(&doc).unwrap();
        assert_eq!(cfg.service, ServiceKind::WasmWeb);
        assert_eq!(cfg.backends, vec![ClusterKind::Wasm]);
    }
}
