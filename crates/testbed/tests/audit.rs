//! The audited run: `edgeverify` riding along a full bigFlows-like trace.
//!
//! A default scenario must audit clean — the controller's own flow installs
//! never shadow, conflict, loop, blackhole or drift from the FlowMemory. A
//! scenario whose `seed_flows` pre-provision a broken table must be flagged
//! with the offending rules.

use testbed::{run_bigflows, run_bigflows_audited, scenario_from_yaml, ScenarioConfig};

#[test]
fn default_scenario_audits_clean() {
    let (trace, result, report) = run_bigflows_audited(ScenarioConfig::default());
    assert_eq!(
        trace.requests.len(),
        result.records.len() + result.lost as usize
    );
    assert!(
        report.is_clean(),
        "{:?}",
        report.violations().collect::<Vec<_>>()
    );
    assert!(
        report.checked_installs > 0,
        "controller installs were checked"
    );
}

#[test]
fn audited_run_matches_unaudited_results() {
    let cfg = ScenarioConfig::default();
    let (_, plain) = run_bigflows(cfg.clone());
    let (_, audited, _) = run_bigflows_audited(cfg);
    assert_eq!(plain.records.len(), audited.records.len());
    assert_eq!(plain.lost, audited.lost);
    assert_eq!(plain.deployments.len(), audited.deployments.len());
    assert_eq!(plain.time_totals_ms(), audited.time_totals_ms());
}

#[test]
fn seeded_shadowed_rule_is_reported() {
    // A broad /16 punt at priority 50 fully covers the narrower exact-match
    // punt at priority 40: the second seed flow can never fire. Both punt to
    // the controller, so the run itself still behaves normally.
    let doc = yamlite::parse(
        r#"
seed: 3
phase: created
seed_flows:
  - priority: 50
    match:
      dst_net: 93.184.0.0/16
    actions: [to-controller]
  - priority: 40
    match:
      protocol: tcp
      dst_ip: 93.184.0.1
      dst_port: 80
    actions: [to-controller]
"#,
    )
    .unwrap();
    let cfg = scenario_from_yaml(&doc).unwrap();
    let (_, result, report) = run_bigflows_audited(cfg);
    assert_eq!(result.lost, 0, "shadowed punt must not lose traffic");
    assert!(!report.is_clean());
    let rendered: Vec<String> = report.violations().map(|v| v.to_string()).collect();
    assert!(
        rendered.iter().any(|m| m.starts_with("shadowed:")),
        "{rendered:?}"
    );
}

#[test]
fn seeded_blackhole_is_reported_by_final_audit() {
    // Dropping one client's service traffic at a priority above the
    // controller's redirects (prio 100) blackholes that class.
    let doc = yamlite::parse(
        r#"
seed: 3
phase: created
seed_flows:
  - priority: 300
    match:
      src_ip: 10.1.0.1
      dst_ip: 93.184.1.1
      dst_port: 80
    actions: [drop]
"#,
    )
    .unwrap();
    let cfg = scenario_from_yaml(&doc).unwrap();
    let (_, _, report) = run_bigflows_audited(cfg);
    let rendered: Vec<String> = report.violations().map(|v| v.to_string()).collect();
    assert!(
        rendered.iter().any(|m| m.starts_with("blackhole:")),
        "{rendered:?}"
    );
}

#[test]
fn seed_flow_yaml_round_trip() {
    let doc = yamlite::parse(
        r#"
seed_flows:
  - priority: 50
    cookie: 7
    idle_s: 30
    match:
      protocol: tcp
      src_net: 10.1.0.0/16
      dst_ip: 93.184.0.1
      dst_port: 80
    actions: ["set-dst-ip:10.0.0.100", "set-dst-port:30000", "output:1"]
"#,
    )
    .unwrap();
    let cfg = scenario_from_yaml(&doc).unwrap();
    assert_eq!(cfg.seed_flows.len(), 1);
    let spec = &cfg.seed_flows[0];
    assert_eq!(spec.priority, 50);
    assert_eq!(spec.cookie, 7);
    assert_eq!(spec.idle_timeout, Some(simcore::SimDuration::from_secs(30)));
    assert_eq!(spec.matcher.dst_port, Some(80));
    assert_eq!(spec.actions.len(), 3);
}

#[test]
fn bad_seed_flows_rejected() {
    for src in [
        "seed_flows: 3\n",
        "seed_flows:\n  - priority: 1\n",     // no actions
        "seed_flows:\n  - actions: [warp]\n", // unknown action
        "seed_flows:\n  - actions: [drop]\n    match:\n      dst_net: 1.2.3.4\n", // no prefix
        "seed_flows:\n  - actions: [drop]\n    match:\n      dst_net: 1.2.3.4/40\n",
        "seed_flows:\n  - actions: [drop]\n    flags: 1\n", // unknown key
    ] {
        let doc = yamlite::parse(src).unwrap();
        assert!(scenario_from_yaml(&doc).is_err(), "{src}");
    }
}
