//! Golden-marginals regression for the workload engine's default path: the
//! paper's bigFlows replay must survive the engine refactor byte for byte —
//! exactly 42 services, exactly 1708 requests, and the pinned seed-42
//! metrics hash unchanged whether the scenario spells its `workload:` block
//! out explicitly or relies on the defaults.

use testbed::{generate_workload, run_bigflows, scenario_from_yaml, ScenarioConfig};

/// The pinned seed-42 hash from `tests/experiments_regression.rs` and the
/// cityscale/mesh/sched CI gates.
const SEED42_HASH: u64 = 0x66cc06e4f4d26b1a;

#[test]
fn default_workload_marginals_are_golden() {
    let trace = generate_workload(&ScenarioConfig::default());
    assert_eq!(trace.service_addrs.len(), 42, "service population drifted");
    assert_eq!(trace.requests.len(), 1708, "request count drifted");
    assert!(trace.handovers.is_empty(), "default clients are static");
}

#[test]
fn explicit_default_workload_block_is_the_pinned_replay() {
    // The `workload:` block spelling every default out must be the *same
    // byte stream* as no block at all — the engine's config surface cannot
    // perturb the RNG discipline.
    let doc = yamlite::parse(
        r#"
seed: 42
workload:
  model: bigflows
  services: 42
  total_requests: 1708
  duration_s: 300
  min_per_service: 20
  zipf_exponent: 0.9
  first_seen_mean_s: 18
  handovers_per_client: 0
"#,
    )
    .unwrap();
    let cfg = scenario_from_yaml(&doc).unwrap();
    let (_, result) = run_bigflows(cfg);
    assert_eq!(
        result.metrics_hash(),
        SEED42_HASH,
        "explicit workload block perturbed the pinned seed-42 replay"
    );
}

#[test]
fn implicit_default_matches_explicit_default() {
    let implicit = generate_workload(&ScenarioConfig {
        seed: 9,
        ..ScenarioConfig::default()
    });
    let cfg =
        scenario_from_yaml(&yamlite::parse("seed: 9\nworkload:\n  model: paper").unwrap()).unwrap();
    let explicit = generate_workload(&cfg);
    assert_eq!(implicit.requests, explicit.requests);
    assert_eq!(implicit.service_addrs, explicit.service_addrs);
}

/// A mobile single-controller run: the plain testbed processes handovers
/// (flow teardown at the departing ingress) and still serves or accounts for
/// every request.
#[test]
fn single_controller_mobility_accounts_for_every_request() {
    let doc = yamlite::parse("seed: 7\nworkload:\n  handovers_per_client: 2\n").unwrap();
    let cfg = scenario_from_yaml(&doc).unwrap();
    let (trace, result) = run_bigflows(cfg);
    assert!(!trace.handovers.is_empty());
    assert!(result.handovers > 0, "no handover was processed");
    assert_eq!(
        result.records.len() as u64 + result.lost,
        trace.requests.len() as u64,
        "a request leaked across a handover"
    );
    // The handover line only enters the trace when mobility is live, so the
    // static-client pinned hashes cannot see it.
    assert!(result.metrics_trace().contains("handovers="));
}
