//! Allocation-budget regression gate for the hot path (DESIGN.md §5i).
//!
//! The city-scale benchmark's headline claim is that steady-state request
//! processing stays within a fixed heap-allocation budget: fewer than
//! **8 allocations per request** across the whole `run_trace` call
//! (pre-warm + scheduling + event loop), measured with simcore's
//! workspace-wide counting allocator. This test pins that budget in
//! `cargo test` so a regression shows up before the bench is re-run.
//!
//! Deliberately a single `#[test]` in its own integration-test binary: the
//! counting allocator is process-global, so a sibling test thread would
//! pollute the before/after snapshots. One test = one thread = clean delta.

use cluster::ClusterKind;
use simcore::SimRng;
use testbed::{ScenarioConfig, SiteSpec, Testbed};
use workload::{Trace, TraceConfig};

/// The pinned budget, per build profile. Optimized builds — the profile the
/// bench and the headline claim are measured in — currently sit at ~2
/// allocations/request (BENCH_cityscale.json); 8 leaves headroom for benign
/// drift while still catching any per-request `Vec`/`String`/boxing leak —
/// one stray `format!` or `to_vec` per request blows straight past it.
/// Debug builds measure more for two structural reasons: the optimizer is
/// what elides the short-lived scratch allocations (rustc marks allocation
/// calls removable, but only optimized builds take the offer), and
/// `debug_assertions` enables check-on-install hooks (flow-pair shadowing
/// probes) that do their own bookkeeping. Debug currently measures ~23 per
/// request, so its budget is a coarse leak gate rather than the sharp one.
const ALLOCS_PER_REQUEST_BUDGET: f64 = if cfg!(debug_assertions) { 32.0 } else { 8.0 };

#[test]
fn steady_state_allocs_per_request_stay_under_budget() {
    if cfg!(not(feature = "counting-alloc")) {
        eprintln!("counting-alloc feature off; alloc budget not measurable");
        return;
    }

    // The bench's 10x tier, byte-for-byte: same seed, same scaled trace,
    // same scaled site. Big enough that per-request costs dominate fixed
    // setup noise, small enough for a debug-profile test run.
    let scale = 10;
    let trace_cfg = TraceConfig::scaled(scale);
    let mut trace_rng = SimRng::seed_from_u64(42 ^ 0xB16F_1085);
    let trace = Trace::generate(trace_cfg, &mut trace_rng);
    let requests = trace.requests.len();

    let cfg = ScenarioConfig {
        seed: 42,
        clients: trace.config.clients,
        sites: vec![(
            SiteSpec::egs("egs-0").with_nodes(scale),
            ClusterKind::Docker,
        )],
        ..ScenarioConfig::default()
    };
    let testbed = Testbed::build(cfg, trace.service_addrs.clone());

    let before = simcore::alloc_count::total();
    let result = testbed.run_trace(&trace);
    let allocs = simcore::alloc_count::total() - before;

    let per_request = allocs as f64 / requests as f64;
    let profile = result
        .alloc_profile
        .expect("counting-alloc is on, profile must be populated");
    assert!(
        per_request < ALLOCS_PER_REQUEST_BUDGET,
        "allocation budget blown: {allocs} allocations / {requests} requests \
         = {per_request:.2} per request (budget {ALLOCS_PER_REQUEST_BUDGET}); \
         phases: prewarm={} schedule={} event_loop={}",
        profile.prewarm,
        profile.schedule,
        profile.event_loop,
    );

    // The event loop itself (between the first and last simulated event) is
    // the lane the arena/SoA work flattened — hold it to the same budget so
    // a regression can't hide behind a cheap setup phase.
    let loop_per_request = profile.event_loop as f64 / requests as f64;
    assert!(
        loop_per_request < ALLOCS_PER_REQUEST_BUDGET,
        "event-loop allocation budget blown: {} allocations / {requests} \
         requests = {loop_per_request:.2} per request (budget {ALLOCS_PER_REQUEST_BUDGET})",
        profile.event_loop,
    );
}
