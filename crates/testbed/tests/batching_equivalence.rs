//! Model-based equivalence test of the same-instant PacketIn batch drain
//! (DESIGN.md §5i).
//!
//! `Testbed::on_packet_in_batch` drains every further PacketIn queued at
//! the *same instant* in one sweep, amortizing the sweep check and wakeup
//! re-arm across the batch. The claimed contract: the batched schedule is
//! **behaviourally identical** to the reference one-event-per-iteration
//! loop — the canonical metrics trace (every measured time, counter and
//! deployment) is byte-for-byte the same string.
//!
//! Traces here are hand-dense on purpose: millisecond-granularity arrival
//! times drawn from a tiny set of instants, with a small client pool, so
//! many SYNs reach the switch at exactly the same instant (same client +
//! same trace time ⇒ same switch-arrival time) and the batch path actually
//! drains multi-packet runs instead of degenerating to batches of one.
//!
//! The final test is a mutation check: `debug_reverse_batches` processes
//! each batch in reverse order, and the trace MUST differ — proving the
//! property is sharp enough to notice a reordering bug, not vacuously true.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simnet::{IpAddr, SocketAddr};
use testbed::{ScenarioConfig, Testbed};
use workload::{Trace, TraceConfig, TraceRequest};

/// Build a trace from raw `(millisecond, service, client)` triples, with the
/// generator's synthetic service addresses and sort order.
fn dense_trace(triples: &[(u64, usize, usize)], services: usize, clients: usize) -> Trace {
    let service_addrs: Vec<SocketAddr> = (0..services)
        .map(|i| {
            SocketAddr::new(
                IpAddr::new(93, 184, (i / 250 + 1) as u8, (i % 250 + 1) as u8),
                80,
            )
        })
        .collect();
    let mut requests: Vec<TraceRequest> = triples
        .iter()
        .map(|&(ms, service, client)| TraceRequest {
            at: SimTime::ZERO + SimDuration::from_millis(ms),
            service: service % services,
            client: client % clients,
        })
        .collect();
    requests.sort_by_key(|r| (r.at, r.service, r.client));
    Trace {
        requests,
        service_addrs,
        config: TraceConfig {
            services,
            total_requests: triples.len(),
            duration: SimDuration::from_secs(10),
            min_per_service: 0,
            clients,
            ..TraceConfig::default()
        },
        handovers: Vec::new(),
    }
}

/// Run the trace through a fresh default-scenario testbed and return the
/// canonical metrics trace.
fn run(trace: &Trace, unbatched: bool, reversed: bool) -> String {
    let cfg = ScenarioConfig {
        seed: 7,
        clients: trace.config.clients,
        ..ScenarioConfig::default()
    };
    let mut testbed = Testbed::build(cfg, trace.service_addrs.clone());
    testbed.debug_unbatched = unbatched;
    testbed.debug_reverse_batches = reversed;
    testbed.run_trace(trace).metrics_trace()
}

proptest! {
    // Each case runs the full simulation twice; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched and one-event-per-iteration schedules produce byte-identical
    /// metrics traces on arbitrarily dense same-instant workloads.
    #[test]
    fn batched_drain_matches_unbatched_reference(
        // Times from {0..5} ms, 4 services, 2 clients: with up to 24
        // requests over 6 instants, most instants carry same-client
        // multi-packet collisions.
        triples in prop::collection::vec((0u64..5, 0usize..4, 0usize..2), 1..24),
    ) {
        let trace = dense_trace(&triples, 4, 2);
        let batched = run(&trace, false, false);
        let unbatched = run(&trace, true, false);
        prop_assert_eq!(batched, unbatched);
    }
}

/// A deliberately order-sensitive workload: one client fires SYNs to two
/// *fresh* services at the exact same instant. Whichever packet is handled
/// first triggers its deployment first, so reversing the batch swaps the
/// order of the two deployment records — the metrics trace must change.
/// If this test ever passes with equal traces, the equivalence property
/// above has gone vacuous (the batch path stopped exercising ordering).
#[test]
fn reversed_batches_are_detected_by_the_metrics_trace() {
    let triples = [
        // t=0: client 0 hits services 0 and 1 back-to-back (one batch).
        (0, 0, 0),
        (0, 1, 0),
        // A second dense wave while both deployments are in flight.
        (2, 0, 0),
        (2, 1, 0),
    ];
    let trace = dense_trace(&triples, 2, 1);

    let batched = run(&trace, false, false);
    let reversed = run(&trace, false, true);
    assert_ne!(
        batched, reversed,
        "reversing same-instant batches must change the canonical trace"
    );

    // And the reference loop agrees with the *forward* batch order.
    let unbatched = run(&trace, true, false);
    assert_eq!(batched, unbatched);
}
