//! End-to-end tests: the full C³ simulation reproduces the qualitative
//! results of the paper's evaluation section.

use cluster::ClusterKind;
use simcore::run_seeds;
use testbed::{measure_first_request, run_bigflows, PhaseSetup, ScenarioConfig, SchedulerSpec};
use workload::ServiceKind;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn scale_up_median_ms(service: ServiceKind, backend: ClusterKind) -> f64 {
    let samples = run_seeds(&(0..15).collect::<Vec<u64>>(), 0, |seed| {
        let cfg = ScenarioConfig::default()
            .with_service(service)
            .with_backend(backend)
            .with_phase(PhaseSetup::Created)
            .with_seed(seed);
        measure_first_request(cfg).0
    });
    median(samples)
}

#[test]
fn fig11_docker_under_one_second_k8s_about_three() {
    let docker = scale_up_median_ms(ServiceKind::Nginx, ClusterKind::Docker);
    let k8s = scale_up_median_ms(ServiceKind::Nginx, ClusterKind::Kubernetes);
    assert!(
        (350.0..1000.0).contains(&docker),
        "Docker nginx scale-up total {docker} ms (paper: <1 s)"
    );
    assert!(
        (2200.0..3900.0).contains(&k8s),
        "K8s nginx scale-up total {k8s} ms (paper: ~3 s)"
    );
    assert!(k8s / docker > 3.0, "K8s must be several times slower");
}

#[test]
fn fig11_asm_and_nginx_indistinguishable_resnet_much_slower() {
    // "there is no notable difference between starting the tiny Assembler
    // web server and the far larger Nginx instance. As expected, ResNet
    // takes significantly longer to start."
    let asm = scale_up_median_ms(ServiceKind::Asm, ClusterKind::Docker);
    let nginx = scale_up_median_ms(ServiceKind::Nginx, ClusterKind::Docker);
    let resnet = scale_up_median_ms(ServiceKind::ResNet, ClusterKind::Docker);
    assert!(
        (asm - nginx).abs() < 250.0,
        "asm {asm} vs nginx {nginx}: no notable difference expected"
    );
    assert!(resnet > nginx + 1500.0, "resnet {resnet} vs nginx {nginx}");
}

#[test]
fn fig12_create_adds_roughly_100ms() {
    let scale_only = scale_up_median_ms(ServiceKind::Nginx, ClusterKind::Docker);
    let with_create = {
        let samples = run_seeds(&(0..15).collect::<Vec<u64>>(), 0, |seed| {
            let cfg = ScenarioConfig::default()
                .with_phase(PhaseSetup::ImagesCached)
                .with_seed(seed);
            measure_first_request(cfg).0
        });
        median(samples)
    };
    let overhead = with_create - scale_only;
    assert!(
        (30.0..350.0).contains(&overhead),
        "create overhead {overhead} ms (paper: ~100 ms)"
    );
}

#[test]
fn fig16_running_instance_serves_in_milliseconds() {
    let cfg = ScenarioConfig::default().with_phase(PhaseSetup::Running);
    let (ms, dep) = measure_first_request(cfg);
    assert!(dep.is_none(), "no deployment needed");
    assert!(ms < 5.0, "running nginx answered in {ms} ms (paper: ~1 ms)");

    // ResNet inference is orders of magnitude slower even when running.
    let cfg = ScenarioConfig::default()
        .with_service(ServiceKind::ResNet)
        .with_phase(PhaseSetup::Running);
    let (resnet_ms, _) = measure_first_request(cfg);
    assert!(
        resnet_ms > 100.0,
        "resnet inference {resnet_ms} ms must dominate"
    );
}

#[test]
fn cold_start_includes_pull_and_dominates() {
    let cfg = ScenarioConfig::default()
        .with_phase(PhaseSetup::Cold)
        .with_seed(3);
    let (ms, dep) = measure_first_request(cfg);
    let dep = dep.expect("cold start deploys");
    assert!(dep.pull.is_some(), "cold start pulls the image");
    let (p0, p1) = dep.pull.unwrap();
    let pull_ms = (p1 - p0).as_millis_f64();
    assert!(
        pull_ms > 1000.0,
        "nginx pull takes seconds, got {pull_ms} ms"
    );
    assert!(ms > pull_ms, "total {ms} includes the pull {pull_ms}");
}

#[test]
fn bigflows_replay_matches_paper_marginals() {
    let (trace, result) = run_bigflows(ScenarioConfig::default().with_seed(7));
    assert_eq!(trace.requests.len(), 1708);
    // every request completes
    assert_eq!(result.records.len(), 1708);
    assert_eq!(result.lost, 0);
    // exactly 42 deployments: one per service, no re-deployments (Fig. 10)
    assert_eq!(result.deployments.len(), 42);
    // Every service deployed once; requests during deployment piggyback.
    assert!(result.held_requests >= 42);
    // The vast majority of requests hit an already-running instance and are
    // served in milliseconds.
    let totals = result.time_totals_ms();
    let fast = totals.iter().filter(|&&t| t < 10.0).count();
    assert!(
        fast as f64 > 0.9 * totals.len() as f64,
        "{fast}/{} requests fast",
        totals.len()
    );
    // Deployment-triggering requests pay the on-demand cost.
    let first_ms = result.median_first_request_ms();
    assert!(
        (350.0..1500.0).contains(&first_ms),
        "median first-request total {first_ms} ms on Docker"
    );
}

#[test]
fn bigflows_deterministic_per_seed() {
    let (_, a) = run_bigflows(ScenarioConfig::default().with_seed(11));
    let (_, b) = run_bigflows(ScenarioConfig::default().with_seed(11));
    assert_eq!(a.records, b.records);
    assert_eq!(a.switch_stats, b.switch_stats);
    let (_, c) = run_bigflows(ScenarioConfig::default().with_seed(12));
    assert_ne!(a.records, c.records);
}

#[test]
fn without_waiting_policy_first_requests_fast_via_cloud() {
    let mut cfg = ScenarioConfig::default().with_seed(5);
    cfg.scheduler = SchedulerSpec::nearest_ready_first();
    let (_, result) = run_bigflows(cfg);
    assert_eq!(result.records.len(), 1708);
    // First requests are *not* held: they detour to the cloud while the edge
    // deploys, so no request waits for a container start...
    assert_eq!(result.held_requests, 0);
    assert!(result.cloud_forwards > 0);
    // ...but cloud detours pay the WAN RTT (~50 ms), far below the ~600 ms
    // deployment wait.
    let slow = result
        .time_totals_ms()
        .iter()
        .copied()
        .fold(0.0_f64, f64::max);
    assert!(slow < 600.0, "worst request {slow} ms without waiting");
    // deployments still happen in the background
    assert_eq!(result.deployments.len(), 42);
    assert!(result.retargets > 0, "flows move to the edge once ready");
}

#[test]
fn hybrid_scheduler_uses_docker_then_k8s() {
    let mut cfg = ScenarioConfig::default().with_seed(6);
    cfg.scheduler = SchedulerSpec::hybrid_docker_first();
    cfg.backends = vec![ClusterKind::Docker, ClusterKind::Kubernetes];
    let (_, result) = run_bigflows(cfg);
    assert_eq!(result.records.len(), 1708);
    // Both backends deploy every service: 42 on Docker (waiting) + 42 on K8s
    // (background).
    assert_eq!(result.deployments.len(), 84);
    let docker_deps = result
        .deployments
        .iter()
        .filter(|d| d.kind == ClusterKind::Docker)
        .count();
    assert_eq!(docker_deps, 42);
    assert!(result.retargets > 0, "K8s takes over once ready");
    // First responses come from Docker: median first-request well under K8s'
    // ~3 s.
    let first_ms = result.median_first_request_ms();
    assert!(
        first_ms < 1500.0,
        "hybrid first-request median {first_ms} ms must be Docker-fast"
    );
}

#[test]
fn idle_scale_down_reclaims_instances() {
    let mut cfg = ScenarioConfig::default().with_seed(8);
    cfg.controller.scale_down_idle = true;
    cfg.controller.memory_idle_timeout = simcore::SimDuration::from_secs(30);
    let (_, result) = run_bigflows(cfg);
    assert!(result.scale_downs > 0, "idle instances must be reclaimed");
    // Scale-down causes re-deployments: more than 42 total.
    assert!(
        result.deployments.len() > 42,
        "re-deployments after scale-down, got {}",
        result.deployments.len()
    );
    assert_eq!(result.records.len(), 1708, "every request still answered");
}

#[test]
fn private_registry_speeds_up_cold_start() {
    let cold = |private: bool| {
        let samples = run_seeds(&(0..9).collect::<Vec<u64>>(), 0, |seed| {
            let mut cfg = ScenarioConfig::default()
                .with_phase(PhaseSetup::Cold)
                .with_seed(seed);
            cfg.private_registry = private;
            measure_first_request(cfg).0
        });
        median(samples)
    };
    let wan = cold(false);
    let lan = cold(true);
    assert!(
        wan - lan > 800.0,
        "private registry saves seconds: wan={wan} lan={lan}"
    );
}

#[test]
fn hierarchy_warm_far_edge_beats_cloud_detour() {
    use simcore::SimDuration;
    use testbed::topology::SiteSpec;

    // Near Pi-class edge (cold) + far EGS edge with the service running:
    // paper §IV-A2 — the without-waiting detour goes to the farther edge,
    // not the cloud, and is several times faster.
    let mut with_far = ScenarioConfig::default().with_seed(3);
    with_far.sites = vec![
        (
            SiteSpec::pi("near-edge", SimDuration::from_micros(300)),
            ClusterKind::Docker,
        ),
        (
            SiteSpec {
                latency: SimDuration::from_millis(8),
                ..SiteSpec::egs("far-edge")
            },
            ClusterKind::Docker,
        ),
    ];
    with_far.scheduler = SchedulerSpec::nearest_ready_first();
    with_far.phase_setup = PhaseSetup::Running;
    with_far.prewarm_sites = Some(vec![1]);
    let (_, far) = run_bigflows(with_far);

    let mut cloud_only = ScenarioConfig::default().with_seed(3);
    cloud_only.sites = vec![(
        SiteSpec::pi("near-edge", SimDuration::from_micros(300)),
        ClusterKind::Docker,
    )];
    cloud_only.scheduler = SchedulerSpec::nearest_ready_first();
    let (_, cloud) = run_bigflows(cloud_only);

    assert_eq!(far.cloud_forwards, 0, "warm far edge absorbs the detours");
    assert!(
        cloud.cloud_forwards > 0,
        "without it, detours go to the cloud"
    );
    let far_first = far.median_first_request_ms();
    let cloud_first = cloud.median_first_request_ms();
    assert!(
        far_first < cloud_first / 2.0,
        "edge detour ({far_first} ms) must be far cheaper than cloud ({cloud_first} ms)"
    );
    assert!(
        far.retargets > 0,
        "flows flip to the near edge once it is up"
    );
    // steady state: both serve from the near edge in milliseconds
    assert!(far.median_time_total_ms() < 10.0);
}

#[test]
fn pi_class_edge_is_slower_to_deploy_than_egs() {
    use simcore::SimDuration;
    use testbed::topology::SiteSpec;

    let run = |site: SiteSpec| {
        let mut cfg = ScenarioConfig::default()
            .with_seed(4)
            .with_phase(PhaseSetup::Created);
        cfg.sites = vec![(site, ClusterKind::Docker)];
        measure_first_request(cfg).0
    };
    let pi = run(SiteSpec::pi("pi-edge", SimDuration::from_micros(300)));
    let egs = run(SiteSpec::egs("egs-edge"));
    assert!(
        pi > egs * 2.0,
        "Pi-class containerd ({pi} ms) must be ~3.5x slower than EGS ({egs} ms)"
    );
}

#[test]
fn hot_resnet_requests_queue_on_the_instance() {
    // ResNet inference takes ~190 ms per request; the most popular trace
    // service receives bursts, so requests serialize on the single instance
    // and tail latency grows well beyond one inference time.
    let mut cfg = ScenarioConfig::default().with_seed(9);
    cfg.service = ServiceKind::ResNet;
    let (_, result) = run_bigflows(cfg);
    let mut p = simcore::Percentiles::new();
    for r in result.records.iter().filter(|r| !r.triggered_deployment) {
        p.record_duration(r.time_total());
    }
    let p50 = p.median();
    let p99 = p.p99();
    // one inference (~190 ms) + upload + typically some queueing behind
    // earlier requests on the popular services
    assert!(
        (120.0..600.0).contains(&p50),
        "steady-state median ≈ one-or-two inferences: {p50} ms"
    );
    // At this load (~0.6 req/s against 190 ms service time) utilization is
    // light; bursts still queue at least half an extra inference in the tail.
    assert!(
        p99 > p50 + 100.0,
        "queueing must inflate the tail: p50={p50} p99={p99}"
    );
}

#[test]
fn wasm_backend_runs_the_full_trace() {
    let mut cfg = ScenarioConfig::default().with_seed(10);
    cfg.service = ServiceKind::WasmWeb;
    cfg.backends = vec![ClusterKind::Wasm];
    let (_, result) = run_bigflows(cfg);
    assert_eq!(result.records.len(), 1708);
    assert_eq!(result.deployments.len(), 42);
    assert_eq!(result.lost, 0);
    // first requests complete in tens of ms (instantiation, not container start)
    let first = result.median_first_request_ms();
    assert!(first < 200.0, "wasm first-request median {first} ms");
    // well below Docker's ~470 ms
    let (_, docker) = run_bigflows(ScenarioConfig::default().with_seed(10));
    assert!(first < docker.median_first_request_ms() / 2.0);
}

#[test]
fn wasm_first_hybrid_serves_fast_then_hands_over_to_containers() {
    // §VIII side-by-side: the wasm runtime answers first requests after a
    // tiny instantiation wait; a Docker cluster (running the same module in
    // a container wrapper) is deployed as BEST and takes over.
    let mut cfg = ScenarioConfig::default().with_seed(21);
    cfg.service = ServiceKind::WasmWeb;
    cfg.backends = vec![ClusterKind::Wasm, ClusterKind::Docker];
    cfg.scheduler = SchedulerSpec::hybrid_wasm_first();
    let (_, result) = run_bigflows(cfg);
    assert_eq!(result.records.len(), 1708);
    assert_eq!(result.lost, 0);
    // every service deploys on the wasm runtime (FAST, with tiny waiting)
    // and on Docker (BEST, in background)
    assert_eq!(result.deployments.len(), 84);
    assert!(result.retargets > 0, "containers take over once up");
    // even the held first requests are fast — that is the wasm win
    let first = result.median_first_request_ms();
    assert!(
        first < 200.0,
        "wasm-first held requests must be fast, got {first} ms"
    );
}

#[test]
fn trace_survives_instance_crashes() {
    // Crashes every ~20 s on a Docker-only edge: the cluster does not
    // self-heal, so the controller must redeploy on the next request to the
    // crashed service. Every request still completes.
    let mut cfg = ScenarioConfig::default().with_seed(13);
    cfg.crash_mtbf = Some(simcore::SimDuration::from_secs(20));
    let (_, result) = run_bigflows(cfg);
    assert!(
        result.crashes_injected > 5,
        "crashes: {}",
        result.crashes_injected
    );
    assert_eq!(result.records.len(), 1708, "every request answered");
    assert_eq!(result.lost, 0);
    // recovery redeployments on top of the 42 first-time deployments
    assert!(
        result.deployments.len() > 42,
        "deployments {} must include crash recoveries",
        result.deployments.len()
    );

    // On Kubernetes the kubelet self-heals: far fewer controller-driven
    // redeployments for the same crash schedule.
    let mut cfg = ScenarioConfig::default()
        .with_seed(13)
        .with_backend(ClusterKind::Kubernetes);
    cfg.crash_mtbf = Some(simcore::SimDuration::from_secs(20));
    let (_, k8s) = run_bigflows(cfg);
    assert_eq!(k8s.records.len(), 1708);
    assert!(
        k8s.deployments.len() < result.deployments.len(),
        "K8s self-healing ({}) should beat Docker+controller ({})",
        k8s.deployments.len(),
        result.deployments.len()
    );
}

#[test]
fn service_backend_matrix_smoke() {
    // Every Table I service on both container backends completes its first
    // request with a sane total; the wasm service on the wasm runtime.
    for service in ServiceKind::ALL {
        for backend in [ClusterKind::Docker, ClusterKind::Kubernetes] {
            let cfg = ScenarioConfig::default()
                .with_service(service)
                .with_backend(backend)
                .with_phase(PhaseSetup::Created)
                .with_seed(2);
            let (ms, dep) = measure_first_request(cfg);
            assert!(ms.is_finite() && ms > 0.0, "{service}/{backend}: {ms}");
            assert!(ms < 30_000.0, "{service}/{backend}: {ms} ms");
            assert!(dep.is_some(), "{service}/{backend}: must deploy");
        }
    }
    let cfg = ScenarioConfig::default()
        .with_service(ServiceKind::WasmWeb)
        .with_backend(ClusterKind::Wasm)
        .with_phase(PhaseSetup::Created)
        .with_seed(2);
    let (ms, _) = measure_first_request(cfg);
    assert!(ms.is_finite() && ms < 1000.0, "wasm: {ms} ms");
}

#[test]
fn wasm_trace_absorbs_crashes_invisibly() {
    // On the wasm runtime a crashed instance re-instantiates in
    // milliseconds: even with frequent crashes, no controller redeployments
    // are needed and the latency profile stays flat.
    let mut cfg = ScenarioConfig::default().with_seed(19);
    cfg.service = ServiceKind::WasmWeb;
    cfg.backends = vec![ClusterKind::Wasm];
    cfg.crash_mtbf = Some(simcore::SimDuration::from_secs(10));
    let (_, r) = run_bigflows(cfg);
    assert!(r.crashes_injected > 10);
    assert_eq!(r.records.len(), 1708);
    assert_eq!(r.lost, 0);
    assert_eq!(
        r.deployments.len(),
        42,
        "no crash-recovery redeployments needed"
    );
    assert!(r.median_time_total_ms() < 10.0);
}
