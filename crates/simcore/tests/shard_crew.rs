//! Cross-thread protocol coverage for [`simcore::ShardCrew`], sized so Miri
//! can interpret it (CI runs `cargo miri test -p simcore --test shard_crew`):
//! a few shards, a few windows, real `thread::spawn` + mpsc traffic. The
//! actors deliberately hold non-`Send` state (`Rc<RefCell<..>>`) — the crew's
//! contract is that actors are *built* on their worker thread and only plain
//! commands, reports and finals ever cross a thread boundary.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::{ShardActor, ShardCrew, ShardRunner, SimDuration, SimTime};

struct CounterShard {
    id: usize,
    runner: ShardRunner<u64>,
    /// Non-`Send` on purpose: proves shard state never migrates.
    log: Rc<RefCell<Vec<u64>>>,
}

struct WindowCmd {
    end: SimTime,
    /// Messages handed over at the barrier, landing in this window or later.
    inject: Vec<(SimTime, u64)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct WindowReport {
    shard: usize,
    executed: u64,
    sum: u64,
    horizon: SimTime,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FinalState {
    shard: usize,
    events: u64,
    windows: u64,
    log: Vec<u64>,
}

impl ShardActor for CounterShard {
    type Cmd = WindowCmd;
    type Report = WindowReport;
    type Final = FinalState;

    fn run_window(&mut self, cmd: WindowCmd) -> WindowReport {
        for (at, payload) in cmd.inject {
            self.runner.inject(at, payload);
        }
        self.runner.begin_window(cmd.end);
        let mut sum = 0;
        while let Some((_, payload)) = self.runner.pop() {
            sum += payload;
            self.log.borrow_mut().push(payload);
        }
        let executed = self.runner.end_window();
        WindowReport {
            shard: self.id,
            executed,
            sum,
            horizon: self.runner.horizon(),
        }
    }

    fn finish(self) -> FinalState {
        FinalState {
            shard: self.id,
            events: self.runner.events(),
            windows: self.runner.windows(),
            log: self.log.borrow().clone(),
        }
    }
}

const SHARDS: usize = 3;
const WINDOWS: usize = 4;

fn window_end(w: usize) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(10 * (w as u64 + 1))
}

/// Drive a small federation: each shard starts with one local event per
/// window slot, and after every window each shard's report `sum` is relayed
/// to the next shard (ring), landing one window later — barrier-exchanged
/// cross-shard messages, exactly the mesh engine's traffic shape.
fn drive(threads: usize) -> (Vec<Vec<WindowReport>>, Vec<FinalState>) {
    let mut crew: ShardCrew<CounterShard> = ShardCrew::spawn(SHARDS, threads, |id| {
        let mut runner = ShardRunner::new();
        for w in 0..WINDOWS {
            runner.inject(
                SimTime::ZERO + SimDuration::from_millis(10 * w as u64 + id as u64 + 1),
                (w * 100 + id) as u64,
            );
        }
        CounterShard {
            id,
            runner,
            log: Rc::new(RefCell::new(Vec::new())),
        }
    });
    assert_eq!(crew.effective_threads(), threads.clamp(1, SHARDS));

    let mut all_reports = Vec::new();
    let mut pending: Vec<Vec<(SimTime, u64)>> = vec![Vec::new(); SHARDS];
    for w in 0..WINDOWS {
        let cmds = pending
            .drain(..)
            .map(|inject| WindowCmd {
                end: window_end(w),
                inject,
            })
            .collect();
        let reports = crew.run_windows(cmds);
        pending = vec![Vec::new(); SHARDS];
        if w + 1 < WINDOWS {
            for r in &reports {
                // Relay each sum to the next shard in the ring; the message
                // lands strictly after every shard's new horizon.
                pending[(r.shard + 1) % SHARDS]
                    .push((window_end(w) + SimDuration::from_millis(1), r.sum));
            }
        }
        all_reports.push(reports);
    }
    (all_reports, crew.finish())
}

#[test]
fn reports_and_finals_are_thread_invariant_and_in_shard_order() {
    let (base_reports, base_finals) = drive(1);
    for (w, reports) in base_reports.iter().enumerate() {
        let order: Vec<usize> = reports.iter().map(|r| r.shard).collect();
        assert_eq!(
            order,
            vec![0, 1, 2],
            "window {w} reports out of shard order"
        );
    }
    assert!(
        base_reports
            .iter()
            .skip(1)
            .flatten()
            .any(|r| r.executed > 1),
        "no barrier-relayed message ever executed: {base_reports:?}"
    );
    for threads in [2, 3, 8] {
        let (reports, finals) = drive(threads);
        assert_eq!(
            reports, base_reports,
            "reports diverged at {threads} threads"
        );
        assert_eq!(finals, base_finals, "finals diverged at {threads} threads");
    }
}

#[test]
fn every_event_is_executed_exactly_once() {
    let (_, finals) = drive(2);
    // WINDOWS local events per shard, plus one relayed message per shard per
    // non-final window (the ring relay).
    let relayed = (WINDOWS - 1) as u64;
    for f in &finals {
        assert_eq!(f.windows, WINDOWS as u64, "{f:?}");
        assert_eq!(f.events, WINDOWS as u64 + relayed, "{f:?}");
        assert_eq!(f.log.len() as u64, f.events, "{f:?}");
    }
    let mut shards: Vec<usize> = finals.iter().map(|f| f.shard).collect();
    shards.dedup();
    assert_eq!(shards, vec![0, 1, 2], "finals out of shard order");
}
