//! Model-based property tests: the timing-wheel `EventQueue` must behave
//! exactly like the retained heap+tombstone reference implementation
//! (`simcore::queue::reference::HeapEventQueue` — the pre-wheel event core)
//! under arbitrary push/cancel/pop/peek interleavings: same winners, same
//! order, same cancel semantics, including far-future overflow slots,
//! same-instant FIFO bursts and cancel-after-fire on stale ids.

use proptest::prelude::*;
use simcore::queue::reference::{HeapEventId, HeapEventQueue};
use simcore::{EventQueue, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Push {
        time_ns: u64,
        value: u32,
    },
    /// Cancel the n-th still-tracked id (modulo live count).
    Cancel(usize),
    /// Cancel an id that already fired or was already cancelled — both
    /// implementations must report `false`.
    CancelStale(usize),
    Pop,
    Peek,
}

/// Times mix a dense band (forcing same-instant FIFO collisions), digit-
/// boundary values (cascade edges) and far-future values up to `u64::MAX`
/// (overflow slots).
fn time_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        5 => 0u64..1000,
        2 => 0u64..300_000_000_000,
        1 => prop_oneof![
            Just(63u64), Just(64), Just(4095), Just(4096),
            Just(64u64.pow(5) - 1), Just(64u64.pow(5)),
            Just(u64::MAX - 1), Just(u64::MAX),
        ],
        1 => any::<u64>(),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (time_strategy(), any::<u32>())
            .prop_map(|(time_ns, value)| Op::Push { time_ns, value }),
        1 => (0usize..16).prop_map(Op::Cancel),
        1 => (0usize..16).prop_map(Op::CancelStale),
        4 => Just(Op::Pop),
        2 => Just(Op::Peek),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// The wheel and the retained heap reference, driven in lockstep.
    #[test]
    fn wheel_matches_heap_reference(ops in prop::collection::vec(op_strategy(), 0..250)) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        // Ids issued in lockstep as (wheel id, heap id, time, push order);
        // moved to `stale_ids` once cancelled or fired.
        let mut live_ids: Vec<(simcore::EventId, HeapEventId, u64, usize)> = Vec::new();
        let mut stale_ids: Vec<(simcore::EventId, HeapEventId)> = Vec::new();
        let mut pushed = 0usize;

        for op in ops {
            match op {
                Op::Push { time_ns, value } => {
                    let wid = wheel.push(SimTime::from_nanos(time_ns), value);
                    let hid = heap.push(SimTime::from_nanos(time_ns), value);
                    live_ids.push((wid, hid, time_ns, pushed));
                    pushed += 1;
                }
                Op::Cancel(n) => {
                    if !live_ids.is_empty() {
                        let (wid, hid, _, _) = live_ids.remove(n % live_ids.len());
                        let w = wheel.cancel(wid);
                        let h = heap.cancel(hid);
                        prop_assert_eq!(w, h, "cancel outcome must agree");
                        stale_ids.push((wid, hid));
                    }
                }
                Op::CancelStale(n) => {
                    if !stale_ids.is_empty() {
                        let (wid, hid) = stale_ids[n % stale_ids.len()];
                        prop_assert!(!wheel.cancel(wid), "stale id must be a no-op");
                        prop_assert!(!heap.cancel(hid));
                    }
                }
                Op::Pop => {
                    let w = wheel.pop();
                    let h = heap.pop();
                    prop_assert_eq!(&w, &h, "pop must agree");
                    if w.is_some() {
                        // The fired entry is the live one with the minimal
                        // (time, push order); its ids go stale.
                        let i = live_ids
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &(_, _, t, ord))| (t, ord))
                            .map(|(i, _)| i)
                            .expect("a live id must back a successful pop");
                        let (wid, hid, _, _) = live_ids.remove(i);
                        stale_ids.push((wid, hid));
                    }
                }
                Op::Peek => {
                    prop_assert_eq!(
                        wheel.peek_time(),
                        heap.peek_time(),
                        "peek_time must agree"
                    );
                }
            }
            prop_assert_eq!(wheel.len(), heap.len(), "live counts must agree");
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
            prop_assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
        }

        // Drain both: remaining orders must agree completely, and every id
        // that ever existed must now be stale in both implementations.
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(&w, &h, "drain must agree");
            if w.is_none() {
                break;
            }
        }
        let remaining = live_ids.into_iter().map(|(wid, hid, _, _)| (wid, hid));
        for (wid, hid) in remaining.chain(stale_ids) {
            prop_assert!(!wheel.cancel(wid), "cancel-after-fire must be false");
            prop_assert!(!heap.cancel(hid));
        }
    }

    /// Same-instant bursts: strict FIFO at every colliding timestamp, in
    /// both implementations.
    #[test]
    fn same_instant_fifo_matches_reference(
        burst in prop::collection::vec((0u64..4, any::<u32>()), 1..200)
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for &(slot, value) in &burst {
            // Four distinct instants, many collisions per instant.
            let t = SimTime::from_nanos(slot * 1_000);
            wheel.push(t, value);
            heap.push(t, value);
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(&w, &h);
            if w.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pops_are_monotone_in_time(times in prop::collection::vec(time_strategy(), 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
    }

    #[test]
    fn peek_agrees_with_pop(times in prop::collection::vec(time_strategy(), 0..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        while let Some(peek) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            prop_assert_eq!(peek, t);
        }
        prop_assert!(q.pop().is_none());
    }

    /// Pushing behind the already-popped minimum (events "in the past") must
    /// keep exact (time, seq) order — the overdue path vs. the reference.
    #[test]
    fn past_pushes_match_reference(
        future in prop::collection::vec(500u64..1000, 1..20),
        past in prop::collection::vec(0u64..600, 1..20),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        for (i, &t) in future.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), i);
            heap.push(SimTime::from_nanos(t), i);
        }
        // Advance the cursor past the earliest future event.
        prop_assert_eq!(wheel.pop(), heap.pop());
        for (i, &t) in past.iter().enumerate() {
            wheel.push(SimTime::from_nanos(t), 1000 + i);
            heap.push(SimTime::from_nanos(t), 1000 + i);
        }
        loop {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            let w = wheel.pop();
            prop_assert_eq!(&w, &heap.pop());
            if w.is_none() {
                break;
            }
        }
    }
}
