//! Model-based property tests: the EventQueue must behave exactly like a
//! naive reference model (a sorted list with FIFO tie-breaking and
//! tombstone-free cancellation) under arbitrary operation sequences.

use proptest::prelude::*;
use simcore::{EventQueue, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Push {
        time_ns: u64,
        value: u32,
    },
    /// Cancel the n-th still-tracked id (modulo live count).
    Cancel(usize),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..1000, any::<u32>()).prop_map(|(time_ns, value)| Op::Push { time_ns, value }),
        1 => (0usize..16).prop_map(Op::Cancel),
        3 => Just(Op::Pop),
    ]
}

/// The reference model: a Vec of (time, seq, value, cancelled).
#[derive(Default)]
struct Model {
    entries: Vec<(u64, u64, u32, bool)>,
    next_seq: u64,
}

impl Model {
    fn push(&mut self, time: u64, value: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((time, seq, value, false));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        for e in &mut self.entries {
            if e.1 == seq && !e.3 {
                e.3 = true;
                return true;
            }
        }
        false
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.3)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let e = self.entries.remove(idx);
        Some((e.0, e.2))
    }

    fn len(&self) -> usize {
        self.entries.iter().filter(|e| !e.3).count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut queue = EventQueue::new();
        let mut model = Model::default();
        // parallel id tracking: queue ids and model seqs issued in lockstep
        let mut live_ids = Vec::new();

        for op in ops {
            match op {
                Op::Push { time_ns, value } => {
                    let qid = queue.push(SimTime::from_nanos(time_ns), value);
                    let mseq = model.push(time_ns, value);
                    live_ids.push((qid, mseq));
                }
                Op::Cancel(n) => {
                    if !live_ids.is_empty() {
                        let (qid, mseq) = live_ids[n % live_ids.len()];
                        let q = queue.cancel(qid);
                        let m = model.cancel(mseq);
                        prop_assert_eq!(q, m, "cancel outcome must agree");
                    }
                }
                Op::Pop => {
                    let q = queue.pop();
                    let m = model.pop();
                    match (q, m) {
                        (None, None) => {}
                        (Some((qt, qv)), Some((mt, mv))) => {
                            prop_assert_eq!(qt.as_nanos(), mt);
                            prop_assert_eq!(qv, mv);
                        }
                        other => prop_assert!(false, "pop mismatch: {:?}", other),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len(), "live counts must agree");
        }

        // Drain both: remaining orders must agree completely.
        loop {
            let q = queue.pop();
            let m = model.pop();
            match (q, m) {
                (None, None) => break,
                (Some((qt, qv)), Some((mt, mv))) => {
                    prop_assert_eq!(qt.as_nanos(), mt);
                    prop_assert_eq!(qv, mv);
                }
                other => prop_assert!(false, "drain mismatch: {:?}", other),
            }
        }
    }

    #[test]
    fn pops_are_monotone_in_time(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
    }

    #[test]
    fn peek_agrees_with_pop(times in prop::collection::vec(0u64..1000, 0..50)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        while let Some(peek) = q.peek_time() {
            let (t, _) = q.pop().unwrap();
            prop_assert_eq!(peek, t);
        }
        prop_assert!(q.pop().is_none());
    }
}
