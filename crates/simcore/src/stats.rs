//! Statistics used by the benchmark harness: streaming summaries (Welford),
//! exact percentiles over collected samples, and time-binned counters for the
//! request/deployment rate figures (Figs. 9–10).

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    pub fn count(&self) -> u64 {
        self.count
    }
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }
    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        self.min
    }
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentiles over a collected sample set.
///
/// Values are stored; [`Percentiles::quantile`] sorts lazily on first query
/// (and caches sortedness). Sample unit is whatever the caller records —
/// the harness uses milliseconds throughout.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    pub fn new() -> Percentiles {
        Percentiles {
            values: Vec::new(),
            sorted: true,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    pub fn extend(&mut self, other: &Percentiles) {
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp: NaN samples sort to the end instead of panicking,
            // so a stray NaN degrades the top quantiles rather than the run.
            self.values.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Quantile by linear interpolation between closest ranks;
    /// `q` in `[0, 1]`. Returns NaN on an empty set.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let w = pos - lo as f64;
            self.values[lo] * (1.0 - w) + self.values[hi] * w
        }
    }

    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
    pub fn p25(&mut self) -> f64 {
        self.quantile(0.25)
    }
    pub fn p75(&mut self) -> f64 {
        self.quantile(0.75)
    }
    pub fn p90(&mut self) -> f64 {
        self.quantile(0.90)
    }
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Counts events into fixed-width time bins — the histogram behind
/// "requests per second over five minutes" (Fig. 9) and
/// "deployments per second" (Fig. 10).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin: SimDuration,
    bins: Vec<u64>,
}

impl TimeSeries {
    /// `horizon` is rounded up to a whole number of bins.
    pub fn new(bin: SimDuration, horizon: SimDuration) -> TimeSeries {
        assert!(!bin.is_zero(), "zero-width bin");
        let n = horizon.as_nanos().div_ceil(bin.as_nanos()).max(1) as usize;
        TimeSeries {
            bin,
            bins: vec![0; n],
        }
    }

    /// Record one event at instant `t`; events past the horizon land in the
    /// final bin so nothing is silently dropped.
    pub fn record(&mut self, t: SimTime) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        let last = self.bins.len() - 1;
        self.bins[idx.min(last)] += 1;
    }

    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
    pub fn peak(&self) -> u64 {
        self.bins.iter().copied().max().unwrap_or(0)
    }

    /// (bin start time in seconds, count) pairs — convenient for printing.
    pub fn points(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = self.bin.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * w, c))
    }
}

/// A histogram with exponentially growing bucket edges — the right shape for
/// latency data spanning sub-millisecond LAN hits to multi-second cold
/// starts.
///
/// ```
/// use simcore::stats::LogHistogram;
/// let mut h = LogHistogram::new(1.0, 2.0, 12); // 1ms, 2ms, 4ms, ... buckets
/// h.record(0.4);
/// h.record(3.0);
/// h.record(700.0);
/// assert_eq!(h.count(), 3);
/// let buckets = h.buckets();
/// assert_eq!(buckets[0].2, 1); // <1ms
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Upper edge of the first bucket.
    first_edge: f64,
    /// Geometric growth factor between bucket edges.
    factor: f64,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    pub fn new(first_edge: f64, factor: f64, buckets: usize) -> LogHistogram {
        assert!(first_edge > 0.0 && factor > 1.0 && buckets >= 2);
        LogHistogram {
            first_edge,
            factor,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Record a sample (same unit as the edges; the harness uses ms).
    pub fn record(&mut self, x: f64) {
        let mut edge = self.first_edge;
        let mut idx = 0;
        while x >= edge && idx + 1 < self.counts.len() {
            edge *= self.factor;
            idx += 1;
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// (lower edge, upper edge, count) triples; the last bucket is open-ended
    /// (`upper = f64::INFINITY`).
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut lo = 0.0;
        let mut hi = self.first_edge;
        for (i, &c) in self.counts.iter().enumerate() {
            let upper = if i + 1 == self.counts.len() {
                f64::INFINITY
            } else {
                hi
            };
            out.push((lo, upper, c));
            lo = hi;
            hi *= self.factor;
        }
        out
    }

    /// Cumulative fraction of samples at or below each bucket's upper edge.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut acc = 0u64;
        self.buckets()
            .into_iter()
            .map(|(_, hi, c)| {
                acc += c;
                (hi, acc as f64 / self.total.max(1) as f64)
            })
            .collect()
    }
}

/// Render a quick ASCII bar chart of a series of labelled values — the harness
/// uses it so every "figure" binary produces a visual shape check in the
/// terminal alongside the exact numbers.
pub fn ascii_bars(rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let n = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {bar:<width$} {v:.1}\n",
            bar = "#".repeat(n)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_nan_mean() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn percentiles_median_odd_even() {
        let mut p = Percentiles::new();
        for x in [5.0, 1.0, 3.0] {
            p.record(x);
        }
        assert_eq!(p.median(), 3.0);
        p.record(7.0);
        assert_eq!(p.median(), 4.0); // interpolated between 3 and 5
    }

    #[test]
    fn percentiles_extremes() {
        let mut p = Percentiles::new();
        for x in 0..100 {
            p.record(x as f64);
        }
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 99.0);
        assert!((p.p90() - 89.1).abs() < 1e-9);
    }

    #[test]
    fn percentiles_empty_nan() {
        let mut p = Percentiles::new();
        assert!(p.median().is_nan());
    }

    #[test]
    fn timeseries_bins_and_overflow() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1), SimDuration::from_secs(5));
        ts.record(SimTime::from_secs_f64(0.2));
        ts.record(SimTime::from_secs_f64(0.9));
        ts.record(SimTime::from_secs_f64(3.0));
        ts.record(SimTime::from_secs_f64(99.0)); // past horizon → last bin
        assert_eq!(ts.bins(), &[2, 0, 0, 1, 1]);
        assert_eq!(ts.total(), 4);
        assert_eq!(ts.peak(), 2);
    }

    #[test]
    fn timeseries_points() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(2), SimDuration::from_secs(4));
        ts.record(SimTime::from_secs_f64(2.5));
        let pts: Vec<(f64, u64)> = ts.points().collect();
        assert_eq!(pts, vec![(0.0, 0), (2.0, 1)]);
    }

    #[test]
    fn log_histogram_buckets_and_cdf() {
        let mut h = LogHistogram::new(1.0, 10.0, 5); // 1, 10, 100, 1000, inf
        for x in [0.5, 0.9, 5.0, 50.0, 500.0, 5000.0, 50000.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        let b = h.buckets();
        assert_eq!(b.len(), 5);
        assert_eq!(b[0].2, 2); // <1
        assert_eq!(b[1].2, 1); // 1..10
        assert_eq!(b[2].2, 1);
        assert_eq!(b[3].2, 1);
        assert_eq!(b[4].2, 2); // overflow bucket
        assert!(b[4].1.is_infinite());
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((cdf[0].1 - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_bars_renders() {
        let rows = vec![("docker".to_string(), 0.5), ("k8s".to_string(), 3.0)];
        let s = ascii_bars(&rows, 10);
        assert!(s.contains("docker"));
        assert!(s.contains("##########"));
    }
}
