//! # simcore — deterministic discrete-event simulation engine
//!
//! This crate provides the foundation every other crate in the workspace builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO tie-breaking
//!   and O(log n) cancellation,
//! * [`rng::SimRng`] — a splittable, seedable random-number generator with *named
//!   streams*, so adding a new consumer of randomness never perturbs existing ones,
//! * [`dist`] — the distributions used to model service times, link jitter and
//!   workload arrival processes,
//! * [`stats`] — streaming summaries, percentile estimation and time-binned counters
//!   used by the benchmark harness,
//! * [`runner`] — a crossbeam-based fan-out runner that executes many independent
//!   (seed, config) simulation replicas in parallel and returns results in seed order,
//! * [`shard_runner`] — conservative-PDES window execution *within* one replica:
//!   the per-shard [`shard_runner::ShardRunner`] horizon primitive and the
//!   [`shard_runner::ShardCrew`] thread-per-shard pool with deterministic
//!   barrier synchronization.
//!
//! Every simulation in this workspace is **deterministic** given `(config, seed)`:
//! each shard's event execution is single-threaded and pure; parallelism happens
//! across replicas ([`runner`]) or across shards between lookahead barriers
//! ([`shard_runner`]), never inside a shard's event stream (see DESIGN.md §7).

#[cfg(feature = "counting-alloc")]
pub mod alloc_count;
pub mod dethash;
pub mod dist;
pub mod fnv;
pub mod queue;
pub mod rng;
pub mod runner;
pub mod shard_runner;
pub mod stats;
pub mod time;

pub use dethash::{det_map_with_capacity, det_set_with_capacity, DetHashMap, DetHashSet};
pub use dist::{Dist, DurationDist};
pub use fnv::FnvStream;
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use runner::{run_seeds, run_seeds_meta, RunnerMeta};
pub use shard_runner::{ShardActor, ShardCrew, ShardRunner};
pub use stats::{LogHistogram, Percentiles, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
