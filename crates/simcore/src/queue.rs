//! The future-event list: a hierarchical timing wheel of `(SimTime, event)`
//! pairs with **deterministic FIFO tie-breaking** and O(1) push/cancel.
//!
//! Determinism is the load-bearing property here. Two events scheduled for the
//! same instant pop in the order they were pushed, so a simulation run is a pure
//! function of `(config, seed)` — which the test suite and the experiment runner
//! both rely on.
//!
//! # Wheel layout
//!
//! Nanosecond timestamps are treated as eleven 6-bit digits (66 bits cover the
//! full `u64` range, so arbitrarily far-future events — up to
//! `SimTime::FAR_FUTURE` — live in the top-level overflow slots). A cursor
//! `cur` tracks the last instant the wheel popped. A live event with time `t`
//! is linked into the bucket at `(level, slot)` where `level` is the most
//! significant 6-bit digit in which `t` differs from `cur` and `slot` is that
//! digit of `t`. Each bucket is a FIFO linked list threaded through a slab, so
//! same-instant events preserve strict `(time, seq)` order; buckets at level 0
//! pin an exact timestamp, buckets at higher levels are cascaded — re-binned
//! one level down relative to the advanced cursor, preserving list order —
//! when the minimum enters their range. Each event cascades at most once per
//! level, so `push`, `cancel` and (amortized) `pop` are O(1) with no per-op
//! hashing; slots are found with bitmap `trailing_zeros`.
//!
//! Events pushed *behind* the cursor (allowed: a handler may schedule work at
//! or before `now`) go to a small `overdue` binary heap keyed by `(time, seq)`;
//! everything in it is strictly earlier than every wheel entry, so ordering
//! stays exact while the wheel's monotone-cursor invariant is preserved.
//!
//! The queue eagerly maintains the index of its minimum entry, which makes
//! [`EventQueue::peek_time`] a true O(1) `&self` accessor.
//!
//! Cancellation marks the slab node dead and bumps its generation:
//! [`EventId`]s are generation-tagged, so a stale id (already fired or already
//! cancelled) is a no-op returning `false` even after the slab slot has been
//! reused. Dead nodes are unlinked lazily when their bucket is next visited.
//!
//! The previous `BinaryHeap` + tombstone-set implementation is retained in
//! [`mod@reference`] as the executable specification; a model-based proptest
//! (`tests/proptest_queue.rs`) proves the wheel equivalent to it over
//! thousands of push/cancel/pop/peek interleavings.

use crate::time::SimTime;

/// Number of 6-bit digit levels (11 × 6 = 66 bits ≥ 64).
const LEVELS: usize = 11;
/// Slots per level (one 6-bit digit).
const SLOTS: usize = 64;
const DIGIT_BITS: u32 = 6;
const NIL: u32 = u32::MAX;

/// Identifies a scheduled event so it can be cancelled before it fires.
///
/// Generation-tagged: once the event fires or is cancelled the id goes stale,
/// and [`EventQueue::cancel`] on a stale id returns `false` — even if the
/// internal slot has since been reused for a new event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    index: u32,
    generation: u32,
}

struct Node<E> {
    time: SimTime,
    seq: u64,
    generation: u32,
    /// Next node in the same bucket (FIFO), or `NIL`.
    next: u32,
    /// `None` once fired or cancelled (and while on the free list).
    event: Option<E>,
}

/// One FIFO bucket: slab indices of its first and last node.
#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

/// `(level, slot)` of time `t` relative to cursor `cur`, for `t >= cur`.
#[inline]
fn level_slot(cur: u64, t: u64) -> (usize, usize) {
    let x = cur ^ t;
    if x == 0 {
        (0, (t & (SLOTS as u64 - 1)) as usize)
    } else {
        let level = ((63 - x.leading_zeros()) / DIGIT_BITS) as usize;
        let slot = ((t >> (DIGIT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }
}

/// A deterministic future-event list.
///
/// ```
/// use simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "b");
/// q.push(SimTime::from_nanos(5), "a");
/// let id = q.push(SimTime::from_nanos(7), "dropped");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Slab of event nodes; `free` holds reusable indices.
    nodes: Vec<Node<E>>,
    free: Vec<u32>,
    /// `LEVELS × SLOTS` FIFO buckets, indexed `level * SLOTS + slot`.
    buckets: Vec<Bucket>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Events pushed behind the cursor, exact `(time, seq)` order.
    overdue: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
    /// Time of the last wheel pop; wheel entries are all `>= cur`, overdue
    /// entries all `< cur`.
    cur: u64,
    /// Slab index of the live minimum (`NIL` when empty). Kept normalized:
    /// either the overdue heap's top or the head of a level-0 bucket.
    min: u32,
    live: usize,
    peak: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            buckets: vec![EMPTY_BUCKET; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            overdue: std::collections::BinaryHeap::new(),
            cur: 0,
            min: NIL,
            live: 0,
            peak: 0,
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns an id usable with
    /// [`EventQueue::cancel`]. Times at or before the last popped instant are
    /// fine: the queue is a strict `(time, seq)` priority queue, so an event
    /// pushed "in the past" simply becomes the next minimum.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let index = self.alloc(time, seq, event);
        let generation = self.nodes[index as usize].generation;

        let t = time.as_nanos();
        if t < self.cur {
            self.overdue.push(std::cmp::Reverse((t, seq, index)));
        } else {
            let (level, slot) = level_slot(self.cur, t);
            self.link(level, slot, index);
        }

        self.live += 1;
        if self.live > self.peak {
            self.peak = self.live;
        }
        // A fresh push has the largest seq, so it only becomes the minimum on
        // a strictly earlier time.
        if self.min == NIL || t < self.nodes[self.min as usize].time.as_nanos() {
            self.min = index;
        }
        EventId { index, generation }
    }

    /// Cancel a scheduled event. Returns `true` if the event was still pending
    /// (i.e. had not fired and had not already been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(node) = self.nodes.get_mut(id.index as usize) else {
            return false;
        };
        if node.generation != id.generation || node.event.is_none() {
            return false;
        }
        node.event = None;
        node.generation = node.generation.wrapping_add(1);
        self.live -= 1;
        // The node stays linked in its bucket (or overdue heap) and is
        // reclaimed when that container is next visited.
        if self.min == id.index {
            self.advance_min();
        }
        true
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.min == NIL {
            return None;
        }
        let index = self.min;
        let t = self.nodes[index as usize].time.as_nanos();
        if t < self.cur {
            // The minimum lives in the overdue heap, and cancellations of its
            // top are cleaned eagerly, so the live top is exactly `index`.
            let top = self.overdue.pop();
            debug_assert_eq!(top.map(|std::cmp::Reverse((_, _, i))| i), Some(index));
        } else {
            // A push may have left the minimum in a higher-level bucket;
            // cascade until it sits in a level-0 bucket. The cursor only
            // advances up to the bucket base (≤ t), so `index` stays the min.
            if level_slot(self.cur, t).0 != 0 {
                self.advance_min();
                debug_assert_eq!(self.min, index);
            }
            let slot = level_slot(self.cur, t).1;
            // Cancelled same-instant predecessors may still be linked ahead
            // of the minimum; reclaim them, then unlink the minimum itself.
            loop {
                let head = self.buckets[slot].head;
                if head == index {
                    break;
                }
                debug_assert!(self.nodes[head as usize].event.is_none());
                self.unlink_head(0, slot, head);
                self.free.push(head);
            }
            self.unlink_head(0, slot, index);
            self.cur = t;
        }
        let node = &mut self.nodes[index as usize];
        let time = node.time;
        let event = node.event.take().expect("minimum node is live");
        node.generation = node.generation.wrapping_add(1);
        self.free.push(index);
        self.live -= 1;
        self.advance_min();
        Some((time, event))
    }

    /// The timestamp of the earliest live event, if any. O(1), `&self`.
    pub fn peek_time(&self) -> Option<SimTime> {
        (self.min != NIL).then(|| self.nodes[self.min as usize].time)
    }

    /// `(time, seq)` of the earliest live event, if any. O(1), `&self`.
    ///
    /// The sequence number totally orders same-instant events (FIFO push
    /// order), which lets a caller merging an *external* sorted stream with
    /// the queue decide ties exactly: an external item ranks before the queue
    /// head iff it would have been pushed with a smaller seq.
    pub fn peek_time_seq(&self) -> Option<(SimTime, u64)> {
        (self.min != NIL).then(|| {
            let node = &self.nodes[self.min as usize];
            (node.time, node.seq)
        })
    }

    /// Pop the earliest live event only if `pred(time, &event)` accepts it.
    ///
    /// This is the batch-drain primitive: a caller can peel a maximal run of
    /// same-timestamp events of one kind off the head of the queue without
    /// popping (and having to re-push, perturbing seq order) the first event
    /// that does not belong to the batch.
    pub fn pop_if(&mut self, pred: impl FnOnce(SimTime, &E) -> bool) -> Option<(SimTime, E)> {
        if self.min == NIL {
            return None;
        }
        let node = &self.nodes[self.min as usize];
        let event = node.event.as_ref().expect("minimum node is live");
        if !pred(node.time, event) {
            return None;
        }
        self.pop()
    }

    /// Pre-size the node slab for `additional` more live events, avoiding
    /// incremental slab growth on the hot path.
    pub fn reserve(&mut self, additional: usize) {
        self.nodes.reserve(additional);
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total events ever scheduled (diagnostic; monotone).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// High-water mark of live entries over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    fn alloc(&mut self, time: SimTime, seq: u64, event: E) -> u32 {
        if let Some(index) = self.free.pop() {
            let node = &mut self.nodes[index as usize];
            node.time = time;
            node.seq = seq;
            node.next = NIL;
            node.event = Some(event);
            index
        } else {
            let index = u32::try_from(self.nodes.len()).expect("slab fits in u32 indices");
            assert_ne!(index, NIL, "event slab full");
            self.nodes.push(Node {
                time,
                seq,
                generation: 0,
                next: NIL,
                event: Some(event),
            });
            index
        }
    }

    /// Append `index` to bucket `(level, slot)` and mark it occupied.
    fn link(&mut self, level: usize, slot: usize, index: u32) {
        let b = &mut self.buckets[level * SLOTS + slot];
        if b.head == NIL {
            b.head = index;
        } else {
            self.nodes[b.tail as usize].next = index;
        }
        b.tail = index;
        self.occupied[level] |= 1 << slot;
    }

    /// Unlink the head node of bucket `(level, slot)` (must be `index`).
    fn unlink_head(&mut self, level: usize, slot: usize, index: u32) {
        let next = self.nodes[index as usize].next;
        self.nodes[index as usize].next = NIL;
        let b = &mut self.buckets[level * SLOTS + slot];
        debug_assert_eq!(b.head, index);
        b.head = next;
        if next == NIL {
            b.tail = NIL;
            self.occupied[level] &= !(1 << slot);
        }
    }

    /// Re-establish the normalized minimum after the old one was removed:
    /// drain dead overdue tops, free dead bucket heads, and cascade
    /// higher-level buckets down until the minimum is a level-0 head (or the
    /// overdue top, which is always strictly earlier than any wheel entry).
    fn advance_min(&mut self) {
        // Clean cancelled entries off the overdue top.
        while let Some(&std::cmp::Reverse((_, seq, index))) = self.overdue.peek() {
            let node = &self.nodes[index as usize];
            debug_assert_eq!(node.seq, seq, "overdue entry outlived its node");
            if node.event.is_some() {
                break;
            }
            self.overdue.pop();
            self.free.push(index);
        }

        loop {
            // Everything overdue precedes everything on the wheel.
            if let Some(&std::cmp::Reverse((_, _, index))) = self.overdue.peek() {
                self.min = index;
                return;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                self.min = NIL;
                return;
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            if level == 0 {
                // Free dead heads; the first live node is the minimum.
                let mut head = self.buckets[slot].head;
                while head != NIL && self.nodes[head as usize].event.is_none() {
                    self.unlink_head(0, slot, head);
                    self.free.push(head);
                    head = self.buckets[slot].head;
                }
                if head != NIL {
                    self.min = head;
                    return;
                }
                continue; // bucket was all tombstones; bitmap bit now clear
            }
            // Cascade: advance the cursor to the bucket's base time and
            // re-bin its nodes one or more levels down, preserving FIFO
            // order (which is seq order; equal-time nodes stay adjacent).
            let shift = DIGIT_BITS as usize * (level + 1);
            let high = if shift >= 64 { 0 } else { !0u64 << shift };
            self.cur = (self.cur & high) | ((slot as u64) << (DIGIT_BITS as usize * level));
            let mut node = self.buckets[level * SLOTS + slot].head;
            self.buckets[level * SLOTS + slot] = EMPTY_BUCKET;
            self.occupied[level] &= !(1 << slot);
            while node != NIL {
                let next = self.nodes[node as usize].next;
                self.nodes[node as usize].next = NIL;
                if self.nodes[node as usize].event.is_none() {
                    self.free.push(node);
                } else {
                    let t = self.nodes[node as usize].time.as_nanos();
                    debug_assert!(t >= self.cur);
                    let (l, s) = level_slot(self.cur, t);
                    debug_assert!(l < level);
                    self.link(l, s, node);
                }
                node = next;
            }
        }
    }
}

/// The retained heap-based reference implementation — the executable
/// specification the timing wheel is proven equivalent to (see
/// `tests/proptest_queue.rs`). Not used on the hot path.
pub mod reference {
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    use crate::time::SimTime;

    /// Identifies an event scheduled on a [`HeapEventQueue`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub struct HeapEventId(pub u64);

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    // BinaryHeap is a max-heap; invert the ordering to get earliest-first,
    // with the insertion sequence number as the tie-breaker.
    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// The pre-wheel `EventQueue`: binary heap plus a tombstone set for
    /// cancellation, with identical `(time, seq)` FIFO semantics.
    pub struct HeapEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        pending: HashSet<u64>,
    }

    impl<E> Default for HeapEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapEventQueue<E> {
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                pending: HashSet::new(),
            }
        }

        pub fn push(&mut self, time: SimTime, event: E) -> HeapEventId {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
            self.pending.insert(seq);
            HeapEventId(seq)
        }

        pub fn cancel(&mut self, id: HeapEventId) -> bool {
            self.pending.remove(&id.0)
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(entry) = self.heap.pop() {
                if !self.pending.remove(&entry.seq) {
                    continue; // tombstoned by cancel()
                }
                return Some((entry.time, entry.event));
            }
            None
        }

        /// The timestamp of the earliest live event (drains tombstones, so
        /// `&mut` — the API wart the wheel fixes).
        pub fn peek_time(&mut self) -> Option<SimTime> {
            while let Some(top) = self.heap.peek() {
                if self.pending.contains(&top.seq) {
                    return Some(top.time);
                }
                self.heap.pop();
            }
            None
        }

        pub fn len(&self) -> usize {
            self.pending.len()
        }

        pub fn is_empty(&self) -> bool {
            self.pending.is_empty()
        }

        pub fn scheduled_total(&self) -> u64 {
            self.next_seq
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(42), i)));
        }
    }

    #[test]
    fn mass_same_instant_fifo_10k() {
        // Satellite: 10k events at one tick pop in exact push order, even
        // when the tick sits far enough out to start life in a high level.
        let mut q = EventQueue::new();
        let tick = t(123_456_789_000);
        for i in 0..10_000u32 {
            q.push(tick, i);
        }
        assert_eq!(q.peek_time(), Some(tick));
        for i in 0..10_000u32 {
            assert_eq!(q.pop(), Some((tick, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(!q.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_of_fired_generation_is_false_even_after_slot_reuse() {
        // Satellite: a stale EventId stays a no-op `false` after its slab
        // slot has been recycled for a newer event.
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(a), "cancel of fired generation");
        let b = q.push(t(2), "b"); // reuses a's slab slot
        assert!(!q.cancel(a), "stale id must not cancel the reused slot");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn events_in_the_past_and_at_now_still_fire_in_order() {
        // Satellite: after popping at t=100 the "cursor" sits at 100; events
        // pushed at or before 100 are still delivered, in (time, seq) order.
        let mut q = EventQueue::new();
        q.push(t(100), "now");
        assert_eq!(q.pop(), Some((t(100), "now")));
        q.push(t(100), "at-now-1");
        q.push(t(40), "past");
        q.push(t(100), "at-now-2");
        q.push(t(101), "future");
        assert_eq!(q.peek_time(), Some(t(40)));
        assert_eq!(q.pop(), Some((t(40), "past")));
        assert_eq!(q.pop(), Some((t(100), "at-now-1")));
        assert_eq!(q.pop(), Some((t(100), "at-now-2")));
        assert_eq!(q.pop(), Some((t(101), "future")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_in_overdue_region() {
        let mut q = EventQueue::new();
        q.push(t(1000), "a");
        assert_eq!(q.pop(), Some((t(1000), "a")));
        let past = q.push(t(10), "past");
        q.push(t(2000), "b");
        assert!(q.cancel(past));
        assert_eq!(q.peek_time(), Some(t(2000)));
        assert_eq!(q.pop(), Some((t(2000), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_cascade_boundaries() {
        // Satellite: times straddling 64^k digit boundaries cascade through
        // multiple levels and still pop in exact order, including u64::MAX
        // (SimTime::FAR_FUTURE) in the top overflow slots.
        let mut q = EventQueue::new();
        let times: &[u64] = &[
            0,
            63,               // level-0 boundary
            64,               // first level-1 slot
            64 * 64 - 1,      // level-1 boundary
            64 * 64,          // first level-2 slot
            64u64.pow(5) - 1, // deep boundary
            64u64.pow(5),
            u64::MAX - 1,
            u64::MAX, // far-future overflow slot
        ];
        // Push in scrambled order.
        for (i, &tm) in times.iter().enumerate().rev() {
            q.push(t(tm), i);
        }
        let mut got = Vec::new();
        while let Some((time, _)) = q.pop() {
            got.push(time.as_nanos());
        }
        let mut want = times.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        // An id from a different queue instance (valid index, wrong
        // generation / empty slab) must not cancel anything.
        let mut other: EventQueue<()> = EventQueue::new();
        let foreign = other.push(t(5), ());
        assert!(!q.cancel(foreign));
        // And one whose slot index was never allocated here either.
        let id = q.push(t(1), ());
        q.pop();
        assert!(!q.cancel(id));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_is_a_shared_reference_accessor() {
        let mut q = EventQueue::new();
        q.push(t(9), ());
        let r1 = &q;
        let r2 = &q;
        assert_eq!(r1.peek_time(), r2.peek_time()); // compiles: &self peek
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_millis(10), 10u64);
        q.push(base + SimDuration::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(base + SimDuration::from_millis(7), 7);
        q.push(base + SimDuration::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
