//! The future-event list: a priority queue of `(SimTime, event)` pairs with
//! **deterministic FIFO tie-breaking** and O(log n) amortized cancellation.
//!
//! Determinism is the load-bearing property here. Two events scheduled for the
//! same instant pop in the order they were pushed, so a simulation run is a pure
//! function of `(config, seed)` — which the test suite and the experiment runner
//! both rely on.
//!
//! Cancellation uses tombstones: [`EventQueue::cancel`] marks the id dead and the
//! entry is discarded lazily when it reaches the top. This keeps `push`/`pop`
//! allocation-free and avoids a secondary index. Components that re-arm timers
//! frequently (e.g. flow idle timeouts) cancel the stale timer and push a new one.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to get earliest-first, with the
// insertion sequence number as the tie-breaker (earlier push pops first).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "b");
/// q.push(SimTime::from_nanos(5), "a");
/// let id = q.push(SimTime::from_nanos(7), "dropped");
/// q.cancel(id);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled but not yet fired or cancelled.
    pending: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: HashSet::new(),
        }
    }

    /// Schedule `event` to fire at `time`. Returns an id usable with
    /// [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` if the event was still pending
    /// (i.e. had not fired and had not already been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // tombstoned by cancel()
            }
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones off the top so the peek is accurate.
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                return Some(top.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total events ever scheduled (diagnostic; monotone).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(42), i)));
        }
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        let b = q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(!q.cancel(b), "cancel after fire reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.pop(), Some((t(5), "b")));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn len_tracks_live_entries() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        let base = SimTime::ZERO;
        q.push(base + SimDuration::from_millis(10), 10u64);
        q.push(base + SimDuration::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(base + SimDuration::from_millis(7), 7);
        q.push(base + SimDuration::from_millis(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
