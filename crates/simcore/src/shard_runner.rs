//! Conservative-PDES window execution: the per-shard [`ShardRunner`] event
//! primitive and the [`ShardCrew`] thread pool that drives many shards in
//! lockstep windows.
//!
//! The mesh federation (and any other sharded simulation) advances each
//! shard's event queue *freely* up to a synchronization horizon
//! (`window_end = T_min + lookahead`, where `T_min` is the earliest pending
//! activity across all shards and the lookahead is the minimum inter-shard
//! link latency), then exchanges cross-shard messages at a barrier. Two
//! invariants make the result a pure function of the scenario and seed,
//! independent of how many OS threads execute the windows:
//!
//! * **Strictly-increasing horizon.** A shard never executes an event at or
//!   beyond its window end, and nothing may be injected before the horizon
//!   already passed ([`ShardRunner::inject`] asserts this). Messages created
//!   inside a window therefore always land in a *later* window.
//! * **Thread-free shard state.** Each shard's window is a sequential
//!   computation over its own state plus the commands handed to it at the
//!   barrier. Threads only decide *which worker* runs a shard, never what
//!   the shard observes — so the report stream is identical for any thread
//!   count, including 1.
//!
//! Randomness keeps the same property for free: all draws flow from the
//! fixed-seed per-stream [`crate::SimRng`] owned by shard state, so thread
//! count never changes which stream serves which draw.
//!
//! This module is the **only** place in the determinism crates where
//! `thread::spawn` and `std::sync` channel primitives are permitted
//! (enforced by `edgelint`'s `threading` lint): shard actors are built *on*
//! their worker thread, so arbitrarily rich non-`Send` state (trait objects,
//! `Rc`/`RefCell` graphs) stays thread-local and only plain-data commands,
//! reports and finals ever cross a thread boundary.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Per-shard window-execution primitive: an [`EventQueue`] plus the horizon
/// bookkeeping of conservative PDES. All event flow of a windowed shard goes
/// through this type so the horizon invariant is enforced in one place.
pub struct ShardRunner<E> {
    queue: EventQueue<E>,
    /// Everything strictly before this instant has been executed.
    horizon: SimTime,
    /// End of the currently open window (`None` between windows).
    open_end: Option<SimTime>,
    events_in_window: u64,
    windows: u64,
    events: u64,
    /// Windows in which this shard executed zero events — it only stalled at
    /// the barrier while other shards worked.
    stalls: u64,
}

impl<E> Default for ShardRunner<E> {
    fn default() -> Self {
        ShardRunner::new()
    }
}

impl<E> ShardRunner<E> {
    pub fn new() -> ShardRunner<E> {
        ShardRunner {
            queue: EventQueue::new(),
            horizon: SimTime::ZERO,
            open_end: None,
            events_in_window: 0,
            windows: 0,
            events: 0,
            stalls: 0,
        }
    }

    /// Schedule an event. Injections must respect the horizon: scheduling
    /// into the executed past would mean a message arrived inside a window
    /// that already ran, i.e. the lookahead was violated.
    pub fn inject(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.horizon,
            "shard-runner horizon violated: inject at {at:?} behind horizon {:?}",
            self.horizon
        );
        self.queue.push(at, event);
    }

    /// Earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Open a window ending (exclusively) at `end`. `end == horizon` is an
    /// empty probe window (used to learn `next_time` before the first real
    /// window); `end < horizon` would rewind time and is rejected.
    pub fn begin_window(&mut self, end: SimTime) {
        assert!(
            end >= self.horizon,
            "shard-runner horizon violated: window end {end:?} behind horizon {:?}",
            self.horizon
        );
        assert!(self.open_end.is_none(), "window already open");
        self.open_end = Some(end);
        self.events_in_window = 0;
    }

    /// Pop the next event strictly before the open window's end.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let end = self.open_end.expect("pop outside an open window");
        let popped = self.queue.pop_if(|t, _| t < end);
        if popped.is_some() {
            self.events_in_window += 1;
            self.events += 1;
        }
        popped
    }

    /// Close the open window: the horizon advances to its end and the window
    /// counters update. Returns the number of events executed in the window.
    /// Probe windows (`end == previous horizon`) are not counted.
    pub fn end_window(&mut self) -> u64 {
        let end = self.open_end.take().expect("no window open");
        if end > self.horizon {
            self.windows += 1;
            if self.events_in_window == 0 {
                self.stalls += 1;
            }
        }
        self.horizon = end;
        self.events_in_window
    }

    /// The execution horizon: everything strictly before it has run.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Real (non-probe) windows executed.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Total events executed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Real windows in which this shard executed zero events.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

/// One shard's role in a windowed simulation: execute a window when told to,
/// produce a report, and yield a final result when the run ends. Commands,
/// reports and finals are plain `Send` data; the actor itself never crosses
/// a thread (it is *built* on its worker via [`ShardCrew::spawn`]'s closure),
/// so it may hold arbitrary non-`Send` state.
pub trait ShardActor {
    type Cmd: Send + 'static;
    type Report: Send + 'static;
    type Final: Send + 'static;

    fn run_window(&mut self, cmd: Self::Cmd) -> Self::Report;
    fn finish(self) -> Self::Final;
}

enum WorkerMsg<C> {
    Window { shard: usize, cmd: C },
    Finish,
}

enum WorkerReply<R, F> {
    Report(R),
    Final(F),
}

type ReplyRx<A> = Receiver<(
    usize,
    WorkerReply<<A as ShardActor>::Report, <A as ShardActor>::Final>,
)>;

/// A fixed pool of worker threads, each owning a static subset of shards
/// (shard `i` lives on worker `i % threads` for its whole life). The
/// coordinator thread calls [`ShardCrew::run_windows`] once per window; the
/// crew fans the per-shard commands out, lets every worker run its shards
/// sequentially, and returns the reports in shard order — a barrier. With
/// `threads == 1` the same code path runs every shard on one worker, so the
/// single-threaded execution is the parallel algorithm, not a special case.
pub struct ShardCrew<A: ShardActor> {
    to_workers: Vec<Sender<WorkerMsg<A::Cmd>>>,
    from_workers: ReplyRx<A>,
    handles: Vec<thread::JoinHandle<()>>,
    shards: usize,
    threads: usize,
}

impl<A: ShardActor> ShardCrew<A> {
    /// Spawn `threads` workers over `shards` shards. `build(i)` runs on the
    /// worker thread that owns shard `i` — the one place shard state is
    /// created — in ascending shard order per worker.
    pub fn spawn<F>(shards: usize, threads: usize, build: F) -> ShardCrew<A>
    where
        F: Fn(usize) -> A + Send + Sync + 'static,
        A: 'static,
    {
        assert!(shards >= 1, "need at least one shard");
        let threads = threads.clamp(1, shards);
        let build = Arc::new(build);
        let (reply_tx, from_workers) = channel();
        let mut to_workers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let (cmd_tx, cmd_rx) = channel::<WorkerMsg<A::Cmd>>();
            to_workers.push(cmd_tx);
            let reply_tx = reply_tx.clone();
            let build = Arc::clone(&build);
            let owned: Vec<usize> = (0..shards).filter(|i| i % threads == w).collect();
            handles.push(thread::spawn(move || {
                let mut actors: BTreeMap<usize, A> =
                    owned.into_iter().map(|i| (i, build(i))).collect();
                while let Ok(msg) = cmd_rx.recv() {
                    match msg {
                        WorkerMsg::Window { shard, cmd } => {
                            let actor = actors.get_mut(&shard).expect("shard owned by worker");
                            let report = actor.run_window(cmd);
                            if reply_tx.send((shard, WorkerReply::Report(report))).is_err() {
                                return;
                            }
                        }
                        WorkerMsg::Finish => {
                            for (shard, actor) in std::mem::take(&mut actors) {
                                if reply_tx
                                    .send((shard, WorkerReply::Final(actor.finish())))
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            return;
                        }
                    }
                }
            }));
        }
        ShardCrew {
            to_workers,
            from_workers,
            handles,
            shards,
            threads,
        }
    }

    /// Execute one window on every shard: `cmds[i]` goes to shard `i`.
    /// Blocks until all shards report (the barrier) and returns the reports
    /// in shard order regardless of worker scheduling.
    pub fn run_windows(&mut self, cmds: Vec<A::Cmd>) -> Vec<A::Report> {
        assert_eq!(cmds.len(), self.shards, "one command per shard");
        for (shard, cmd) in cmds.into_iter().enumerate() {
            self.to_workers[shard % self.threads]
                .send(WorkerMsg::Window { shard, cmd })
                .expect("shard worker alive");
        }
        let mut reports: Vec<Option<A::Report>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            let (shard, reply) = self.from_workers.recv().expect("shard worker alive");
            match reply {
                WorkerReply::Report(r) => reports[shard] = Some(r),
                WorkerReply::Final(_) => unreachable!("final before finish"),
            }
        }
        reports
            .into_iter()
            .map(|r| r.expect("every shard reports once per window"))
            .collect()
    }

    /// End the run: every actor's [`ShardActor::finish`] result, in shard
    /// order. Joins the worker threads.
    pub fn finish(self) -> Vec<A::Final> {
        for tx in &self.to_workers {
            tx.send(WorkerMsg::Finish).expect("shard worker alive");
        }
        let mut finals: Vec<Option<A::Final>> = (0..self.shards).map(|_| None).collect();
        for _ in 0..self.shards {
            let (shard, reply) = self.from_workers.recv().expect("shard worker alive");
            match reply {
                WorkerReply::Final(f) => finals[shard] = Some(f),
                WorkerReply::Report(_) => unreachable!("report after finish"),
            }
        }
        drop(self.to_workers);
        for h in self.handles {
            h.join().expect("shard worker panicked");
        }
        finals
            .into_iter()
            .map(|f| f.expect("every shard finishes once"))
            .collect()
    }

    /// How many worker threads actually run (requested count clamped to the
    /// shard count — more workers than shards would only idle).
    pub fn effective_threads(&self) -> usize {
        self.threads
    }
}
