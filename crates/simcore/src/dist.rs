//! Probability distributions for service-time, latency and workload modelling.
//!
//! [`Dist`] is a small closed enum rather than a trait object: every model in
//! this workspace needs `Clone + Send + Sync + Debug` configs, and an enum keeps
//! configuration values plain data that can be built in const-ish tables.
//!
//! [`DurationDist`] wraps a `Dist` whose samples are interpreted as
//! **milliseconds** (the natural unit of the paper's figures) and clamps
//! negatives to zero.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A scalar distribution. Samples are `f64`; the interpretation (ms, bytes,
/// count, …) is up to the caller.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always `value`.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (not rate).
    Exponential { mean: f64 },
    /// Normal via Box–Muller.
    Normal { mean: f64, std_dev: f64 },
    /// Log-normal parameterised by the *underlying* normal's mu/sigma.
    LogNormal { mu: f64, sigma: f64 },
    /// Pareto (Lomax-style, `x_min * U^{-1/alpha}`); heavy-tailed sizes.
    Pareto { x_min: f64, alpha: f64 },
    /// Discrete distribution over `(value, weight)` pairs.
    Empirical(Vec<(f64, f64)>),
    /// Shifted copy of another distribution: `offset + inner`.
    Shifted { offset: f64, inner: Box<Dist> },
}

impl Dist {
    /// Log-normal with a given **median** and coefficient of variation of the
    /// underlying normal's sigma expressed directly. `median = e^mu`.
    ///
    /// This is the calibration-friendly constructor: the paper reports medians,
    /// so model configs specify the median and a spread (`sigma`) and the
    /// distribution lands the median exactly.
    pub fn log_normal_median(median: f64, sigma: f64) -> Dist {
        assert!(median > 0.0, "log-normal median must be positive");
        Dist::LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// A constant distribution.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Exponential { mean } => {
                // Inverse CDF; guard against ln(0).
                let u = 1.0 - rng.f64();
                -mean * u.ln()
            }
            Dist::Normal { mean, std_dev } => mean + std_dev * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Pareto { x_min, alpha } => {
                let u = 1.0 - rng.f64();
                x_min / u.powf(1.0 / alpha)
            }
            Dist::Empirical(pairs) => {
                assert!(!pairs.is_empty(), "empty empirical distribution");
                let total: f64 = pairs.iter().map(|(_, w)| *w).sum();
                let mut x = rng.f64() * total;
                for (v, w) in pairs {
                    if x < *w {
                        return *v;
                    }
                    x -= *w;
                }
                pairs.last().unwrap().0
            }
            Dist::Shifted { offset, inner } => offset + inner.sample(rng),
        }
    }

    /// The theoretical mean, where a closed form exists (used by tests and by
    /// capacity planning in the workload generator).
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant(v) => Some(*v),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Exponential { mean } => Some(*mean),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Pareto { x_min, alpha } if *alpha > 1.0 => Some(alpha * x_min / (alpha - 1.0)),
            Dist::Pareto { .. } => None,
            Dist::Empirical(pairs) => {
                let total: f64 = pairs.iter().map(|(_, w)| *w).sum();
                Some(pairs.iter().map(|(v, w)| v * w).sum::<f64>() / total)
            }
            Dist::Shifted { offset, inner } => inner.mean().map(|m| m + offset),
        }
    }
}

/// One standard-normal draw via Box–Muller (the non-cached variant: one draw
/// per call keeps the generator stream aligned regardless of call sites).
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A distribution over [`SimDuration`]s; samples are **milliseconds**, negatives
/// clamp to zero.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationDist(pub Dist);

impl DurationDist {
    pub fn constant_ms(ms: f64) -> Self {
        DurationDist(Dist::Constant(ms))
    }

    /// Log-normal in milliseconds landing exactly on `median_ms`.
    pub fn log_normal_ms(median_ms: f64, sigma: f64) -> Self {
        DurationDist(Dist::log_normal_median(median_ms, sigma))
    }

    /// Uniform in `[lo_ms, hi_ms)`.
    pub fn uniform_ms(lo_ms: f64, hi_ms: f64) -> Self {
        DurationDist(Dist::Uniform {
            lo: lo_ms,
            hi: hi_ms,
        })
    }

    pub fn zero() -> Self {
        DurationDist(Dist::Constant(0.0))
    }

    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_millis_f64(self.0.sample(rng).max(0.0))
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`; used to model
/// service popularity in the bigFlows-like trace (a few services receive most
/// of the requests).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cumulative weights, cum[i] = sum of 1/(k^s) for k in 1..=i+1
    cum: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty support");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cum.push(acc);
        }
        Zipf { cum }
    }

    /// Sample a 0-based rank (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let total = *self.cum.last().unwrap();
        let x = rng.f64() * total;
        match self.cum.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => i + 1.min(self.cum.len() - 1),
            Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// The expected probability of rank `i` (0-based).
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cum.last().unwrap();
        let lo = if i == 0 { 0.0 } else { self.cum[i - 1] };
        (self.cum[i] - lo) / total
    }

    pub fn support(&self) -> usize {
        self.cum.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xDECAF)
    }

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::Constant(3.5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 3.5);
        }
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(&d, 50_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Dist::Exponential { mean: 7.0 };
        assert!((sample_mean(&d, 200_000) - 7.0).abs() < 0.15);
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Dist::Normal {
            mean: 10.0,
            std_dev: 2.0,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd={}", var.sqrt());
    }

    #[test]
    fn log_normal_median_lands() {
        let d = Dist::log_normal_median(500.0, 0.25);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median - 500.0).abs() / 500.0 < 0.02,
            "median={median}, want ~500"
        );
    }

    #[test]
    fn log_normal_mean_formula() {
        let d = Dist::LogNormal {
            mu: 1.0,
            sigma: 0.5,
        };
        let want = d.mean().unwrap();
        assert!((sample_mean(&d, 300_000) - want).abs() / want < 0.02);
    }

    #[test]
    fn pareto_heavy_tail() {
        let d = Dist::Pareto {
            x_min: 1.0,
            alpha: 2.0,
        };
        let mut r = rng();
        let xs: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| x >= 1.0));
        // mean = alpha*xmin/(alpha-1) = 2
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 2.0).abs() < 0.25, "mean={mean}");
    }

    #[test]
    fn empirical_respects_weights() {
        let d = Dist::Empirical(vec![(1.0, 1.0), (2.0, 3.0)]);
        let mut r = rng();
        let n = 40_000;
        let twos = (0..n).filter(|_| d.sample(&mut r) == 2.0).count();
        let frac = twos as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn shifted_offsets() {
        let d = Dist::Shifted {
            offset: 100.0,
            inner: Box::new(Dist::Constant(5.0)),
        };
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 105.0);
        assert_eq!(d.mean(), Some(105.0));
    }

    #[test]
    fn duration_dist_clamps_negative() {
        let d = DurationDist(Dist::Constant(-10.0));
        let mut r = rng();
        assert_eq!(d.sample(&mut r), SimDuration::ZERO);
    }

    #[test]
    fn duration_dist_ms_unit() {
        let d = DurationDist::constant_ms(250.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), SimDuration::from_millis(250));
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(42, 1.1);
        let mut r = rng();
        let mut counts = [0u32; 42];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[41]);
        // empirical frequency of rank 0 tracks theory
        let p0 = z.probability(0);
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - p0).abs() < 0.01, "f0={f0} p0={p0}");
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(10, 0.9);
        let total: f64 = (0..10).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
