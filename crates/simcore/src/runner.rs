//! Parallel experiment fan-out.
//!
//! Simulations in this workspace are deterministic single-threaded functions of
//! `(config, seed)`. To get confidence intervals we run many seeds; this module
//! spreads those runs over a crossbeam scoped thread pool and returns results
//! **in seed order**, so the output of an experiment is itself deterministic
//! regardless of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(seed)` for every seed, in parallel, preserving input order.
///
/// `threads = 0` means "number of available CPUs". Work is distributed by
/// atomic work-stealing over the seed list, so uneven run times don't leave
/// threads idle.
///
/// ```
/// let results = simcore::run_seeds(&[1, 2, 3], 0, |seed| seed * 10);
/// assert_eq!(results, vec![10, 20, 30]);
/// ```
pub fn run_seeds<R, F>(seeds: &[u64], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let n = seeds.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        return seeds.iter().map(|&s| f(s)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    let slots_ptr = SlotVec(slots.as_mut_ptr());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let slots_ptr = &slots_ptr;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(seeds[i]);
                // SAFETY: each index i is claimed by exactly one thread via the
                // atomic cursor, so no two threads write the same slot; the
                // scope guarantees all writes complete before `slots` is read.
                unsafe { slots_ptr.0.add(i).write(Some(r)) };
            });
        }
    })
    .expect("runner thread panicked");

    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Wrapper so the raw pointer can be captured by the scoped threads.
struct SlotVec<R>(*mut Option<R>);
// SAFETY: disjoint-index writes only, synchronized by the crossbeam scope join.
unsafe impl<R: Send> Sync for SlotVec<R> {}
unsafe impl<R: Send> Send for SlotVec<R> {}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.min(jobs).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_seed_order() {
        let seeds: Vec<u64> = (0..100).collect();
        let out = run_seeds(&seeds, 8, |s| s * s);
        let want: Vec<u64> = seeds.iter().map(|s| s * s).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let seeds: Vec<u64> = (0..257).collect();
        let out = run_seeds(&seeds, 4, |s| s);
        let set: HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), 257);
    }

    #[test]
    fn single_thread_path() {
        let out = run_seeds(&[5, 6], 1, |s| s + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = run_seeds(&[], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel_when_asked() {
        // All threads must observe work; count distinct claims.
        let calls = AtomicU64::new(0);
        let seeds: Vec<u64> = (0..64).collect();
        let out = run_seeds(&seeds, 0, |s| {
            calls.fetch_add(1, Ordering::Relaxed);
            s
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let seeds: Vec<u64> = (0..50).collect();
        let a = run_seeds(&seeds, 1, |s| s.wrapping_mul(0x9E3779B9));
        let b = run_seeds(&seeds, 7, |s| s.wrapping_mul(0x9E3779B9));
        assert_eq!(a, b);
    }
}
