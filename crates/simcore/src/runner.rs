//! Parallel experiment fan-out.
//!
//! Simulations in this workspace are deterministic single-threaded functions of
//! `(config, seed)`. To get confidence intervals we run many seeds; this module
//! spreads those runs over a crossbeam scoped thread pool and returns results
//! **in seed order**, so the output of an experiment is itself deterministic
//! regardless of thread scheduling.

// edgelint: allow(threading) — cross-run fan-out, not within-run state: each
// seed's simulation is single-threaded and results return in seed order
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a seed fan-out actually executed — returned alongside results so
/// experiment reports can record the parallelism they ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerMeta {
    /// Worker threads actually used, after clamping the request to the seed
    /// count and the machine's available parallelism.
    pub effective_threads: usize,
    /// Seeds claimed per atomic cursor bump.
    pub chunk_size: usize,
}

impl RunnerMeta {
    /// The meta a `run_seeds(seeds, threads, _)` call of this shape executes
    /// under. Pure — no threads are spawned; [`run_seeds_meta`] uses the same
    /// computation, so a plan always matches the actual execution.
    pub fn plan(threads: usize, jobs: usize) -> RunnerMeta {
        let threads = effective_threads(threads, jobs);
        RunnerMeta {
            effective_threads: threads,
            chunk_size: chunk_size(jobs, threads),
        }
    }
}

/// Run `f(seed)` for every seed, in parallel, preserving input order.
///
/// `threads = 0` means "number of available CPUs". Work is distributed by
/// atomic work-stealing over the seed list, so uneven run times don't leave
/// threads idle.
///
/// ```
/// let results = simcore::run_seeds(&[1, 2, 3], 0, |seed| seed * 10);
/// assert_eq!(results, vec![10, 20, 30]);
/// ```
pub fn run_seeds<R, F>(seeds: &[u64], threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    run_seeds_meta(seeds, threads, f).0
}

/// [`run_seeds`], plus [`RunnerMeta`] describing the execution.
///
/// Threads claim seeds in chunks (one `fetch_add` per chunk, not per seed):
/// neighbouring seeds stay on one core and the shared cursor line is touched
/// `n / chunk` times instead of `n`.
pub fn run_seeds_meta<R, F>(seeds: &[u64], threads: usize, f: F) -> (Vec<R>, RunnerMeta)
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let n = seeds.len();
    let meta = RunnerMeta::plan(threads, n);
    let threads = meta.effective_threads;
    let chunk = meta.chunk_size;
    if n == 0 {
        return (Vec::new(), meta);
    }
    if threads <= 1 {
        return (seeds.iter().map(|&s| f(s)).collect(), meta);
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // edgelint: allow(threading) — work-stealing cursor orders only which
    // thread claims a chunk; slots are written by input index, so the output
    // is schedule-independent
    let cursor = AtomicUsize::new(0);
    let slots_ptr = SlotVec(slots.as_mut_ptr());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let slots_ptr = &slots_ptr;
            scope.spawn(move |_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, &seed) in seeds[start..end].iter().enumerate() {
                    let r = f(seed);
                    // SAFETY: each index belongs to exactly one claimed
                    // chunk, so no two threads write the same slot; the scope
                    // guarantees all writes complete before `slots` is read.
                    unsafe { slots_ptr.0.add(start + i).write(Some(r)) };
                }
            });
        }
    })
    .expect("runner thread panicked");

    let results = slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    (results, meta)
}

/// Wrapper so the raw pointer can be captured by the scoped threads.
struct SlotVec<R>(*mut Option<R>);
// SAFETY: disjoint-index writes only, synchronized by the crossbeam scope join.
unsafe impl<R: Send> Sync for SlotVec<R> {}
unsafe impl<R: Send> Send for SlotVec<R> {}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.min(jobs).max(1)
}

/// Seeds per cursor bump: big enough to amortize the atomic, small enough
/// that uneven run times still balance (aim for ≥ 8 claims per thread).
fn chunk_size(jobs: usize, threads: usize) -> usize {
    (jobs / (threads.max(1) * 8)).clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_seed_order() {
        let seeds: Vec<u64> = (0..100).collect();
        let out = run_seeds(&seeds, 8, |s| s * s);
        let want: Vec<u64> = seeds.iter().map(|s| s * s).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn runs_every_seed_exactly_once() {
        let seeds: Vec<u64> = (0..257).collect();
        let out = run_seeds(&seeds, 4, |s| s);
        let set: HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), 257);
    }

    #[test]
    fn single_thread_path() {
        let out = run_seeds(&[5, 6], 1, |s| s + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = run_seeds(&[], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_parallel_when_asked() {
        // All threads must observe work; count distinct claims.
        let calls = AtomicU64::new(0);
        let seeds: Vec<u64> = (0..64).collect();
        let out = run_seeds(&seeds, 0, |s| {
            calls.fetch_add(1, Ordering::Relaxed);
            s
        });
        assert_eq!(out.len(), 64);
        assert_eq!(calls.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let seeds: Vec<u64> = (0..50).collect();
        let a = run_seeds(&seeds, 1, |s| s.wrapping_mul(0x9E3779B9));
        let b = run_seeds(&seeds, 7, |s| s.wrapping_mul(0x9E3779B9));
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_claiming_is_exhaustive_and_ordered() {
        // Exercise chunk sizes > 1 (1000 seeds / 4 threads → chunk 16) and a
        // final partial chunk (1000 % 16 != 0).
        let seeds: Vec<u64> = (0..1000).collect();
        let (out, meta) = run_seeds_meta(&seeds, 4, |s| s + 7);
        let want: Vec<u64> = seeds.iter().map(|s| s + 7).collect();
        assert_eq!(out, want);
        assert_eq!(meta.effective_threads, effective_threads(4, 1000));
        assert!(meta.chunk_size > 1);
    }

    #[test]
    fn meta_reports_clamped_threads() {
        // More threads than seeds: clamped to the job count.
        let (_, meta) = run_seeds_meta(&[1, 2, 3], 64, |s| s);
        assert_eq!(meta.effective_threads, 3);
        assert_eq!(meta.chunk_size, 1);
        // Empty input still reports a sane meta.
        let (out, meta) = run_seeds_meta(&[], 4, |s| s);
        assert!(out.is_empty());
        assert_eq!(meta.effective_threads, 1);
    }
}
