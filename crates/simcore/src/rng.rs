//! Deterministic, splittable randomness.
//!
//! [`SimRng`] is a xoshiro256** generator seeded through SplitMix64 (the
//! initialization recommended by the xoshiro authors). Two properties matter
//! for reproducible experiments:
//!
//! 1. **Stability** — the implementation is self-contained, so results never
//!    shift underneath us when a dependency bumps its internal generator.
//! 2. **Named streams** — [`SimRng::stream`] derives an independent child
//!    generator from `(seed, label)`. Each stochastic component draws from its
//!    own stream, so adding a new source of randomness (or reordering calls in
//!    one component) does not perturb the numbers any *other* component sees.

/// SplitMix64 step; used for seeding and for hashing stream labels.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to salt child streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic xoshiro256** pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start in the all-zero state; splitmix64 cannot
        // produce four consecutive zeros, but keep the guard for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        SimRng { s }
    }

    /// Derive an independent child generator identified by `label`.
    ///
    /// The child is a pure function of `(self's seed material, label)`; it does
    /// not advance `self`.
    pub fn stream(&self, label: &str) -> SimRng {
        let salt = fnv1a(label.as_bytes());
        SimRng::seed_from_u64(self.s[0] ^ self.s[2].rotate_left(17) ^ salt)
    }

    /// Derive the same child generator as `stream(&format!("{prefix}-{idx}"))`
    /// without allocating the label. The decimal digits of `idx` are folded
    /// into the FNV salt directly, so the derived stream is byte-identical to
    /// the formatted-label form — setup loops keyed by a site/entity index
    /// keep their exact historical streams at zero heap cost.
    pub fn stream_indexed(&self, prefix: &str, idx: usize) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in prefix.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= b'-' as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        let mut digits = [0u8; 20];
        let mut at = digits.len();
        let mut v = idx;
        loop {
            at -= 1;
            digits[at] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        for &b in &digits[at..] {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SimRng::seed_from_u64(self.s[0] ^ self.s[2].rotate_left(17) ^ h)
    }

    /// Derive an independent child generator from an integer index (e.g. a
    /// per-entity stream keyed by id).
    pub fn stream_u64(&self, idx: u64) -> SimRng {
        let mut sm = idx ^ 0xA5A5_5A5A_DEAD_BEEF;
        let salt = splitmix64(&mut sm);
        SimRng::seed_from_u64(self.s[0] ^ self.s[2].rotate_left(17) ^ salt)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Lemire: multiply-shift with rejection to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `usize` index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Pick a uniformly random element of a slice. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let root = SimRng::seed_from_u64(42);
        let mut s1 = root.stream("network");
        let mut s1b = root.stream("network");
        let mut s2 = root.stream("cluster");
        assert_eq!(s1.next_u64(), s1b.next_u64(), "same label ⇒ same stream");
        // different labels produce different sequences
        let mut s1c = root.stream("network");
        let eq = (0..64).filter(|_| s1c.next_u64() == s2.next_u64()).count();
        assert!(eq < 2);
    }

    #[test]
    fn stream_indexed_matches_formatted_label() {
        let root = SimRng::seed_from_u64(42);
        for idx in [0usize, 1, 9, 10, 41, 100, 12_345, usize::MAX] {
            let mut via_fmt = root.stream(&format!("rt-{idx}"));
            let mut via_idx = root.stream_indexed("rt", idx);
            for _ in 0..8 {
                assert_eq!(via_fmt.next_u64(), via_idx.next_u64(), "idx={idx}");
            }
        }
    }

    #[test]
    fn stream_does_not_advance_parent() {
        let mut root = SimRng::seed_from_u64(9);
        let before = root.clone().next_u64();
        let _ = root.stream("x");
        assert_eq!(root.next_u64(), before);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn range_u64_inclusive_bounds() {
        let mut r = SimRng::seed_from_u64(8);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(21);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
