//! Streaming FNV-1a — the determinism-hash primitive.
//!
//! The testbed's `metrics_hash()` used to materialize the full textual
//! metrics trace (hundreds of MB at city scale) just to fold it into a
//! 64-bit FNV-1a digest. [`FnvStream`] is the same fold exposed as a sink:
//! it implements [`std::fmt::Write`], so the exact `write!` statements that
//! produce the trace can feed the hasher directly, byte for byte, without a
//! `String` in between. Hashing through `FnvStream` is byte-identical to
//! hashing the assembled string — that equivalence is what keeps every
//! pinned hash stable across the refactor (and is asserted in the tests
//! below and in the testbed's regression suite).

/// Incremental FNV-1a over a byte stream (64-bit, standard offset/prime).
#[derive(Debug, Clone)]
pub struct FnvStream {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvStream {
    fn default() -> Self {
        Self::new()
    }
}

impl FnvStream {
    pub fn new() -> FnvStream {
        FnvStream { hash: FNV_OFFSET }
    }

    /// Fold `bytes` into the running digest.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.hash;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }

    /// The digest of everything folded in so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.hash
    }

    /// One-shot convenience: the digest of `bytes`.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut s = FnvStream::new();
        s.update(bytes);
        s.finish()
    }
}

impl std::fmt::Write for FnvStream {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn matches_one_shot_fold() {
        let data = b"lost=0 memory_hits=12\nreq started=1 finished=2\n";
        let mut reference: u64 = FNV_OFFSET;
        for &b in data.iter() {
            reference ^= b as u64;
            reference = reference.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(FnvStream::hash_bytes(data), reference);
    }

    #[test]
    fn chunking_is_invisible() {
        let mut a = FnvStream::new();
        a.update(b"hello world");
        let mut b = FnvStream::new();
        b.update(b"hel");
        b.update(b"lo wor");
        b.update(b"ld");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fmt_write_equals_string_then_hash() {
        let mut via_stream = FnvStream::new();
        write!(via_stream, "req started={} client={}", 123_u64, 7_usize).unwrap();
        let mut s = String::new();
        write!(s, "req started={} client={}", 123_u64, 7_usize).unwrap();
        assert_eq!(via_stream.finish(), FnvStream::hash_bytes(s.as_bytes()));
    }

    #[test]
    fn empty_stream_is_offset_basis() {
        assert_eq!(FnvStream::new().finish(), FNV_OFFSET);
    }
}
