//! Global allocation counter (feature `counting-alloc`, on by default).
//!
//! The workspace budgets heap traffic on the packet hot path —
//! `allocs/request` is a pinned regression threshold, not just a bench
//! statistic. Counting from *inside* the process is the only way to assert
//! it in `cargo test`: a wrapper over the [`std::alloc::System`] allocator
//! bumps a relaxed atomic on every `alloc`/`realloc`. One counter for the
//! whole workspace lives here (feature-unification would reject two crates
//! both claiming `#[global_allocator]`), and both the testbed's per-phase
//! profile and the `cityscale` bench read it.
//!
//! Cost when enabled: one relaxed `fetch_add` per allocation — noise next to
//! the allocation itself. Builds that want the pristine system allocator can
//! opt out with `default-features = false`.

use std::alloc::{GlobalAlloc, Layout, System};
// edgelint: allow(threading) — a monotone diagnostics counter: allocation
// totals are read as before/after diffs and never feed a trace or schedule
use std::sync::atomic::{AtomicU64, Ordering};

// edgelint: allow(threading) — same counter as above (directives scope per line)
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counter has no effect on the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Total heap allocations (`alloc` + `realloc`) since process start.
/// Monotone; diff two reads to attribute a region of work.
pub fn total() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_an_allocation() {
        let before = total();
        let v = std::hint::black_box(vec![0u8; 4096]);
        let after = total();
        assert!(after > before, "boxed vec was not counted");
        drop(v);
    }
}
