//! Virtual time for the simulation: [`SimTime`] (an instant) and [`SimDuration`]
//! (a span), both with nanosecond resolution backed by `u64`.
//!
//! `u64` nanoseconds cover ~584 years of virtual time, far beyond any scenario in
//! this workspace (the paper's longest experiment is five minutes). Arithmetic is
//! saturating on the low end (an instant never goes negative) and panics on
//! overflow in debug builds, like std.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from a (non-negative, finite) floating-point number of
    /// seconds. Negative and non-finite inputs clamp to zero — all model code
    /// treats "negative time" as "immediately".
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Like [`SimDuration::from_secs_f64`], for milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiply by a non-negative float factor (used for jitter / scaling knobs).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

/// An instant in virtual time: nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// An instant later than every reachable instant; useful as an "infinity"
    /// sentinel for deadlines.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_nanos())
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant; zero if `earlier` is actually later
    /// (model code treats causality violations as "no time elapsed" rather than
    /// panicking, because they can only arise from zero-latency feedback loops).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.234_567_891);
        assert_eq!(d.as_nanos(), 1_234_567_891);
        assert!((d.as_secs_f64() - 1.234_567_891).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1.as_nanos(), 500_000_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        // causality-safe subtraction
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_millis(100);
        let b = SimDuration::from_millis(40);
        assert_eq!(a - b, SimDuration::from_millis(60));
        assert_eq!(b - a, SimDuration::ZERO); // saturates
        assert_eq!(a * 3, SimDuration::from_millis(300));
        assert_eq!(a / 4, SimDuration::from_millis(25));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_works() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
