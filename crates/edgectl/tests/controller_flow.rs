#![allow(clippy::field_reassign_with_default)]

//! Integration tests of the controller's Dispatcher behaviour: on-demand
//! deployment with and without waiting, FlowMemory fast path, piggybacking,
//! idle scale-down, and failure fallback to the cloud.

use cluster::{ClusterBackend, DockerCluster, K8sCluster, K8sTimings, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use edgectl::{Controller, ControllerConfig, ControllerOutput, NearestReadyFirst, NearestWaiting};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{Action, BufferId, FlowMatch, FlowSpec, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

const CLOUD_PORT: PortId = PortId(0);
const CLIENT_PORT: PortId = PortId(1);
const DOCKER_PORT: PortId = PortId(2);
const K8S_PORT: PortId = PortId(3);

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn docker_backend(seed: u64) -> Box<dyn ClusterBackend> {
    let rng = SimRng::seed_from_u64(seed);
    Box::new(DockerCluster::new(
        "edge-docker",
        IpAddr::new(10, 0, 0, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    ))
}

fn k8s_backend(seed: u64) -> Box<dyn ClusterBackend> {
    let rng = SimRng::seed_from_u64(seed);
    Box::new(K8sCluster::new(
        "far-k8s",
        IpAddr::new(10, 0, 1, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("k8s"),
        K8sTimings::egs(),
    ))
}

fn nginx_template() -> ServiceTemplate {
    ServiceTemplate::single(
        "edge-nginx",
        "nginx:1.23.2",
        80,
        DurationDist::constant_ms(110.0),
    )
}

fn service_addr() -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80)
}

fn client_ip(n: u8) -> IpAddr {
    IpAddr::new(10, 1, 0, n)
}

fn packet(client: u8, tag: u64) -> Packet {
    Packet::syn(
        SocketAddr::new(client_ip(client), 40000),
        service_addr(),
        tag,
    )
}

/// A controller with one Docker cluster, NearestWaiting policy.
fn waiting_controller(seed: u64) -> Controller {
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(seed),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());
    c
}

fn release_time(outputs: &[ControllerOutput]) -> SimTime {
    outputs
        .iter()
        .find_map(|o| match o {
            ControllerOutput::ReleaseViaTable { at, .. } => Some(*at),
            _ => None,
        })
        .expect("outputs must release the buffered packet")
}

fn flow_mods(outputs: &[ControllerOutput]) -> Vec<&ControllerOutput> {
    outputs
        .iter()
        .filter(|o| matches!(o, ControllerOutput::FlowMod { .. }))
        .collect()
}

/// Drive every due wakeup until the dispatcher has no deployment in flight,
/// collecting outputs. The old pipeline ran a deployment to completion inside
/// `on_packet_in`; the stepped dispatcher spreads it over wakeups, so tests
/// pump to recover the "dust has settled" view.
fn pump(c: &mut Controller) -> Vec<ControllerOutput> {
    let mut out = Vec::new();
    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        let Some(at) = c.next_wakeup() else { break };
        out.extend(c.on_wakeup(at));
    }
    out
}

/// Pump every wakeup due at or before `upto` — machine steps, retarget
/// drains, and housekeeping — exactly like the simulator's event loop.
fn pump_until(c: &mut Controller, upto: SimTime) -> Vec<ControllerOutput> {
    let mut out = Vec::new();
    while let Some(at) = c.next_wakeup() {
        if at > upto {
            break;
        }
        out.extend(c.on_wakeup(at));
    }
    out
}

/// Packet-in plus a full pump: the combined outputs include the buffered
/// packet's eventual release, like the old synchronous `on_packet_in`.
fn deliver(
    c: &mut Controller,
    t: SimTime,
    p: Packet,
    b: BufferId,
    port: PortId,
) -> Vec<ControllerOutput> {
    let mut out = c.on_packet_in(t, p, b, port);
    out.extend(pump(c));
    out
}

#[test]
fn with_waiting_holds_request_until_ready() {
    let mut c = waiting_controller(1);
    let t0 = SimTime::ZERO;
    let outputs = deliver(&mut c, t0, packet(1, 1), BufferId(0), CLIENT_PORT);

    // Two FlowMods (forward + reverse rewrite) and one release.
    assert_eq!(flow_mods(&outputs).len(), 2);
    let released = release_time(&outputs);

    // Cold start: pull (~seconds) + create + scale-up + app init.
    let total_s = released.as_secs_f64();
    assert!(
        total_s > 1.0,
        "cold deployment cannot be instant: {total_s}"
    );
    assert!(
        total_s < 20.0,
        "cold deployment unreasonably slow: {total_s}"
    );

    // The deployment record has all three phases.
    assert_eq!(c.stats.deployments.len(), 1);
    let rec = &c.stats.deployments[0];
    assert!(rec.pull.is_some(), "cold start pulls");
    assert!(rec.create.is_some());
    assert!(rec.scale_up.is_some());
    assert!(rec.waited);
    assert_eq!(c.stats.held_requests, 1);

    // Phase ordering: pull < create < scale-up < ready.
    let (p0, p1) = rec.pull.unwrap();
    let (c0, c1) = rec.create.unwrap();
    let (s0, accepted, expected) = rec.scale_up.unwrap();
    assert!(p0 <= p1 && p1 <= c0 && c0 <= c1 && c1 <= s0);
    assert!(accepted <= expected);
    assert!(rec.ready_detected >= expected);

    // Wait time (Fig. 14) is positive and bounded by app-init + polling.
    let wait_ms = rec.wait_time().as_millis_f64();
    assert!(wait_ms > 0.0);
    assert!(wait_ms < 1500.0, "docker nginx wait {wait_ms} ms");
}

#[test]
fn forward_flow_rewrites_to_edge_instance() {
    let mut c = waiting_controller(2);
    let outputs = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ControllerOutput::FlowMod {
        spec: FlowSpec {
            matcher, actions, ..
        },
        ..
    } = &outputs[0]
    else {
        panic!("first output must be the forward FlowMod");
    };
    assert_eq!(
        *matcher,
        FlowMatch::client_to_service(client_ip(1), service_addr())
    );
    assert!(matches!(actions[0], Action::SetDstIp(ip) if ip == IpAddr::new(10, 0, 0, 100)));
    assert!(matches!(actions[1], Action::SetDstPort(_)));
    assert!(matches!(actions[2], Action::Output(p) if p == DOCKER_PORT));

    // Reverse flow restores the cloud address.
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions: rev, .. },
        ..
    } = &outputs[1]
    else {
        panic!("second output must be the reverse FlowMod");
    };
    assert!(matches!(rev[0], Action::SetSrcIp(ip) if ip == service_addr().ip));
    assert!(matches!(rev[1], Action::SetSrcPort(80)));
    assert!(matches!(rev[2], Action::Output(p) if p == CLIENT_PORT));
}

#[test]
fn second_deployment_skips_pull_and_create() {
    let mut c = waiting_controller(3);
    let out1 = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready1 = release_time(&out1);

    // Let the instance idle out and be scaled down.
    let idle = c.config().memory_idle_timeout;
    let tick_at = ready1 + idle + SimDuration::from_secs(1);
    pump_until(&mut c, tick_at);
    assert_eq!(c.stats.scale_downs, 1, "idle instance scaled to zero");

    // Next request: image cached, service created → only scale-up.
    let t2 = tick_at + SimDuration::from_secs(5);
    let out2 = deliver(&mut c, t2, packet(1, 2), BufferId(1), CLIENT_PORT);
    let ready2 = release_time(&out2);
    let rec = c.stats.deployments.last().unwrap();
    assert!(rec.pull.is_none(), "image already cached");
    assert!(rec.create.is_none(), "service already created");
    assert!(rec.scale_up.is_some());
    // warm start is sub-second on Docker (the paper's headline result)
    let warm_ms = (ready2 - t2).as_millis_f64();
    assert!(warm_ms < 1000.0, "warm docker start {warm_ms} ms");
    assert!(
        warm_ms > 200.0,
        "still a real container start: {warm_ms} ms"
    );
}

#[test]
fn memory_fast_path_skips_scheduler() {
    let mut c = waiting_controller(4);
    let out1 = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out1);

    // Same client again shortly after: memory hit, instant outputs.
    let t2 = ready + SimDuration::from_secs(2);
    let out2 = c.on_packet_in(t2, packet(1, 2), BufferId(1), CLIENT_PORT);
    assert_eq!(c.stats.memory_hits, 1);
    assert_eq!(c.stats.deployments.len(), 1, "no new deployment");
    let released = release_time(&out2);
    assert!(
        released - t2 <= SimDuration::from_millis(5),
        "fast path must not wait: {}",
        released - t2
    );
}

#[test]
fn concurrent_requests_piggyback_on_one_deployment() {
    let mut c = waiting_controller(5);
    c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    let t_mid = SimTime::ZERO + SimDuration::from_millis(500);
    c.on_packet_in(t_mid, packet(2, 2), BufferId(1), CLIENT_PORT);

    // Both requests are held on the same in-flight machine; pumping it to
    // completion releases them together.
    let late = pump(&mut c);
    assert_eq!(c.stats.deployments.len(), 1, "one deployment for both");
    let releases: Vec<SimTime> = late
        .iter()
        .filter_map(|o| match o {
            ControllerOutput::ReleaseViaTable { at, .. } => Some(*at),
            _ => None,
        })
        .collect();
    assert_eq!(releases.len(), 2, "both held requests are released");
    assert_eq!(
        releases[0], releases[1],
        "both released when the single instance is ready"
    );
    assert_eq!(c.stats.held_requests, 2);
}

#[test]
fn unregistered_service_goes_to_cloud() {
    let mut c = waiting_controller(6);
    let other = SocketAddr::new(IpAddr::new(8, 8, 8, 8), 443);
    let p = Packet::syn(SocketAddr::new(client_ip(1), 40000), other, 9);
    let outputs = c.on_packet_in(SimTime::ZERO, p, BufferId(0), CLIENT_PORT);
    assert_eq!(c.stats.cloud_forwards, 1);
    assert_eq!(c.stats.deployments.len(), 0);
    // forward flow outputs to the cloud port without rewriting
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions, .. },
        ..
    } = &outputs[0]
    else {
        panic!()
    };
    assert_eq!(actions.len(), 1);
    assert!(matches!(actions[0], Action::Output(p) if p == CLOUD_PORT));
    // released promptly
    let released = release_time(&outputs);
    assert!(released - SimTime::ZERO <= SimDuration::from_millis(5));
}

#[test]
fn without_waiting_detours_to_ready_cluster_and_retargets() {
    // Near Docker cluster (cold) + far K8s cluster with the service already
    // running: NearestReadyFirst sends the first request to the far one and
    // deploys nearby in the background (paper Fig. 3).
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestReadyFirst)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    let near = c.attach_cluster(
        docker_backend(7),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    let far = c.attach_cluster(k8s_backend(8), SimDuration::from_millis(8), K8S_PORT);
    c.catalog.register(service_addr(), nginx_template());

    // Pre-deploy on the far cluster.
    let regs = registries();
    let tpl = nginx_template();
    let t = c.cluster_mut(far).pull(SimTime::ZERO, &tpl, &regs).unwrap();
    let t = c.cluster_mut(far).create(t, &tpl).unwrap();
    let receipt = c.cluster_mut(far).scale_up(t, "edge-nginx", 1).unwrap();
    let warm = receipt.expected_ready + SimDuration::from_secs(1);

    let outputs = c.on_packet_in(warm, packet(1, 1), BufferId(0), CLIENT_PORT);
    // Released immediately toward the far instance.
    let released = release_time(&outputs);
    assert!(released - warm <= SimDuration::from_millis(5));
    assert_eq!(c.stats.detoured_requests, 1);
    // Forward flow points at the far cluster's port.
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions, .. },
        ..
    } = &outputs[0]
    else {
        panic!()
    };
    assert!(matches!(actions[2], Action::Output(p) if p == K8S_PORT));

    // Background deployment at the near cluster was triggered; it completes
    // over subsequent wakeups.
    assert_eq!(c.in_flight_deployments(warm).len(), 1);
    let mut updates = pump(&mut c);
    assert_eq!(c.stats.deployments.len(), 1);
    let near_ready = {
        let rec = &c.stats.deployments[0];
        assert_eq!(rec.cluster, near);
        assert!(!rec.waited);
        rec.ready_detected
    };

    // Once the near instance is up, the memorized flow retargets and the
    // switch gets updated FlowMods.
    updates.extend(pump_until(&mut c, near_ready + SimDuration::from_secs(1)));
    assert!(!updates.is_empty(), "retarget must emit FlowMods");
    assert!(updates
        .iter()
        .all(|o| matches!(o, ControllerOutput::FlowMod { .. })));
    assert_eq!(c.stats.retargets, 1);
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions, .. },
        ..
    } = &updates[0]
    else {
        panic!()
    };
    assert!(
        matches!(actions[2], Action::Output(p) if p == DOCKER_PORT),
        "future requests go to the near cluster"
    );
}

#[test]
fn no_ready_instance_and_no_wait_policy_forwards_to_cloud() {
    // NearestReadyFirst with only a cold cluster: FAST=None → cloud, BEST →
    // background deployment.
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestReadyFirst)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(9),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());

    let outputs = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    assert_eq!(c.stats.cloud_forwards, 1, "first request goes to the cloud");
    let released = release_time(&outputs);
    assert!(released - SimTime::ZERO <= SimDuration::from_millis(5));

    // The background deployment completes over subsequent wakeups.
    pump(&mut c);
    assert_eq!(c.stats.deployments.len(), 1, "background deployment runs");
    assert!(!c.stats.deployments[0].waited);
}

#[test]
fn deployment_failure_falls_back_to_cloud() {
    // Empty registry set: the pull fails, the request must not hang.
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(RegistrySet::new())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(10),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());

    // The pull fails; retries burn down over backoff wakeups, then the held
    // request escapes to the cloud, stamped back at its decision time.
    let outputs = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    assert_eq!(c.stats.failed_deployments, 1);
    assert_eq!(c.stats.cloud_forwards, 1);
    assert!(release_time(&outputs) - SimTime::ZERO <= SimDuration::from_millis(5));
}

#[test]
fn tick_scales_down_idle_instance_and_reports_next_wakeup() {
    let mut c = waiting_controller(11);
    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);

    // Before expiry nothing is due, but a wakeup remains armed for it.
    pump_until(&mut c, ready + SimDuration::from_secs(1));
    assert!(c.next_wakeup().is_some());
    assert_eq!(c.stats.scale_downs, 0);

    // After the memory idle timeout the instance is scaled to zero.
    let late = ready + c.config().memory_idle_timeout + SimDuration::from_secs(1);
    pump_until(&mut c, late);
    assert_eq!(c.stats.scale_downs, 1);
    assert_eq!(c.next_wakeup(), None, "no flows left to expire");
    let status = c.cluster(edgectl::ClusterId(0)).status(late, "edge-nginx");
    assert_eq!(status.ready_replicas, 0);
    assert!(status.created, "scale down keeps the service objects");
}

#[test]
fn probe_quantization_bounds_detection_lag() {
    let mut c = waiting_controller(12);
    deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let rec = &c.stats.deployments[0];
    let (_, _, expected) = rec.scale_up.unwrap();
    let lag = rec.ready_detected - expected;
    let bound = c.config().probe_interval + SimDuration::from_millis(1);
    assert!(
        lag <= bound,
        "detection lag {lag} exceeds one probe interval"
    );
}

#[test]
fn client_location_tracked() {
    let mut c = waiting_controller(13);
    c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    assert_eq!(c.client_location(client_ip(1)), Some(CLIENT_PORT));
    assert_eq!(c.client_location(client_ip(99)), None);
}

#[test]
fn retries_recover_from_transient_faults() {
    use cluster::{FaultPlan, FaultyCluster};

    // A backend that fails half its calls: with retries the deployment
    // succeeds; without them it frequently falls back to the cloud.
    let run = |retries: u32, seed: u64| -> (bool, u64) {
        let mut config = ControllerConfig::default();
        config.deploy_retries = retries;
        let mut c = Controller::builder(config)
            .global(NearestWaiting)
            .registries(registries())
            .cloud_port(CLOUD_PORT)
            .build();
        let rng = SimRng::seed_from_u64(seed);
        let inner = DockerCluster::new(
            "edge-docker",
            IpAddr::new(10, 0, 0, 100),
            Runtime::egs(rng.stream("rt")),
            rng.stream("docker"),
        );
        c.attach_cluster(
            Box::new(FaultyCluster::new(
                inner,
                FaultPlan::flaky(0.5),
                rng.stream("faults"),
            )),
            SimDuration::from_micros(300),
            DOCKER_PORT,
        );
        c.catalog.register(service_addr(), nginx_template());
        deliver(
            &mut c,
            SimTime::ZERO,
            packet(1, 1),
            BufferId(0),
            CLIENT_PORT,
        );
        (
            c.stats.deployments.len() == 1 && c.stats.failed_deployments == 0,
            c.stats.retried_operations,
        )
    };

    let with_retries: Vec<(bool, u64)> = (0..20).map(|s| run(8, s)).collect();
    let ok = with_retries.iter().filter(|r| r.0).count();
    assert!(ok >= 19, "8 retries at 50% flake: {ok}/20 succeeded");
    assert!(
        with_retries.iter().map(|r| r.1).sum::<u64>() > 10,
        "retries must actually have happened"
    );

    let without: Vec<(bool, u64)> = (0..20).map(|s| run(0, s)).collect();
    let ok = without.iter().filter(|r| r.0).count();
    assert!(
        ok <= 10,
        "no retries at 50% flake should fail often: {ok}/20 succeeded"
    );
}

#[test]
fn retry_backoff_delays_deployment() {
    use cluster::{FaultPlan, FaultyCluster};

    // Deterministically fail the first pull attempt only: total deployment
    // time gains one backoff period.
    let mut config = ControllerConfig::default();
    config.deploy_retries = 5;
    config.retry_backoff = SimDuration::from_millis(400);
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    // seed chosen so the first roll at 50% fails, later ones succeed
    let mut chosen = None;
    for seed in 0..50u64 {
        let mut probe = SimRng::seed_from_u64(seed);
        if probe.chance(0.5) && !probe.chance(0.5) {
            chosen = Some(seed);
            break;
        }
    }
    let seed = chosen.expect("some seed fails first, passes second");
    let rng = SimRng::seed_from_u64(1);
    let inner = DockerCluster::new(
        "edge-docker",
        IpAddr::new(10, 0, 0, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    );
    c.attach_cluster(
        Box::new(FaultyCluster::new(
            inner,
            FaultPlan::flaky(0.5),
            SimRng::seed_from_u64(seed),
        )),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());
    deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    assert_eq!(c.stats.deployments.len(), 1);
    assert!(c.stats.retried_operations >= 1);
    let rec = &c.stats.deployments[0];
    // the pull was issued no earlier than one backoff after the trigger
    let (pull_issued, _) = rec.pull.expect("cold start pulls");
    assert!(pull_issued >= SimTime::ZERO + SimDuration::from_millis(400));
}

#[test]
fn autoscaler_grows_replicas_with_flow_count() {
    let mut config = ControllerConfig::default();
    config.autoscale_flows_per_replica = Some(4);
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(21),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());

    // First client triggers the deployment; eleven more arrive afterwards.
    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);
    for i in 2..=12u8 {
        c.on_packet_in(
            ready + SimDuration::from_secs(i as u64),
            packet(i, i as u64),
            BufferId(i as u64),
            CLIENT_PORT,
        );
    }
    assert_eq!(c.memory().len(), 12);

    // Housekeeping rides memory-expiry wakeups: at the first one (client 1's
    // flow, one idle timeout after release) eleven flows remain →
    // ceil(11/4) = 3 replicas desired.
    let tick_at = ready + c.config().memory_idle_timeout + SimDuration::from_secs(1);
    pump_until(&mut c, tick_at);
    assert_eq!(c.stats.autoscale_ups, 1);
    let later = tick_at + SimDuration::from_secs(5);
    let status = c.cluster(edgectl::ClusterId(0)).status(later, "edge-nginx");
    assert_eq!(status.ready_replicas, 3, "autoscaled to ceil(11/4)");

    // The Local Scheduler now spreads subsequent clients across replicas.
    let eps = c
        .cluster(edgectl::ClusterId(0))
        .replica_endpoints(later, "edge-nginx");
    assert_eq!(eps.len(), 3);
    let mut seen = std::collections::HashSet::new();
    for i in 13..=18u8 {
        let out = c.on_packet_in(
            later + SimDuration::from_millis(i as u64),
            packet(i, 100 + i as u64),
            BufferId(100 + i as u64),
            CLIENT_PORT,
        );
        let ControllerOutput::FlowMod {
            spec: FlowSpec { actions, .. },
            ..
        } = &out[0]
        else {
            panic!("expected forward FlowMod");
        };
        if let Action::SetDstPort(p) = actions[1] {
            seen.insert(p);
        }
    }
    assert!(
        seen.len() >= 2,
        "round-robin must hit multiple replicas: {seen:?}"
    );
}

#[test]
fn autoscaler_disabled_by_default() {
    let mut c = waiting_controller(22);
    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);
    for i in 2..=12u8 {
        c.on_packet_in(
            ready + SimDuration::from_millis(i as u64),
            packet(i, i as u64),
            BufferId(i as u64),
            CLIENT_PORT,
        );
    }
    pump_until(&mut c, ready + SimDuration::from_secs(2));
    assert_eq!(c.stats.autoscale_ups, 0);
    let status = c
        .cluster(edgectl::ClusterId(0))
        .status(ready + SimDuration::from_secs(10), "edge-nginx");
    assert_eq!(status.ready_replicas, 1);
}

#[test]
fn client_mobility_reverse_flow_follows_new_port() {
    // Paper §IV-B: the Dispatcher "also tracks the clients' current
    // location". When a client reappears on a different ingress port, the
    // re-installed reverse flow must deliver responses to the new port.
    let mut c = waiting_controller(23);
    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);
    assert_eq!(c.client_location(client_ip(1)), Some(CLIENT_PORT));

    // The client roams: same IP, new switch port (e.g. moved to another AP).
    let new_port = PortId(7);
    let out2 = c.on_packet_in(
        ready + SimDuration::from_secs(1),
        packet(1, 2),
        BufferId(1),
        new_port,
    );
    assert_eq!(c.client_location(client_ip(1)), Some(new_port));
    // memory fast path still applies…
    assert_eq!(c.stats.memory_hits, 1);
    // …and the reverse flow outputs to the new location.
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions: rev, .. },
        ..
    } = &out2[1]
    else {
        panic!("second output must be the reverse FlowMod");
    };
    assert!(
        matches!(rev[2], Action::Output(p) if p == new_port),
        "reverse flow must follow the client: {rev:?}"
    );
}

#[test]
fn probe_timeout_falls_back_to_cloud() {
    // A service whose app takes longer to open its port than the controller
    // is willing to wait: the buffered request must not hang forever.
    let mut config = ControllerConfig::default();
    config.probe_timeout = SimDuration::from_secs(1);
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(31),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    // 30 s of app init — far beyond the 1 s probe budget.
    c.catalog.register(
        service_addr(),
        ServiceTemplate::single(
            "edge-nginx",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(30_000.0),
        ),
    );
    let outputs = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    assert_eq!(c.stats.failed_deployments, 1);
    assert_eq!(c.stats.cloud_forwards, 1, "request escapes to the cloud");
    let released = release_time(&outputs);
    assert!(
        released - SimTime::ZERO < SimDuration::from_secs(30),
        "must not wait out the full app init"
    );
}

#[test]
fn multi_switch_decisions_are_relative_to_ingress() {
    use edgectl::SwitchId;

    // Two switches, one Docker site behind each. A client behind switch 0
    // must be served by site 0; a client behind switch 1 by site 1.
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(PortId(0)) // switch 0's cloud port
        .build();
    let near0 = SimDuration::from_micros(80);
    let far = SimDuration::from_millis(3);
    // site 0: local to switch 0 on port 2
    c.attach_cluster(docker_backend(41), near0, PortId(2));
    // site 1: from switch 0 it is behind the trunk (port 1), farther away
    let s1 = c.attach_cluster(
        {
            let rng = SimRng::seed_from_u64(42);
            Box::new(DockerCluster::new(
                "site-1",
                IpAddr::new(10, 0, 1, 100),
                Runtime::egs(rng.stream("rt")),
                rng.stream("d"),
            ))
        },
        far,
        PortId(1),
    );
    // switch 1: cloud via trunk port 0; site 0 via trunk (port 0), site 1 local (port 2)
    let sw1 = c.add_switch(PortId(0), vec![(PortId(0), far), (PortId(2), near0)]);
    c.catalog.register(service_addr(), nginx_template());

    // Client A behind switch 0 → deployment lands on site 0.
    let mut out_a = c.on_packet_in_at(
        SimTime::ZERO,
        SwitchId(0),
        packet(1, 1),
        BufferId(0),
        PortId(5),
    );
    out_a.extend(pump(&mut c));
    assert_eq!(c.stats.deployments[0].cluster, edgectl::ClusterId(0));
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions, .. },
        switch,
        ..
    } = &out_a[0]
    else {
        panic!()
    };
    assert_eq!(*switch, SwitchId(0));
    assert!(
        matches!(actions[2], Action::Output(p) if p == PortId(2)),
        "local site port"
    );

    // Client B behind switch 1 → deployment lands on site 1, flows installed
    // on switch 1 pointing at ITS local port.
    let mut out_b = c.on_packet_in_at(
        SimTime::ZERO + SimDuration::from_secs(10),
        sw1,
        packet(2, 2),
        BufferId(1),
        PortId(6),
    );
    out_b.extend(pump(&mut c));
    assert_eq!(c.stats.deployments[1].cluster, s1);
    let ControllerOutput::FlowMod {
        spec: FlowSpec { actions, .. },
        switch,
        ..
    } = &out_b[0]
    else {
        panic!()
    };
    assert_eq!(*switch, sw1);
    assert!(matches!(actions[2], Action::Output(p) if p == PortId(2)));
    // host route for client B appears on switch 0 (toward switch 1 = port 1)
    let host_route = out_b.iter().find_map(|o| match o {
        ControllerOutput::FlowMod {
            switch: SwitchId(0),
            spec: FlowSpec {
                matcher, actions, ..
            },
            ..
        } if matcher.dst_ip == Some(client_ip(2)) => Some(actions.clone()),
        _ => None,
    });
    let actions = host_route.expect("host route installed on the other switch");
    assert!(matches!(actions[0], Action::Output(p) if p == PortId(1)));
}

#[test]
fn add_switch_requires_full_port_map() {
    let mut c = waiting_controller(43);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.add_switch(PortId(0), vec![]); // one cluster attached, zero ports
    }));
    assert!(result.is_err(), "mismatched port map must panic");
}

#[test]
fn remove_phase_deletes_long_idle_services() {
    // Fig. 4's full lifecycle: Scale Down after flow expiry, Remove after
    // prolonged idleness — and a later request pays Create + Scale-Up again
    // (but not Pull: the image stays cached).
    let mut config = ControllerConfig::default();
    config.remove_after = Some(SimDuration::from_secs(120));
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(51),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());

    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);

    // Idle out → scale down.
    let t1 = ready + c.config().memory_idle_timeout + SimDuration::from_secs(1);
    pump_until(&mut c, t1);
    assert_eq!(c.stats.scale_downs, 1);
    assert_eq!(c.stats.removals, 0);
    assert!(
        c.cluster(edgectl::ClusterId(0))
            .status(t1, "edge-nginx")
            .created
    );

    // The controller must wake up again for the pending removal.
    pump_until(&mut c, t1 + SimDuration::from_secs(1));
    assert!(c.next_wakeup().is_some(), "a removal is pending");

    // After remove_after at zero replicas → Remove.
    let t2 = t1 + SimDuration::from_secs(121);
    pump_until(&mut c, t2);
    assert_eq!(c.stats.removals, 1);
    assert!(
        !c.cluster(edgectl::ClusterId(0))
            .status(t2, "edge-nginx")
            .created
    );

    // A later request redeploys: Create + Scale-Up, no Pull.
    let t3 = t2 + SimDuration::from_secs(10);
    let out = deliver(&mut c, t3, packet(1, 2), BufferId(1), CLIENT_PORT);
    let rec = c.stats.deployments.last().unwrap();
    assert!(rec.pull.is_none(), "image still cached after Remove");
    assert!(rec.create.is_some(), "service objects must be recreated");
    let warm_ms = (release_time(&out) - t3).as_millis_f64();
    assert!(warm_ms < 1200.0, "redeploy after Remove took {warm_ms} ms");
}

#[test]
fn revived_service_escapes_pending_removal() {
    let mut config = ControllerConfig::default();
    config.remove_after = Some(SimDuration::from_secs(120));
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        docker_backend(52),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    c.catalog.register(service_addr(), nginx_template());

    let out = deliver(
        &mut c,
        SimTime::ZERO,
        packet(1, 1),
        BufferId(0),
        CLIENT_PORT,
    );
    let ready = release_time(&out);
    let t1 = ready + c.config().memory_idle_timeout + SimDuration::from_secs(1);
    pump_until(&mut c, t1);
    assert_eq!(c.stats.scale_downs, 1);

    // A request arrives before the removal deadline: the service revives.
    let t2 = t1 + SimDuration::from_secs(30);
    deliver(&mut c, t2, packet(2, 2), BufferId(1), CLIENT_PORT);

    // The removal deadline passes — nothing must be removed.
    pump_until(&mut c, t1 + SimDuration::from_secs(121));
    assert_eq!(c.stats.removals, 0);
    assert!(
        c.cluster(edgectl::ClusterId(0))
            .status(t1 + SimDuration::from_secs(121), "edge-nginx")
            .created
    );
}
