//! Model-based lockstep equivalence: the stepped dispatcher vs the retained
//! synchronous reference pipeline ([`edgectl::dispatcher::reference`]).
//!
//! Both controllers are driven through the *same* generated request schedule
//! against *identically-seeded but separate* backends, pumping every due
//! wakeup between packet-ins exactly like the simulator's event loop. If the
//! state machine decomposition is faithful, the two runs must agree on every
//! emitted [`ControllerOutput`] (same kind, same stamp), every stats counter,
//! and every [`edgectl::DeploymentRecord`] — the record's scale-up triple and
//! `ready_detected` make the comparison sensitive to the retry counter and
//! the probe deadline (see the two `lockstep_is_sensitive_to_*` tests, which
//! prove that mutating either produces a detectable divergence).
//!
//! The generator deliberately avoids the documented accepted divergences
//! (DESIGN.md §5e): piggyback bursts ride only on succeeding deployments
//! (the old pipeline re-ran failed deployments per request; the dispatcher
//! piggybacks on the failing machine), flaky backends serve single-request
//! services (retry wall-clock spread is engine-visible under concurrency),
//! and services are spaced so no two machines are ever in flight at once.

use cluster::{ClusterBackend, DockerCluster, FaultPlan, FaultyCluster, ServiceTemplate};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use edgectl::{Controller, ControllerConfig, ControllerOutput, NearestReadyFirst, NearestWaiting};
use proptest::prelude::*;
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

const CLOUD_PORT: PortId = PortId(0);
const CLIENT_PORT: PortId = PortId(1);
const DOCKER_PORT: PortId = PortId(2);

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn service_addr(s: u8) -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, s + 1), 80)
}

fn template(s: u8, slow: bool) -> ServiceTemplate {
    // A "slow" service opens its port long after the default 120 s probe
    // budget: every deployment of it times out, in both engines.
    let init = if slow { 200_000.0 } else { 110.0 };
    ServiceTemplate::single(
        format!("svc-{s}"),
        "nginx:1.23.2",
        80,
        DurationDist::constant_ms(init),
    )
}

/// One registered service's request pattern.
#[derive(Debug, Clone)]
struct SvcPlan {
    /// App init far beyond the probe timeout: deployment always fails.
    slow: bool,
    /// Requests within the deployment window (held / piggybacked).
    piggyback: u8,
    /// Extra request offsets in seconds after the first (warm paths, memory
    /// hits, idle-expiry redeploys).
    later: Vec<u32>,
    /// Varies which clients repeat across a service's requests.
    client_salt: u8,
}

#[derive(Debug, Clone)]
struct Scenario {
    /// NearestWaiting (hold requests) vs NearestReadyFirst (cloud + background).
    waiting: bool,
    retries: u32,
    /// Per-mutating-call failure probability, percent.
    fault_rate: Option<u8>,
    backend_seed: u64,
    services: Vec<SvcPlan>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let svc = (
        prop_oneof![4 => Just(false), 1 => Just(true)],
        0u8..3,
        proptest::collection::vec(5u32..300, 0..3),
        0u8..4,
    )
        .prop_map(|(slow, piggyback, later, client_salt)| SvcPlan {
            slow,
            piggyback,
            later,
            client_salt,
        });
    (
        any::<bool>(),
        0u32..4,
        prop_oneof![3 => Just(None), 1 => Just(Some(30u8)), 1 => Just(Some(50u8))],
        0u64..1_000,
        proptest::collection::vec(svc, 1..4),
    )
        .prop_map(
            |(waiting, retries, fault_rate, backend_seed, mut services)| {
                for s in &mut services {
                    // Keep to the equivalence envelope: failing deployments get
                    // no companions (see module docs).
                    if s.slow || fault_rate.is_some() {
                        s.piggyback = 0;
                        s.later.clear();
                    }
                }
                Scenario {
                    waiting,
                    retries,
                    fault_rate,
                    backend_seed,
                    services,
                }
            },
        )
}

/// Flatten a scenario into a time-ordered `(at, service, client)` schedule.
/// Services start 400 s apart — wider than any deployment, retry ladder, or
/// probe timeout — so machines never overlap across services.
fn events(sc: &Scenario) -> Vec<(SimTime, u8, u8)> {
    let mut ev = Vec::new();
    for (i, s) in sc.services.iter().enumerate() {
        let svc = i as u8;
        let client = |k: u8| (s.client_salt + k) % 4;
        let base = SimTime::ZERO + SimDuration::from_secs(400 * i as u64 + 1);
        ev.push((base, svc, client(0)));
        for k in 0..s.piggyback {
            ev.push((
                base + SimDuration::from_millis(100 + 100 * k as u64),
                svc,
                client(k + 1),
            ));
        }
        for (j, off) in s.later.iter().enumerate() {
            ev.push((
                base + SimDuration::from_secs(*off as u64) + SimDuration::from_millis(j as u64),
                svc,
                client(j as u8),
            ));
        }
    }
    ev.sort_by_key(|e| e.0);
    ev
}

fn config_for(sc: &Scenario) -> ControllerConfig {
    ControllerConfig {
        deploy_retries: sc.retries,
        ..Default::default()
    }
}

fn build_with(sc: &Scenario, reference: bool, config: ControllerConfig) -> Controller {
    let mut b = Controller::builder(config)
        .registries(registries())
        .cloud_port(CLOUD_PORT);
    b = if sc.waiting {
        b.global(NearestWaiting)
    } else {
        b.global(NearestReadyFirst)
    };
    if reference {
        b = b.reference_pipeline();
    }
    let mut c = b.build();
    let rng = SimRng::seed_from_u64(sc.backend_seed);
    let inner = DockerCluster::new(
        "edge-docker",
        IpAddr::new(10, 0, 0, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    );
    let backend: Box<dyn ClusterBackend> = match sc.fault_rate {
        Some(pct) => Box::new(FaultyCluster::new(
            inner,
            FaultPlan::flaky(f64::from(pct) / 100.0),
            rng.stream("faults"),
        )),
        None => Box::new(inner),
    };
    c.attach_cluster(backend, SimDuration::from_micros(300), DOCKER_PORT);
    for (i, s) in sc.services.iter().enumerate() {
        c.catalog
            .register(service_addr(i as u8), template(i as u8, s.slow));
    }
    c
}

fn build(sc: &Scenario, reference: bool) -> Controller {
    build_with(sc, reference, config_for(sc))
}

/// Drive one controller through the schedule, pumping every wakeup due
/// before each packet-in (the simulator's event loop in miniature), then
/// drain everything that remains — machine completions, retarget FlowMods,
/// idle expiry and scale-downs.
fn run(c: &mut Controller, ev: &[(SimTime, u8, u8)]) -> Vec<ControllerOutput> {
    let mut out = Vec::new();
    let pump_until = |c: &mut Controller, upto: SimTime, out: &mut Vec<ControllerOutput>| {
        while let Some(at) = c.next_wakeup() {
            if at > upto {
                break;
            }
            out.extend(c.on_wakeup(at));
        }
    };
    for (i, (t, s, cl)) in ev.iter().enumerate() {
        pump_until(c, *t, &mut out);
        let p = Packet::syn(
            SocketAddr::new(IpAddr::new(10, 1, *s, *cl), 40_000),
            service_addr(*s),
            i as u64,
        );
        out.extend(c.on_packet_in(*t, p, BufferId(i as u64), CLIENT_PORT));
    }
    pump_until(
        c,
        SimTime::ZERO + SimDuration::from_secs(1_000_000),
        &mut out,
    );
    out
}

/// Canonical form: the engines may emit the same outputs in different call
/// order (e.g. past-stamped failure releases), so compare as a multiset
/// keyed by stamp + rendered output.
fn canon(outs: &[ControllerOutput]) -> Vec<String> {
    let mut v: Vec<String> = outs.iter().map(|o| format!("{:?} {o:?}", o.at())).collect();
    v.sort();
    v
}

fn assert_lockstep(sc: &Scenario) -> Result<(), TestCaseError> {
    let ev = events(sc);
    let mut stepped = build(sc, false);
    let mut reference = build(sc, true);
    let out_s = canon(&run(&mut stepped, &ev));
    let out_r = canon(&run(&mut reference, &ev));
    prop_assert_eq!(
        out_s.len(),
        out_r.len(),
        "output counts diverge\nstepped: {:#?}\nreference: {:#?}",
        out_s,
        out_r
    );
    for (a, b) in out_s.iter().zip(out_r.iter()) {
        prop_assert_eq!(a, b);
    }

    let ss = &stepped.stats;
    let rs = &reference.stats;
    prop_assert_eq!(ss.packet_ins, rs.packet_ins, "packet_ins");
    prop_assert_eq!(ss.memory_hits, rs.memory_hits, "memory_hits");
    prop_assert_eq!(ss.cloud_forwards, rs.cloud_forwards, "cloud_forwards");
    prop_assert_eq!(ss.held_requests, rs.held_requests, "held_requests");
    prop_assert_eq!(ss.detoured_requests, rs.detoured_requests, "detoured");
    prop_assert_eq!(ss.failed_deployments, rs.failed_deployments, "failed");
    prop_assert_eq!(ss.scale_downs, rs.scale_downs, "scale_downs");
    prop_assert_eq!(ss.removals, rs.removals, "removals");
    prop_assert_eq!(ss.retargets, rs.retargets, "retargets");
    prop_assert_eq!(ss.retried_operations, rs.retried_operations, "retries");
    prop_assert_eq!(ss.crash_recoveries, rs.crash_recoveries, "recoveries");

    prop_assert_eq!(ss.deployments.len(), rs.deployments.len(), "record count");
    for (a, b) in ss.deployments.iter().zip(rs.deployments.iter()) {
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    // Neither engine may leave a held request dangling after the drain.
    prop_assert!(stepped.in_flight_deployments(SimTime::ZERO).is_empty());
    prop_assert!(stepped.memory().iter().all(|f| !f.pending));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn stepped_dispatcher_matches_reference_pipeline(sc in scenario_strategy()) {
        assert_lockstep(&sc)?;
    }
}

/// Mutation validation: a broken retry counter must be *visible* to the
/// lockstep comparison. Emulate the mutation by giving the stepped engine a
/// different retry budget than the reference over a flaky backend — for some
/// seed the runs must diverge in retried/failed counts or outputs.
#[test]
fn lockstep_is_sensitive_to_the_retry_budget() {
    let mut diverged = false;
    for seed in 0..50u64 {
        let sc = Scenario {
            waiting: true,
            retries: 3,
            fault_rate: Some(50),
            backend_seed: seed,
            services: vec![SvcPlan {
                slow: false,
                piggyback: 0,
                later: Vec::new(),
                client_salt: 0,
            }],
        };
        let mutated = Scenario {
            retries: 0,
            ..sc.clone()
        };
        let ev = events(&sc);
        let mut a = build(&sc, false);
        let mut b = build(&mutated, true);
        let out_a = canon(&run(&mut a, &ev));
        let out_b = canon(&run(&mut b, &ev));
        if out_a != out_b
            || a.stats.failed_deployments != b.stats.failed_deployments
            || a.stats.retried_operations != b.stats.retried_operations
        {
            diverged = true;
            break;
        }
    }
    assert!(
        diverged,
        "a mutated retry budget must produce a detectable lockstep divergence"
    );
}

/// Mutation validation for the probe deadline: shrinking the stepped
/// engine's probe timeout below a service's app-init time flips its
/// deployments from Ready to Failed, which the comparison must detect.
#[test]
fn lockstep_is_sensitive_to_the_probe_deadline() {
    let sc = Scenario {
        waiting: true,
        retries: 0,
        fault_rate: None,
        backend_seed: 7,
        services: vec![SvcPlan {
            slow: false,
            piggyback: 0,
            later: Vec::new(),
            client_salt: 0,
        }],
    };
    let ev = events(&sc);
    let mut mutated_config = config_for(&sc);
    // Mutation: a probe deadline shorter than nginx's ~110 ms app init plus
    // container start — the stepped machine gives up before the port opens.
    mutated_config.probe_timeout = SimDuration::from_millis(1);
    let mut a = build_with(&sc, false, mutated_config);
    let mut b = build(&sc, true);
    let out_a = canon(&run(&mut a, &ev));
    let out_b = canon(&run(&mut b, &ev));
    assert!(
        out_a != out_b || a.stats.failed_deployments != b.stats.failed_deployments,
        "a mutated probe deadline must produce a detectable lockstep divergence"
    );
    assert_eq!(a.stats.failed_deployments, 1, "mutant times out");
    assert_eq!(b.stats.failed_deployments, 0, "reference succeeds");
}
