//! Property: admission control is airtight. Whatever interleaving of
//! packet-ins, deployment wakeups and replica crashes the controller is
//! driven through, the booked allocation at a capacity-constrained site
//! never exceeds the site's declared [`SiteCapacity`] — not transiently
//! between wakeups, not at quiescence — and the `capacity_violations`
//! counter (incremented by any booking that lands past the budget) stays 0.
//!
//! The schedule deliberately mixes the paths that book and release
//! resources: first-request deploys (book at machine start), crash
//! recoveries mid-probe (the booking must survive the re-issued scale-up
//! without double-counting), failed machines (release), and repeat requests
//! after readiness (admission short-circuit on the existing deployment).

use cluster::{DockerCluster, ServiceTemplate, SiteCapacity};
use containers::image::synthesize_layers;
use containers::{ImageManifest, Runtime};
use edgectl::{ClusterId, Controller, ControllerConfig, NearestWaiting};
use proptest::prelude::*;
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{BufferId, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

const CLOUD_PORT: PortId = PortId(0);
const CLIENT_PORT: PortId = PortId(1);
const DOCKER_PORT: PortId = PortId(2);
const SERVICES: usize = 3;
const EDGE: ClusterId = ClusterId(0);

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn controller(backend_seed: u64, capacity: SiteCapacity) -> Controller {
    let rng = SimRng::seed_from_u64(backend_seed);
    let docker = DockerCluster::new(
        "edge-docker",
        IpAddr::new(10, 0, 0, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    );
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(Box::new(docker), SimDuration::from_micros(300), DOCKER_PORT);
    c.configure_site(EDGE, capacity, Vec::new());
    for s in 0..SERVICES {
        c.catalog.register(
            SocketAddr::new(IpAddr::new(93, 184, 0, s as u8 + 1), 80),
            ServiceTemplate::single(
                format!("svc-{s}"),
                "nginx:1.23.2",
                80,
                DurationDist::constant_ms(110.0),
            ),
        );
    }
    c
}

/// One generated step: advance `dt_ms`, optionally crash a service's
/// replicas first, then send a client request for `service`.
type Step = (u64, u8, usize, bool);

fn run_schedule(
    cpu_capacity: u32,
    max_replicas: u32,
    backend_seed: u64,
    schedule: &[Step],
) -> Result<(), TestCaseError> {
    let capacity = SiteCapacity::new(cpu_capacity, 4_096).with_max_replicas(max_replicas);
    let mut c = controller(backend_seed, capacity);
    let within = |c: &Controller| !c.site_allocation(EDGE).exceeds(&capacity);

    let mut now = SimTime::ZERO;
    let mut tag = 0u64;
    for &(dt_ms, client, service, crash) in schedule {
        now += SimDuration::from_millis(dt_ms);
        // Pump every wakeup due before this step lands, checking the books
        // after each one — the invariant must hold *between* machine phases,
        // not just at quiescence.
        while let Some(w) = c.next_wakeup() {
            if w > now {
                break;
            }
            let _ = c.on_wakeup(w);
            prop_assert!(within(&c), "overbooked after wakeup at {w}");
        }
        if crash {
            let _ = c
                .cluster_mut(EDGE)
                .inject_crash(now, &format!("svc-{service}"));
        }
        tag += 1;
        let packet = Packet::syn(
            SocketAddr::new(IpAddr::new(10, 1, 0, client), 40_000),
            SocketAddr::new(IpAddr::new(93, 184, 0, service as u8 + 1), 80),
            tag,
        );
        let _ = c.on_packet_in(now, packet, BufferId(tag), CLIENT_PORT);
        prop_assert!(within(&c), "overbooked after packet-in at {now}");
    }
    // Drain: let every in-flight machine finish (or die), still checking.
    let mut guard = 0;
    while !c.in_flight_deployments(now).is_empty() {
        let Some(w) = c.next_wakeup() else { break };
        let _ = c.on_wakeup(w);
        prop_assert!(within(&c), "overbooked during drain at {w}");
        guard += 1;
        prop_assert!(guard < 10_000, "drain did not terminate");
    }
    prop_assert_eq!(c.stats.capacity_violations, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No interleaving of deploys, crash recoveries and repeat requests can
    /// push a site past its declared capacity.
    #[test]
    fn no_interleaving_overbooks_a_site(
        cpu_capacity in 100u32..1_000,
        max_replicas in 1u32..4,
        backend_seed in 0u64..1_000,
        schedule in proptest::collection::vec(
            (0u64..3_000, 1u8..5, 0usize..SERVICES, any::<bool>()),
            1..32,
        ),
    ) {
        run_schedule(cpu_capacity, max_replicas, backend_seed, &schedule)?;
    }
}

/// Mutation validation: the property is *sensitive* — a site that books
/// more than it admits (here: a capacity lowered after bookings were made,
/// emulating a booking path that skipped admission) must be caught by the
/// same `exceeds` predicate the property relies on.
#[test]
fn the_books_detect_an_overbooked_site() {
    let generous = SiteCapacity::new(10_000, 65_536);
    let mut c = controller(42, generous);
    let packet = Packet::syn(
        SocketAddr::new(IpAddr::new(10, 1, 0, 1), 40_000),
        SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80),
        1,
    );
    let _ = c.on_packet_in(SimTime::ZERO, packet, BufferId(1), CLIENT_PORT);
    let allocated = c.site_allocation(EDGE);
    assert!(allocated.replicas > 0, "the deploy must have booked");
    let tiny = SiteCapacity::new(allocated.cpu_millis as u32 - 1, 65_536);
    assert!(
        allocated.exceeds(&tiny),
        "an allocation past the budget must be visible to the invariant"
    );
}
