//! Fault interleavings that were *impossible* under the old synchronous
//! pipeline: with the dispatcher a deployment is a state machine advanced by
//! discrete wakeups, so a backend fault or an instance crash can land
//! **between** phases — in the back-off window between Create and Scale-Up,
//! or inside the probe window — and is observed and handled by the next
//! step. The synchronous pipeline precomputed the whole deployment in one
//! call; nothing could happen "during" it.

use cluster::{
    ClusterBackend, ClusterError, ClusterKind, CrashOutcome, DockerCluster, FaultPlan,
    FaultyCluster, ScaleReceipt, ServiceStatus, ServiceTemplate, SiteCapacity,
};
use containers::image::synthesize_layers;
use containers::{ImageManifest, ImageRef, Runtime};
use edgectl::{
    AdmissionError, ClusterId, Controller, ControllerConfig, ControllerOutput, DeployError,
    DeployPhaseKind, NearestWaiting,
};
use registry::{Registry, RegistryProfile, RegistrySet};
use simcore::{DurationDist, SimDuration, SimRng, SimTime};
use simnet::openflow::{Action, BufferId, FlowSpec, PortId};
use simnet::{IpAddr, Packet, SocketAddr};

const CLOUD_PORT: PortId = PortId(0);
const CLIENT_PORT: PortId = PortId(1);
const DOCKER_PORT: PortId = PortId(2);

/// Fault-RNG seed for [`scale_down_retry_succeeds_after_transient_fault`]:
/// with `scale_down_failure: 0.5` this stream fails the first scale-down
/// roll and passes a later one (verified; the shim RNG is a fixed stream
/// per seed, so this cannot rot silently — the test asserts both halves).
const FLAKY_SCALE_DOWN_SEED: u64 = 0;

fn registries() -> RegistrySet {
    let mut hub = Registry::new(RegistryProfile::docker_hub());
    hub.publish(ImageManifest::new(
        "nginx:1.23.2",
        synthesize_layers(1, 141_000_000, 6),
    ));
    let mut s = RegistrySet::new();
    s.add(hub);
    s
}

fn service_addr() -> SocketAddr {
    SocketAddr::new(IpAddr::new(93, 184, 0, 1), 80)
}

fn packet(client: u8, tag: u64) -> Packet {
    Packet::syn(
        SocketAddr::new(IpAddr::new(10, 1, 0, client), 40_000),
        service_addr(),
        tag,
    )
}

fn docker(seed: u64) -> DockerCluster {
    let rng = SimRng::seed_from_u64(seed);
    DockerCluster::new(
        "edge-docker",
        IpAddr::new(10, 0, 0, 100),
        Runtime::egs(rng.stream("rt")),
        rng.stream("docker"),
    )
}

/// A backend whose next `n` scale-up calls fail deterministically — the
/// fault lands exactly in the gap between a successful Create and the
/// Scale-Up, which only the stepped dispatcher can observe mid-flight.
struct FailingScaleUp {
    inner: DockerCluster,
    failures_left: u32,
}

impl ClusterBackend for FailingScaleUp {
    fn cluster_name(&self) -> &str {
        self.inner.cluster_name()
    }
    fn kind(&self) -> ClusterKind {
        self.inner.kind()
    }
    fn pull(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
        registries: &RegistrySet,
    ) -> Result<SimTime, ClusterError> {
        self.inner.pull(now, template, registries)
    }
    fn create(
        &mut self,
        now: SimTime,
        template: &ServiceTemplate,
    ) -> Result<SimTime, ClusterError> {
        self.inner.create(now, template)
    }
    fn scale_up(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<ScaleReceipt, ClusterError> {
        if self.failures_left > 0 {
            self.failures_left -= 1;
            return Err(ClusterError::InsufficientResources("node pressure"));
        }
        self.inner.scale_up(now, service, replicas)
    }
    fn scale_down(
        &mut self,
        now: SimTime,
        service: &str,
        replicas: u32,
    ) -> Result<SimTime, ClusterError> {
        self.inner.scale_down(now, service, replicas)
    }
    fn remove(&mut self, now: SimTime, service: &str) -> Result<SimTime, ClusterError> {
        self.inner.remove(now, service)
    }
    fn delete_image(&mut self, now: SimTime, image: &ImageRef) -> bool {
        self.inner.delete_image(now, image)
    }
    fn status(&self, now: SimTime, service: &str) -> ServiceStatus {
        self.inner.status(now, service)
    }
    fn has_images(&self, template: &ServiceTemplate) -> bool {
        self.inner.has_images(template)
    }
    fn is_ready(&self, now: SimTime, service: &str) -> bool {
        self.inner.is_ready(now, service)
    }
    fn replica_endpoints(&self, now: SimTime, service: &str) -> Vec<SocketAddr> {
        self.inner.replica_endpoints(now, service)
    }
    fn services(&self) -> Vec<String> {
        self.inner.services()
    }
    fn load(&self) -> f64 {
        self.inner.load()
    }
    fn inject_crash(&mut self, now: SimTime, service: &str) -> CrashOutcome {
        self.inner.inject_crash(now, service)
    }
}

fn controller_with(backend: Box<dyn ClusterBackend>, config: ControllerConfig) -> Controller {
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(backend, SimDuration::from_micros(300), DOCKER_PORT);
    c.catalog.register(
        service_addr(),
        ServiceTemplate::single(
            "edge-nginx",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(110.0),
        ),
    );
    c
}

fn release_time(outputs: &[ControllerOutput]) -> SimTime {
    outputs
        .iter()
        .find_map(|o| match o {
            ControllerOutput::ReleaseViaTable { at, .. } => Some(*at),
            _ => None,
        })
        .expect("outputs must release the buffered packet")
}

fn pump_one(c: &mut Controller, out: &mut Vec<ControllerOutput>) -> SimTime {
    let at = c.next_wakeup().expect("a wakeup must be armed");
    out.extend(c.on_wakeup(at));
    at
}

/// The ISSUE's headline interleaving: Create succeeds, the Scale-Up fails,
/// and the machine sits in its back-off window *between Create and Scale-Up*
/// — observable mid-flight via `in_flight_deployments`/`deployment_phase` —
/// then the retry wakeup re-issues the scale-up and the held request is
/// still served at the edge.
#[test]
fn fault_between_create_and_scale_up_is_observed_and_retried() {
    let config = ControllerConfig {
        deploy_retries: 2,
        retry_backoff: SimDuration::from_millis(250),
        ..Default::default()
    };
    let mut c = controller_with(
        Box::new(FailingScaleUp {
            inner: docker(1),
            failures_left: 1,
        }),
        config,
    );

    let svc = c.catalog.id_of("edge-nginx").expect("registered");
    let mut out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    assert!(out.is_empty(), "request is held while the machine runs");

    // Walk wakeups until the failed scale-up parks the machine in its
    // back-off window. On a *successful* path the ScalingUp phase is pumped
    // through within a single wakeup (create completes → scale-up issued →
    // Probing), so catching `ScalingUp` between wakeups at all means the
    // machine is sitting in the gap between Create and Scale-Up.
    let edge = ClusterId(0);
    let mut backoff_seen = false;
    for _ in 0..64 {
        let in_flight = c.in_flight_deployments(SimTime::ZERO);
        assert!(
            in_flight.contains(&(svc, edge)),
            "machine must stay in flight across the fault"
        );
        if c.deployment_phase(edge, svc) == Some(DeployPhaseKind::ScalingUp) {
            backoff_seen = true;
            break;
        }
        pump_one(&mut c, &mut out);
    }
    assert!(
        backoff_seen,
        "the dispatcher must expose the machine mid-flight between Create and Scale-Up"
    );
    assert_eq!(c.stats.deployments.len(), 0, "nothing completed yet");

    // The retry wakeup re-issues the scale-up; the deployment completes and
    // the held request is released toward the edge, not the cloud.
    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        pump_one(&mut c, &mut out);
    }
    assert_eq!(c.stats.failed_deployments, 0);
    assert_eq!(c.stats.cloud_forwards, 0, "no cloud fallback");
    assert_eq!(c.stats.deployments.len(), 1);
    assert_eq!(c.stats.retried_operations, 1);
    let rec = &c.stats.deployments[0];
    assert!(rec.create.is_some());
    let (_, create_end) = rec.create.expect("created");
    let (scale_issued, _, _) = rec.scale_up.expect("scaled up on retry");
    assert!(
        scale_issued >= create_end + SimDuration::from_millis(250),
        "retried scale-up must be delayed by one back-off: {scale_issued} vs {create_end}"
    );
    // Released to the edge instance: the forward FlowMod rewrites the port.
    let forward = out
        .iter()
        .find_map(|o| match o {
            ControllerOutput::FlowMod {
                spec: FlowSpec { actions, .. },
                ..
            } => Some(actions.clone()),
            _ => None,
        })
        .expect("flows installed");
    assert!(matches!(forward[2], Action::Output(p) if p == DOCKER_PORT));
    release_time(&out);
}

/// Retry exhaustion: every scale-up attempt fails, the machine dies in the
/// ScalingUp phase and the held request falls back to the cloud. The
/// `last_deploy_failure` diagnostics name the phase and the backend error.
#[test]
fn scale_up_retry_exhaustion_fails_over_to_cloud() {
    let config = ControllerConfig {
        deploy_retries: 2,
        retry_backoff: SimDuration::from_millis(250),
        ..Default::default()
    };
    let mut c = controller_with(
        Box::new(FailingScaleUp {
            inner: docker(2),
            failures_left: u32::MAX,
        }),
        config,
    );

    let mut out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        pump_one(&mut c, &mut out);
    }
    assert_eq!(c.stats.failed_deployments, 1);
    assert_eq!(
        c.stats.retried_operations, 2,
        "the full retry budget burned"
    );
    assert_eq!(
        c.stats.cloud_forwards, 1,
        "held request escapes to the cloud"
    );
    assert_eq!(c.stats.deployments.len(), 0);

    let failure = c.last_deploy_failure().expect("failure recorded");
    assert_eq!(failure.cluster, ClusterId(0));
    assert_eq!(failure.phase, DeployPhaseKind::ScalingUp);
    assert!(
        matches!(
            failure.error,
            DeployError::Cluster(ClusterError::InsufficientResources { .. })
        ),
        "diagnostics carry the backend error: {:?}",
        failure.error
    );
    // The release is stamped back at the request's decision instant, so the
    // client never waits out the whole retry ladder.
    assert!(release_time(&out) - SimTime::ZERO <= SimDuration::from_millis(5));
    // No pending placeholder survives a failed machine.
    assert!(c.memory().iter().all(|f| !f.pending));
}

/// A replica crash *inside the probe window* (after the scale-up was
/// accepted, before the port opened): plain Docker won't self-heal, so the
/// dispatcher observes zero ready replicas past the backend's own readiness
/// estimate and re-issues the scale-up — a recovery the synchronous pipeline
/// could never perform because nothing could crash "during" its one call.
#[test]
fn replica_crash_during_probe_window_is_recovered() {
    let config = ControllerConfig {
        deploy_retries: 2,
        ..Default::default()
    };
    let mut c = controller_with(Box::new(docker(3)), config);
    let svc = c.catalog.id_of("edge-nginx").expect("registered");
    let edge = ClusterId(0);

    let mut out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);

    // Advance until the machine enters the probe loop.
    let mut probing_at = None;
    for _ in 0..64 {
        if c.deployment_phase(edge, svc) == Some(DeployPhaseKind::Probing) {
            probing_at = c.next_wakeup();
            break;
        }
        pump_one(&mut c, &mut out);
    }
    let probing_at = probing_at.expect("machine must reach Probing");

    // Kill the starting replica right at the first probe instant.
    let outcome = c.cluster_mut(edge).inject_crash(probing_at, "edge-nginx");
    assert_eq!(outcome, CrashOutcome::Down, "docker does not self-heal");

    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        pump_one(&mut c, &mut out);
    }
    assert_eq!(
        c.stats.crash_recoveries, 1,
        "the dispatcher re-issued the scale-up"
    );
    assert_eq!(c.stats.failed_deployments, 0);
    assert_eq!(c.stats.deployments.len(), 1, "deployment still completes");
    assert_eq!(c.stats.cloud_forwards, 0);
    release_time(&out);
}

/// Probe-timeout `Failed` path: the port never opens inside the window; the
/// machine dies in Probing and `last_deploy_failure` carries the deadline.
#[test]
fn probe_timeout_records_failed_probing_phase() {
    let config = ControllerConfig {
        probe_timeout: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut c = Controller::builder(config)
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        Box::new(docker(4)),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    // 30 s of app init — far beyond the 1 s probe budget.
    c.catalog.register(
        service_addr(),
        ServiceTemplate::single(
            "edge-nginx",
            "nginx:1.23.2",
            80,
            DurationDist::constant_ms(30_000.0),
        ),
    );

    let mut out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        pump_one(&mut c, &mut out);
    }
    assert_eq!(c.stats.failed_deployments, 1);
    let failure = c.last_deploy_failure().expect("failure recorded");
    assert_eq!(failure.phase, DeployPhaseKind::Probing);
    let DeployError::ProbeTimeout { deadline } = failure.error else {
        panic!("expected a probe timeout, got {:?}", failure.error);
    };
    // The deadline is one probe budget after the scale-up accept, which is
    // itself well before the 30 s app init would have completed.
    assert!(deadline - SimTime::ZERO < SimDuration::from_secs(20));
    assert_eq!(c.stats.cloud_forwards, 1);
    release_time(&out);
}

/// Deploy one service with waiting and pump until the machine completes;
/// returns the instant the deployment was detected ready.
fn deploy_and_settle(c: &mut Controller) -> SimTime {
    let mut out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);
    while !c.in_flight_deployments(SimTime::ZERO).is_empty() {
        pump_one(c, &mut out);
    }
    assert_eq!(c.stats.deployments.len(), 1, "deployment must complete");
    release_time(&out);
    c.stats.deployments[0].ready_detected
}

/// Idle scale-down hitting a faulty backend API (`cluster::FaultyCluster`
/// with `scale_down_failure: 1.0`): the failed call must leave
/// `stats.scale_downs` unchanged, keep the replica running, and arm a retry
/// at the next due wakeup (one `retry_backoff` later) instead of silently
/// leaking the idle instance.
#[test]
fn scale_down_fault_leaves_stats_unchanged_and_arms_retry() {
    let config = ControllerConfig {
        memory_idle_timeout: SimDuration::from_secs(2),
        scale_down_idle: true,
        retry_backoff: SimDuration::from_millis(250),
        ..Default::default()
    };
    let plan = FaultPlan {
        scale_down_failure: 1.0,
        ..FaultPlan::none()
    };
    let mut c = controller_with(
        Box::new(FaultyCluster::new(
            docker(5),
            plan,
            SimRng::seed_from_u64(7),
        )),
        config,
    );
    let ready = deploy_and_settle(&mut c);
    let edge = ClusterId(0);

    // The memorized flow expires; housekeeping tries to scale down and the
    // backend call fails.
    let mut out = Vec::new();
    let first_attempt = pump_one(&mut c, &mut out);
    assert!(first_attempt >= ready + SimDuration::from_secs(2));
    assert_eq!(c.stats.scale_downs, 0, "failed call must not be counted");
    assert!(
        c.cluster_mut(edge)
            .status(first_attempt, "edge-nginx")
            .ready_replicas
            > 0,
        "the instance must still be running"
    );

    // The candidate is not dropped: a retry is armed one back-off later, and
    // (with the fault still active) keeps re-arming after every attempt.
    assert_eq!(
        c.next_wakeup(),
        Some(first_attempt + SimDuration::from_millis(250)),
        "retry must be the next due wakeup"
    );
    let second_attempt = pump_one(&mut c, &mut out);
    assert_eq!(c.stats.scale_downs, 0);
    assert_eq!(
        c.next_wakeup(),
        Some(second_attempt + SimDuration::from_millis(250))
    );
    assert!(out.is_empty(), "scale-down housekeeping emits no outputs");
}

/// Admission rejection before the machine ever starts: the site's declared
/// capacity cannot hold the service's resource request, so the scheduler's
/// deploy decision is refused *before* any backend call — no machine, no
/// retries — and the held request escapes to the cloud immediately, with the
/// typed [`AdmissionError`] surfaced for diagnostics.
#[test]
fn admission_rejection_falls_back_to_cloud() {
    let mut c = controller_with(Box::new(docker(7)), ControllerConfig::default());
    // `edge-nginx` asks for 250 milli-cores (the template default); a site
    // with 100m free can never admit it.
    c.configure_site(ClusterId(0), SiteCapacity::new(100, 4_096), Vec::new());

    let out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);

    assert!(
        c.in_flight_deployments(SimTime::ZERO).is_empty(),
        "a rejected decision must not start a deployment machine"
    );
    assert_eq!(c.stats.admission_rejections, 1);
    assert_eq!(c.stats.capacity_violations, 0);
    assert_eq!(c.stats.cloud_forwards, 1, "request escapes to the cloud");
    assert_eq!(c.stats.failed_deployments, 0, "rejection is not a failure");
    assert_eq!(c.stats.deployments.len(), 0);
    match c.last_admission_error() {
        Some(AdmissionError::Capacity { cluster, .. }) => assert_eq!(*cluster, ClusterId(0)),
        other => panic!("expected a capacity rejection, got {other:?}"),
    }
    // Released right away toward the cloud — the client never waits on a
    // deployment that was never going to be admitted.
    assert!(release_time(&out) - SimTime::ZERO <= SimDuration::from_millis(5));
    assert!(c.memory().iter().all(|f| !f.pending));
}

/// Affinity rejection: the service requires a label no site advertises. The
/// typed error names the missing label, and the request is cloud-served.
#[test]
fn unmet_affinity_label_is_rejected_with_the_label_named() {
    let mut c = Controller::builder(ControllerConfig::default())
        .global(NearestWaiting)
        .registries(registries())
        .cloud_port(CLOUD_PORT)
        .build();
    c.attach_cluster(
        Box::new(docker(8)),
        SimDuration::from_micros(300),
        DOCKER_PORT,
    );
    let mut template = ServiceTemplate::single(
        "edge-nginx",
        "nginx:1.23.2",
        80,
        DurationDist::constant_ms(110.0),
    );
    template.requirements.label_match_all = vec!["accelerator:gpu".into()];
    c.catalog.register(service_addr(), template);

    let out = c.on_packet_in(SimTime::ZERO, packet(1, 1), BufferId(0), CLIENT_PORT);

    assert!(c.in_flight_deployments(SimTime::ZERO).is_empty());
    assert_eq!(c.stats.admission_rejections, 1);
    assert_eq!(c.stats.cloud_forwards, 1);
    match c.last_admission_error() {
        Some(AdmissionError::RequirementsUnmet { cluster, label }) => {
            assert_eq!(*cluster, ClusterId(0));
            assert_eq!(label, "accelerator:gpu");
        }
        other => panic!("expected a requirements rejection, got {other:?}"),
    }
    release_time(&out);
}

/// A *transient* scale-down fault: the first backend call fails, the armed
/// retry succeeds, and exactly one scale-down lands — delayed by at least one
/// back-off relative to the first (failed) attempt.
#[test]
fn scale_down_retry_succeeds_after_transient_fault() {
    let config = ControllerConfig {
        memory_idle_timeout: SimDuration::from_secs(2),
        scale_down_idle: true,
        retry_backoff: SimDuration::from_millis(250),
        ..Default::default()
    };
    let plan = FaultPlan {
        scale_down_failure: 0.5,
        ..FaultPlan::none()
    };
    // Seed picked so the first scale-down roll fails and a later one
    // succeeds (deterministic: the shim RNG is a fixed stream per seed).
    let mut c = controller_with(
        Box::new(FaultyCluster::new(
            docker(6),
            plan,
            SimRng::seed_from_u64(FLAKY_SCALE_DOWN_SEED),
        )),
        config,
    );
    deploy_and_settle(&mut c);
    let edge = ClusterId(0);

    let mut out = Vec::new();
    let first_attempt = pump_one(&mut c, &mut out);
    assert_eq!(
        c.stats.scale_downs, 0,
        "the first scale-down attempt must fail for this seed"
    );

    let mut succeeded_at = None;
    for _ in 0..32 {
        let at = pump_one(&mut c, &mut out);
        if c.stats.scale_downs == 1 {
            succeeded_at = Some(at);
            break;
        }
    }
    let succeeded_at = succeeded_at.expect("a retry must eventually succeed");
    assert!(
        succeeded_at >= first_attempt + SimDuration::from_millis(250),
        "success must come from a back-off retry: {succeeded_at} vs {first_attempt}"
    );
    assert_eq!(
        c.cluster_mut(edge)
            .status(succeeded_at, "edge-nginx")
            .ready_replicas,
        0,
        "the idle instance is finally scaled to zero"
    );
}
