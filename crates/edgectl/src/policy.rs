//! Configuration-driven scheduler selection.
//!
//! Replaces the ad-hoc string matching scenario parsers used to do with a
//! single [`SchedulerRegistry`]: every global-scheduler policy registers a
//! canonical name, aliases and a factory, scenario YAML / CLI flags carry a
//! [`SchedulerSpec`], and unknown names fail with a typed [`UnknownPolicy`]
//! that lists what *is* available.

use std::fmt;

use crate::provisioning::{BoundedCostProvisioning, TierSpillPlacement};
use crate::scheduler::{
    GlobalScheduler, HybridDockerFirst, HybridWasmFirst, LeastLoaded, NearestReadyFirst,
    NearestWaiting,
};

/// Which global scheduler a scenario wants, by canonical name or alias.
/// `Default` is the paper's with-waiting policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerSpec {
    name: String,
}

impl SchedulerSpec {
    /// A spec for `name` (canonical or alias); validated when the registry
    /// resolves it, not here — parsing stays infallible.
    pub fn named(name: impl Into<String>) -> SchedulerSpec {
        SchedulerSpec { name: name.into() }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn nearest_waiting() -> SchedulerSpec {
        SchedulerSpec::named("nearest-waiting")
    }
    pub fn nearest_ready_first() -> SchedulerSpec {
        SchedulerSpec::named("nearest-ready-first")
    }
    pub fn hybrid_docker_first() -> SchedulerSpec {
        SchedulerSpec::named("hybrid-docker-first")
    }
    pub fn hybrid_wasm_first() -> SchedulerSpec {
        SchedulerSpec::named("hybrid-wasm-first")
    }
    pub fn least_loaded() -> SchedulerSpec {
        SchedulerSpec::named("least-loaded")
    }
    pub fn bounded_cost() -> SchedulerSpec {
        SchedulerSpec::named("bounded-cost")
    }
    pub fn tier_spill() -> SchedulerSpec {
        SchedulerSpec::named("tier-spill")
    }
}

impl Default for SchedulerSpec {
    fn default() -> Self {
        SchedulerSpec::nearest_waiting()
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A scheduler name no registry entry answers to. Lists the canonical names
/// that would have worked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    pub requested: String,
    pub available: Vec<&'static str>,
}

impl fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler `{}` (available: {})",
            self.requested,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// One registered policy: identity, docs and a factory.
pub struct RegistryEntry {
    /// Canonical name ([`SchedulerSpec`]s resolve against this first).
    pub name: &'static str,
    /// Accepted alternative spellings (legacy scenario files).
    pub aliases: &'static [&'static str],
    /// One-line description for `edgesim schedulers`.
    pub description: &'static str,
    factory: fn() -> Box<dyn GlobalScheduler>,
}

impl RegistryEntry {
    pub fn create(&self) -> Box<dyn GlobalScheduler> {
        (self.factory)()
    }
}

/// The global-scheduler policy registry.
pub struct SchedulerRegistry {
    entries: Vec<RegistryEntry>,
}

impl SchedulerRegistry {
    /// Every in-tree policy: the paper's four, the load-aware ablation, and
    /// the two Cohen et al. provisioning ports.
    pub fn builtin() -> SchedulerRegistry {
        SchedulerRegistry {
            entries: vec![
                RegistryEntry {
                    name: "nearest-waiting",
                    aliases: &["waiting"],
                    description: "paper Fig. 5: deploy at the nearest cluster, hold the request",
                    factory: || Box::new(NearestWaiting),
                },
                RegistryEntry {
                    name: "nearest-ready-first",
                    aliases: &["without-waiting"],
                    description:
                        "paper Fig. 3: serve from a ready instance or the cloud, deploy at the nearest",
                    factory: || Box::new(NearestReadyFirst),
                },
                RegistryEntry {
                    name: "hybrid-docker-first",
                    aliases: &["hybrid"],
                    description: "paper §VII: Docker answers first, Kubernetes takes over",
                    factory: || Box::new(HybridDockerFirst),
                },
                RegistryEntry {
                    name: "hybrid-wasm-first",
                    aliases: &[],
                    description: "paper §VIII: a wasm function answers first, containers take over",
                    factory: || Box::new(HybridWasmFirst),
                },
                RegistryEntry {
                    name: "least-loaded",
                    aliases: &[],
                    description: "load-aware ablation: distance inflated by CPU load",
                    factory: || Box::new(LeastLoaded::default()),
                },
                RegistryEntry {
                    name: "bounded-cost",
                    aliases: &["ski-rental"],
                    description:
                        "Cohen et al. arXiv:2202.08903: rent-or-buy provisioning, 2-competitive cost",
                    factory: || Box::new(BoundedCostProvisioning::default()),
                },
                RegistryEntry {
                    name: "tier-spill",
                    aliases: &["multi-tier"],
                    description:
                        "Cohen et al. arXiv:2312.11187: lowest latency tier with room, cloud on overflow",
                    factory: || Box::new(TierSpillPlacement),
                },
            ],
        }
    }

    /// The registered entries, in listing order.
    pub fn entries(&self) -> &[RegistryEntry] {
        &self.entries
    }

    /// Canonical policy names, in listing order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Find the entry answering to `name` (canonical or alias).
    pub fn resolve(&self, name: &str) -> Result<&RegistryEntry, UnknownPolicy> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
            .ok_or_else(|| UnknownPolicy {
                requested: name.to_owned(),
                available: self.names(),
            })
    }

    /// Instantiate the policy a spec names.
    pub fn create(&self, spec: &SchedulerSpec) -> Result<Box<dyn GlobalScheduler>, UnknownPolicy> {
        Ok(self.resolve(spec.name())?.create())
    }
}

impl Default for SchedulerRegistry {
    fn default() -> Self {
        SchedulerRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_all_policies() {
        let reg = SchedulerRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec![
                "nearest-waiting",
                "nearest-ready-first",
                "hybrid-docker-first",
                "hybrid-wasm-first",
                "least-loaded",
                "bounded-cost",
                "tier-spill",
            ]
        );
    }

    #[test]
    fn create_resolves_canonical_names_and_aliases() {
        let reg = SchedulerRegistry::builtin();
        for (spec, want) in [
            (SchedulerSpec::default(), "nearest-waiting"),
            (SchedulerSpec::named("waiting"), "nearest-waiting"),
            (
                SchedulerSpec::named("without-waiting"),
                "nearest-ready-first",
            ),
            (SchedulerSpec::named("hybrid"), "hybrid-docker-first"),
            (SchedulerSpec::bounded_cost(), "bounded-cost"),
            (SchedulerSpec::named("multi-tier"), "tier-spill"),
        ] {
            let policy = reg.create(&spec).expect(want);
            assert_eq!(policy.name(), want, "spec {spec}");
        }
    }

    #[test]
    fn unknown_policy_lists_available_names() {
        let reg = SchedulerRegistry::builtin();
        let err = match reg.create(&SchedulerSpec::named("magic")) {
            Err(err) => err,
            Ok(_) => panic!("`magic` must not resolve"),
        };
        assert_eq!(err.requested, "magic");
        let msg = err.to_string();
        assert!(msg.contains("unknown scheduler `magic`"), "{msg}");
        assert!(msg.contains("nearest-waiting"), "{msg}");
        assert!(msg.contains("tier-spill"), "{msg}");
    }

    #[test]
    fn every_entry_factory_matches_its_name() {
        let reg = SchedulerRegistry::builtin();
        for entry in reg.entries() {
            assert_eq!(entry.create().name(), entry.name);
            assert!(!entry.description.is_empty());
        }
    }
}
