//! Proactive deployment prediction.
//!
//! The paper's introduction concedes that "prediction algorithms could be
//! used to pre-deploy the required services just in time. However, a hundred
//! percent correct prediction rate is impossible" — on-demand deployment is
//! the answer for the misses, and the discussion (§VII) closes with
//! "more so when combined with good prediction for proactive deployment."
//! This module supplies that combination: a [`Predictor`] observes the
//! request stream and nominates services to pre-deploy; the controller
//! deploys nominations in the background exactly like a BEST choice.
//!
//! Implementations:
//!
//! * [`NoPrediction`] — the paper's evaluated baseline (pure on-demand),
//! * [`PopularityPredictor`] — exponentially-decayed request counts; predicts
//!   the services most likely to be requested again (captures re-deployment
//!   after scale-down and steady popularity),
//! * [`OraclePredictor`] — fed the future request schedule; the upper bound
//!   a perfect ML model could reach (the "100 % correct prediction" that the
//!   paper argues is unattainable in practice — useful to bound the benefit).

use std::collections::BTreeMap;

use simcore::{SimDuration, SimTime};
use simnet::SocketAddr;

/// Observes requests and nominates services for proactive deployment.
pub trait Predictor: Send {
    fn name(&self) -> &'static str;

    /// Called for every request the controller dispatches.
    fn observe(&mut self, now: SimTime, service_addr: SocketAddr);

    /// Services (by registered cloud address) that should be running within
    /// the given `horizon`; the controller pre-deploys any that are not.
    fn predict(&mut self, now: SimTime, horizon: SimDuration) -> Vec<SocketAddr>;
}

// Boxed predictors stay usable where an `impl Predictor` is expected
// (e.g. `ControllerBuilder::predictor`).
impl Predictor for Box<dyn Predictor> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn observe(&mut self, now: SimTime, service_addr: SocketAddr) {
        (**self).observe(now, service_addr)
    }

    fn predict(&mut self, now: SimTime, horizon: SimDuration) -> Vec<SocketAddr> {
        (**self).predict(now, horizon)
    }
}

/// The no-op baseline: pure on-demand deployment (the paper's setting).
#[derive(Debug, Default, Clone)]
pub struct NoPrediction;

impl Predictor for NoPrediction {
    fn name(&self) -> &'static str {
        "none"
    }
    fn observe(&mut self, _now: SimTime, _service: SocketAddr) {}
    fn predict(&mut self, _now: SimTime, _horizon: SimDuration) -> Vec<SocketAddr> {
        Vec::new()
    }
}

/// Exponentially-decayed popularity scores; predicts the top-`k` services
/// whose score exceeds `threshold`.
#[derive(Debug, Clone)]
pub struct PopularityPredictor {
    /// Score half-life.
    pub half_life: SimDuration,
    /// Nominate at most this many services per prediction.
    pub top_k: usize,
    /// Minimum decayed score to qualify.
    pub threshold: f64,
    // BTreeMap: `predict` iterates to rank candidates; address order keeps
    // the scan deterministic (ties already break on the address).
    scores: BTreeMap<SocketAddr, (f64, SimTime)>,
}

impl PopularityPredictor {
    pub fn new(half_life: SimDuration, top_k: usize, threshold: f64) -> PopularityPredictor {
        assert!(!half_life.is_zero());
        PopularityPredictor {
            half_life,
            top_k,
            threshold,
            scores: BTreeMap::new(),
        }
    }

    fn decayed(&self, score: f64, since: SimDuration) -> f64 {
        let half_lives = since.as_secs_f64() / self.half_life.as_secs_f64();
        score * 0.5_f64.powf(half_lives)
    }

    /// Current decayed score of a service (diagnostics).
    pub fn score(&self, now: SimTime, service: SocketAddr) -> f64 {
        self.scores
            .get(&service)
            .map(|&(s, at)| self.decayed(s, now.since(at)))
            .unwrap_or(0.0)
    }
}

impl Predictor for PopularityPredictor {
    fn name(&self) -> &'static str {
        "popularity"
    }

    fn observe(&mut self, now: SimTime, service: SocketAddr) {
        let (score, last) = self.scores.get(&service).copied().unwrap_or((0.0, now));
        let decayed = self.decayed(score, now.since(last));
        self.scores.insert(service, (decayed + 1.0, now));
    }

    fn predict(&mut self, now: SimTime, _horizon: SimDuration) -> Vec<SocketAddr> {
        let mut scored: Vec<(SocketAddr, f64)> = self
            .scores
            .iter()
            .map(|(&addr, &(s, at))| (addr, self.decayed(s, now.since(at))))
            .filter(|&(_, s)| s >= self.threshold)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(self.top_k);
        scored.into_iter().map(|(a, _)| a).collect()
    }
}

/// Perfect foresight: knows the full request schedule and nominates every
/// service with a request inside the horizon. Bounds the achievable benefit.
#[derive(Debug, Clone, Default)]
pub struct OraclePredictor {
    /// (request time, service) pairs, sorted by time.
    schedule: Vec<(SimTime, SocketAddr)>,
}

impl OraclePredictor {
    pub fn with_schedule(mut schedule: Vec<(SimTime, SocketAddr)>) -> OraclePredictor {
        schedule.sort_by_key(|&(t, a)| (t, a));
        OraclePredictor { schedule }
    }
}

impl Predictor for OraclePredictor {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn observe(&mut self, _now: SimTime, _service: SocketAddr) {}

    fn predict(&mut self, now: SimTime, horizon: SimDuration) -> Vec<SocketAddr> {
        let end = now + horizon;
        let mut out: Vec<SocketAddr> = self
            .schedule
            .iter()
            .filter(|&&(t, _)| t >= now && t <= end)
            .map(|&(_, a)| a)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::IpAddr;

    fn addr(d: u8) -> SocketAddr {
        SocketAddr::new(IpAddr::new(93, 184, 0, d), 80)
    }
    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn no_prediction_predicts_nothing() {
        let mut p = NoPrediction;
        p.observe(t(0), addr(1));
        assert!(p.predict(t(1), SimDuration::from_secs(60)).is_empty());
    }

    #[test]
    fn popularity_ranks_by_frequency() {
        let mut p = PopularityPredictor::new(SimDuration::from_secs(60), 2, 0.5);
        for _ in 0..10 {
            p.observe(t(1), addr(1));
        }
        for _ in 0..3 {
            p.observe(t(1), addr(2));
        }
        p.observe(t(1), addr(3));
        let pred = p.predict(t(2), SimDuration::from_secs(60));
        assert_eq!(pred, vec![addr(1), addr(2)], "top-2 by score");
    }

    #[test]
    fn popularity_decays_over_time() {
        let mut p = PopularityPredictor::new(SimDuration::from_secs(10), 5, 0.9);
        for _ in 0..4 {
            p.observe(t(0), addr(1));
        }
        assert!((p.score(t(0), addr(1)) - 4.0).abs() < 1e-9);
        assert!(
            (p.score(t(10), addr(1)) - 2.0).abs() < 1e-9,
            "one half-life"
        );
        assert!(
            (p.score(t(20), addr(1)) - 1.0).abs() < 1e-9,
            "two half-lives"
        );
        // after enough decay the service drops below threshold
        assert!(p.predict(t(40), SimDuration::from_secs(60)).is_empty());
    }

    #[test]
    fn popularity_observation_accumulates_with_decay() {
        let mut p = PopularityPredictor::new(SimDuration::from_secs(10), 5, 0.0);
        p.observe(t(0), addr(1));
        p.observe(t(10), addr(1)); // old score halved, +1
        assert!((p.score(t(10), addr(1)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn oracle_sees_only_horizon() {
        let mut o = OraclePredictor::with_schedule(vec![
            (t(10), addr(1)),
            (t(20), addr(2)),
            (t(500), addr(3)),
            (t(25), addr(1)),
        ]);
        let pred = o.predict(t(5), SimDuration::from_secs(30));
        assert_eq!(pred, vec![addr(1), addr(2)]);
        let pred = o.predict(t(490), SimDuration::from_secs(30));
        assert_eq!(pred, vec![addr(3)]);
        assert!(o.predict(t(600), SimDuration::from_secs(30)).is_empty());
    }

    #[test]
    fn unknown_service_scores_zero() {
        let p = PopularityPredictor::new(SimDuration::from_secs(10), 5, 0.0);
        assert_eq!(p.score(t(0), addr(9)), 0.0);
    }
}
