//! The pluggable schedulers (paper Fig. 6).
//!
//! * The **Global Scheduler** chooses the edge *cluster*. It receives the
//!   Dispatcher's view of every cluster (a [`SchedulingContext`]: cluster
//!   views, the service's resource demand and placement requirements, and a
//!   catalog handle) and returns two results (paper §IV-B): **FAST** — the
//!   fastest location for the *current* request — and **BEST** — the best
//!   location for *future* requests. BEST is empty when it equals FAST; FAST
//!   empty means "forward toward the cloud".
//!   If FAST == BEST and no instance runs there yet, the Dispatcher performs
//!   on-demand deployment **with waiting** (the request is held). If BEST is
//!   non-empty and differs from FAST, deployment runs at BEST **without
//!   waiting** while the request goes to FAST (or the cloud).
//! * The **Local Scheduler** picks a specific instance inside a cluster —
//!   on Kubernetes this may be the default kube-scheduler or a custom one
//!   (the controller's annotation step writes its name into the manifest).
//!
//! A `Decision` is advisory: the dispatcher re-checks capacity at admission
//! time (see `AdmissionError` in [`crate::dispatcher`]) so a policy that
//! targets a full site falls through to next-best/cloud instead of
//! overcommitting it.
//!
//! The paper loads the concrete scheduler from controller configuration; here
//! the same role is played by trait objects handed to the controller, and
//! configuration-driven selection goes through `SchedulerRegistry` (in
//! [`crate::policy`]).

use std::cmp::Ordering;
use std::sync::Arc;

use cluster::{
    ClusterKind, DeploymentRequirements, ResourceAllocation, ResourceRequest, ServiceStatus,
    SiteCapacity,
};
use simcore::{SimDuration, SimTime};

use crate::catalog::{ServiceCatalog, ServiceId};

/// Index of a cluster in the controller's cluster list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub usize);

/// A CPU load fraction, clamped to `0.0..=1.0` with a total order (NaN maps
/// to 0.0 at construction, so comparisons never hit the partial-order trap
/// raw `f64` loads had).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadFraction(f64);

impl LoadFraction {
    pub const ZERO: LoadFraction = LoadFraction(0.0);

    /// Clamp `raw` into `[0, 1]`; NaN becomes 0 (an unknown load must not
    /// poison scheduler comparisons).
    pub fn new(raw: f64) -> LoadFraction {
        if raw.is_nan() {
            LoadFraction(0.0)
        } else {
            LoadFraction(raw.clamp(0.0, 1.0))
        }
    }

    pub fn value(self) -> f64 {
        self.0
    }
}

impl PartialEq for LoadFraction {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for LoadFraction {}
impl PartialOrd for LoadFraction {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LoadFraction {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// What the Dispatcher tells the Global Scheduler about one cluster
/// (paper: "the Dispatcher component … feeds the Scheduler with information
/// about the current system state").
///
/// `#[non_exhaustive]`: construct through [`ClusterView::builder`] so new
/// fields (as capacity/allocation were) don't break policy crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClusterView {
    pub id: ClusterId,
    pub kind: ClusterKind,
    /// Network latency from the requesting client's ingress switch.
    pub distance: SimDuration,
    /// State of the requested service on this cluster.
    pub status: ServiceStatus,
    /// CPU load fraction for load-aware policies.
    pub load: LoadFraction,
    /// A dispatcher state machine is mid-flight deploying this service here.
    /// Policies can use it to avoid double-deploying or to prefer a cluster
    /// that will be ready soon; the built-in paper policies ignore it (their
    /// decisions predate deployment visibility and must stay byte-identical).
    pub deploying: bool,
    /// The site's resource budget ([`SiteCapacity::UNLIMITED`] by default —
    /// the paper's implicit setting).
    pub capacity: SiteCapacity,
    /// What admission control has already booked onto the site.
    pub allocated: ResourceAllocation,
    /// Operator labels on the site (matched against a service's
    /// [`DeploymentRequirements`]).
    pub labels: Arc<[String]>,
}

impl ClusterView {
    /// Start building a view; unset fields default to idle/unlimited.
    pub fn builder(
        id: ClusterId,
        kind: ClusterKind,
        distance: SimDuration,
        status: ServiceStatus,
    ) -> ClusterViewBuilder {
        ClusterViewBuilder {
            view: ClusterView {
                id,
                kind,
                distance,
                status,
                load: LoadFraction::ZERO,
                deploying: false,
                capacity: SiteCapacity::UNLIMITED,
                allocated: ResourceAllocation::default(),
                labels: Arc::from(Vec::new()),
            },
        }
    }

    /// Would this site admit one more deployment of `demand` under
    /// `requirements`? (The same predicate the dispatcher enforces at
    /// admission time.)
    pub fn admits(&self, demand: &ResourceRequest, requirements: &DeploymentRequirements) -> bool {
        requirements.satisfied_by(&self.labels)
            && self.capacity.admits(&self.allocated, demand).is_ok()
    }

    fn has_ready_instance(&self) -> bool {
        self.status.is_ready()
    }
}

/// Fluent constructor for [`ClusterView`] (the struct is
/// `#[non_exhaustive]`).
#[derive(Debug, Clone)]
pub struct ClusterViewBuilder {
    view: ClusterView,
}

impl ClusterViewBuilder {
    /// Raw load in; clamped into a [`LoadFraction`].
    pub fn load(mut self, load: f64) -> ClusterViewBuilder {
        self.view.load = LoadFraction::new(load);
        self
    }

    pub fn deploying(mut self, deploying: bool) -> ClusterViewBuilder {
        self.view.deploying = deploying;
        self
    }

    pub fn capacity(mut self, capacity: SiteCapacity) -> ClusterViewBuilder {
        self.view.capacity = capacity;
        self
    }

    pub fn allocated(mut self, allocated: ResourceAllocation) -> ClusterViewBuilder {
        self.view.allocated = allocated;
        self
    }

    pub fn labels(mut self, labels: Arc<[String]>) -> ClusterViewBuilder {
        self.view.labels = labels;
        self
    }

    pub fn build(self) -> ClusterView {
        self.view
    }
}

/// Everything a Global Scheduler may consult for one decision. Grown behind
/// [`SchedulingContext::new`] (`#[non_exhaustive]`) so adding inputs no
/// longer breaks the `GlobalScheduler` trait.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SchedulingContext<'a> {
    /// The requested service (interned; resolve names via `catalog`).
    pub service: ServiceId,
    /// Per-cluster views, ordered by the controller's cluster list;
    /// distances are from the requesting client's ingress switch.
    pub views: &'a [ClusterView],
    /// The service's per-replica resource demand.
    pub demand: ResourceRequest,
    /// The service's placement constraints.
    pub requirements: &'a DeploymentRequirements,
    /// Catalog handle for policies that need names or other registrations.
    pub catalog: &'a ServiceCatalog,
    /// Decision instant (virtual time).
    pub now: SimTime,
}

impl<'a> SchedulingContext<'a> {
    pub fn new(
        service: ServiceId,
        views: &'a [ClusterView],
        demand: ResourceRequest,
        requirements: &'a DeploymentRequirements,
        catalog: &'a ServiceCatalog,
        now: SimTime,
    ) -> SchedulingContext<'a> {
        SchedulingContext {
            service,
            views,
            demand,
            requirements,
            catalog,
            now,
        }
    }

    /// Is `view` an eligible deployment target for this request (labels
    /// satisfied, capacity left)?
    pub fn eligible(&self, view: &ClusterView) -> bool {
        view.admits(&self.demand, self.requirements)
    }
}

/// The Global Scheduler's verdict. Construct via [`Decision::cloud`],
/// [`Decision::fast`], [`Decision::deploy_at`] or
/// [`Decision::serve_and_deploy`] — not struct literals — so the layout can
/// evolve.
#[must_use = "a scheduling decision does nothing until the dispatcher acts on it"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Cluster for the *current* request; `None` = forward toward the cloud
    /// (or, when equal to `best`, wait for the deployment there).
    pub fast: Option<ClusterId>,
    /// Cluster to deploy at for *future* requests; `None` = same as `fast`.
    pub best: Option<ClusterId>,
}

impl Decision {
    /// Forward toward the cloud; deploy nowhere.
    pub fn cloud() -> Decision {
        Decision {
            fast: None,
            best: None,
        }
    }

    /// Serve at `id` — redirecting if an instance is ready, else deploying
    /// there *with waiting* (paper Fig. 5).
    pub fn fast(id: ClusterId) -> Decision {
        Decision {
            fast: Some(id),
            best: None,
        }
    }

    /// Serve the current request from the cloud while deploying at `id`
    /// *without waiting* (paper Fig. 3 with no ready instance).
    pub fn deploy_at(id: ClusterId) -> Decision {
        Decision {
            fast: None,
            best: Some(id),
        }
    }

    /// General form: serve at `fast` (or the cloud) while deploying at
    /// `best` for the future. Normalizes `best == fast` to an empty BEST —
    /// the canonical encoding every paper policy uses.
    pub fn serve_and_deploy(fast: Option<ClusterId>, best: Option<ClusterId>) -> Decision {
        Decision {
            fast,
            best: if best == fast { None } else { best },
        }
    }

    /// Normalized accessor: where should future requests land?
    pub fn target_for_future(&self) -> Option<ClusterId> {
        self.best.or(self.fast)
    }

    /// Is this decision an on-demand deployment *without* waiting
    /// (deploy at BEST while the current request goes elsewhere)?
    pub fn is_without_waiting(&self) -> bool {
        self.best.is_some() && self.best != self.fast
    }
}

/// Picks the cluster(s) for a request.
pub trait GlobalScheduler: Send {
    fn name(&self) -> &'static str;

    /// Decide FAST and BEST for the request described by `ctx` (views,
    /// service id and demand, catalog handle).
    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision;
}

/// Picks an instance (replica) within a cluster.
pub trait LocalScheduler: Send {
    fn name(&self) -> &'static str;

    /// Choose a replica index in `[0, ready_replicas)`.
    fn pick(&mut self, service: ServiceId, ready_replicas: u32) -> u32;
}

// Already-boxed trait objects remain usable where an `impl GlobalScheduler`
// is expected (e.g. `ControllerBuilder::global` after a registry lookup
// produced a `Box<dyn GlobalScheduler>`).
impl GlobalScheduler for Box<dyn GlobalScheduler> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        (**self).decide(ctx)
    }
}

impl LocalScheduler for Box<dyn LocalScheduler> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn pick(&mut self, service: ServiceId, ready_replicas: u32) -> u32 {
        (**self).pick(service, ready_replicas)
    }
}

// ---------------------------------------------------------------------------
// Global scheduler policies
// ---------------------------------------------------------------------------

/// The paper's *with waiting* policy: always choose the nearest eligible
/// cluster for both FAST and BEST, even if nothing runs there yet — the
/// Dispatcher will deploy and hold the request (paper Fig. 5).
#[derive(Debug, Default, Clone)]
pub struct NearestWaiting;

impl GlobalScheduler for NearestWaiting {
    fn name(&self) -> &'static str {
        "nearest-waiting"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        match nearest(ctx.views, |_| true) {
            Some(id) => Decision::fast(id),
            None => Decision::cloud(),
        }
    }
}

/// The paper's *without waiting* policy (Fig. 3): FAST = nearest cluster with
/// a **ready instance** (None → the request goes to the cloud); BEST = the
/// nearest cluster overall. If they coincide, BEST is reported empty.
#[derive(Debug, Default, Clone)]
pub struct NearestReadyFirst;

impl GlobalScheduler for NearestReadyFirst {
    fn name(&self) -> &'static str {
        "nearest-ready-first"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        let fast = nearest(ctx.views, ClusterView::has_ready_instance);
        let overall = nearest(ctx.views, |_| true);
        Decision::serve_and_deploy(fast, overall)
    }
}

/// §VII's hybrid: respond fast via a **Docker** cluster, settle on
/// **Kubernetes** for the long run. FAST prefers (ready instance anywhere) >
/// (nearest Docker cluster, deploying with waiting); BEST is the nearest
/// Kubernetes cluster.
#[derive(Debug, Default, Clone)]
pub struct HybridDockerFirst;

impl GlobalScheduler for HybridDockerFirst {
    fn name(&self) -> &'static str {
        "hybrid-docker-first"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        let ready = nearest(ctx.views, ClusterView::has_ready_instance);
        let docker = nearest(ctx.views, |v| v.kind == ClusterKind::Docker);
        let k8s = nearest(ctx.views, |v| v.kind == ClusterKind::Kubernetes);
        let fast = ready.or(docker).or(k8s);
        Decision::serve_and_deploy(fast, k8s)
    }
}

/// §VIII side-by-side operation of containers and serverless: a WebAssembly
/// runtime answers the first request (its instantiation is near-instant, so
/// even *with waiting* the request barely waits), while the BEST choice is a
/// container cluster that takes over once its instance is up — keeping the
/// flexibility/compatibility containers offer for the steady state.
#[derive(Debug, Default, Clone)]
pub struct HybridWasmFirst;

impl GlobalScheduler for HybridWasmFirst {
    fn name(&self) -> &'static str {
        "hybrid-wasm-first"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        let ready = nearest(ctx.views, ClusterView::has_ready_instance);
        let wasm = nearest(ctx.views, |v| v.kind == ClusterKind::Wasm);
        let container = nearest(ctx.views, |v| {
            matches!(v.kind, ClusterKind::Docker | ClusterKind::Kubernetes)
        });
        let fast = ready.or(wasm).or(container);
        Decision::serve_and_deploy(fast, container)
    }
}

/// Load-aware ablation policy: like [`NearestWaiting`] but weighs distance by
/// the cluster's CPU load, spilling to farther clusters when the near one is
/// saturated.
#[derive(Debug, Clone)]
pub struct LeastLoaded {
    /// How strongly load inflates effective distance (0 = ignore load).
    pub load_weight: f64,
}

impl Default for LeastLoaded {
    fn default() -> Self {
        LeastLoaded { load_weight: 2.0 }
    }
}

impl GlobalScheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn decide(&mut self, ctx: &SchedulingContext<'_>) -> Decision {
        let best = ctx
            .views
            .iter()
            .min_by(|a, b| {
                let score = |v: &ClusterView| {
                    v.distance.as_secs_f64() * (1.0 + self.load_weight * v.load.value())
                };
                score(a).total_cmp(&score(b)).then(a.id.cmp(&b.id))
            })
            .map(|v| v.id);
        match best {
            Some(id) => Decision::fast(id),
            None => Decision::cloud(),
        }
    }
}

pub(crate) fn nearest(
    views: &[ClusterView],
    pred: impl Fn(&ClusterView) -> bool,
) -> Option<ClusterId> {
    views
        .iter()
        .filter(|v| pred(v))
        .min_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)))
        .map(|v| v.id)
}

// ---------------------------------------------------------------------------
// Local scheduler policies
// ---------------------------------------------------------------------------

/// Round-robin over ready replicas.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinLocal {
    counter: u64,
}

impl LocalScheduler for RoundRobinLocal {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, _service: ServiceId, ready_replicas: u32) -> u32 {
        if ready_replicas == 0 {
            return 0;
        }
        let pick = (self.counter % ready_replicas as u64) as u32;
        self.counter += 1;
        pick
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A test view: `ready` controls whether an instance is up.
    pub(crate) fn view(id: usize, kind: ClusterKind, distance_ms: u64, ready: bool) -> ClusterView {
        ClusterView::builder(
            ClusterId(id),
            kind,
            SimDuration::from_millis(distance_ms),
            ServiceStatus {
                images_cached: true,
                created: ready,
                desired_replicas: ready as u32,
                ready_replicas: ready as u32,
                endpoint: None,
            },
        )
        .build()
    }

    /// Decide with an empty catalog, no placement constraints and the
    /// default 250m/128Mi demand — the pre-capacity call shape.
    pub(crate) fn decide(s: &mut impl GlobalScheduler, views: &[ClusterView]) -> Decision {
        let catalog = ServiceCatalog::new();
        let reqs = DeploymentRequirements::none();
        let ctx = SchedulingContext::new(
            ServiceId(0),
            views,
            ResourceRequest::new(250, 128),
            &reqs,
            &catalog,
            SimTime::ZERO,
        );
        s.decide(&ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{decide, view};
    use super::*;

    #[test]
    fn load_fraction_clamps_and_orders() {
        assert_eq!(LoadFraction::new(-0.5), LoadFraction::ZERO);
        assert_eq!(LoadFraction::new(1.5), LoadFraction::new(1.0));
        assert_eq!(LoadFraction::new(f64::NAN), LoadFraction::ZERO);
        let mut loads = [
            LoadFraction::new(0.9),
            LoadFraction::new(0.1),
            LoadFraction::new(0.5),
        ];
        loads.sort();
        assert_eq!(loads[0].value(), 0.1);
        assert_eq!(loads[2].value(), 0.9);
    }

    #[test]
    fn builder_defaults_are_idle_and_unlimited() {
        let v = view(0, ClusterKind::Docker, 5, false);
        assert_eq!(v.load, LoadFraction::ZERO);
        assert!(!v.deploying);
        assert!(v.capacity.is_unlimited());
        assert_eq!(v.allocated, cluster::ResourceAllocation::default());
        assert!(v.labels.is_empty());
        assert!(v.admits(
            &ResourceRequest::new(u32::MAX - 1, u64::MAX - 1),
            &DeploymentRequirements::none()
        ));
    }

    #[test]
    fn admits_respects_capacity_and_labels() {
        let v = ClusterView::builder(
            ClusterId(0),
            ClusterKind::Docker,
            SimDuration::from_millis(1),
            ServiceStatus::absent(),
        )
        .capacity(SiteCapacity::new(1000, 1024))
        .allocated({
            let mut a = ResourceAllocation::default();
            a.add(&ResourceRequest::new(900, 512), 1);
            a
        })
        .labels(Arc::from(vec!["zone-a".to_owned()]))
        .build();
        let fits = ResourceRequest::new(50, 64);
        assert!(v.admits(&fits, &DeploymentRequirements::none()));
        assert!(!v.admits(
            &ResourceRequest::new(500, 64),
            &DeploymentRequirements::none()
        ));
        let mut gpu = DeploymentRequirements::none();
        gpu.label_match_all.push("gpu".to_owned());
        assert!(!v.admits(&fits, &gpu));
        let mut not_a = DeploymentRequirements::none();
        not_a.label_match_none.push("zone-a".to_owned());
        assert!(!v.admits(&fits, &not_a));
    }

    #[test]
    fn decision_constructors() {
        let a = ClusterId(1);
        let b = ClusterId(2);
        assert_eq!(
            Decision::cloud(),
            Decision {
                fast: None,
                best: None
            }
        );
        assert_eq!(
            Decision::fast(a),
            Decision {
                fast: Some(a),
                best: None
            }
        );
        assert_eq!(
            Decision::deploy_at(b),
            Decision {
                fast: None,
                best: Some(b)
            }
        );
        assert!(Decision::deploy_at(b).is_without_waiting());
        // serve_and_deploy normalizes best == fast to empty BEST
        assert_eq!(
            Decision::serve_and_deploy(Some(a), Some(a)),
            Decision::fast(a)
        );
        assert_eq!(
            Decision::serve_and_deploy(Some(a), Some(b)),
            Decision {
                fast: Some(a),
                best: Some(b)
            }
        );
        assert_eq!(Decision::serve_and_deploy(None, None), Decision::cloud());
    }

    #[test]
    fn nearest_waiting_picks_closest_regardless_of_state() {
        let mut s = NearestWaiting;
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Docker, 5, false),
                view(1, ClusterKind::Docker, 1, false),
                view(2, ClusterKind::Kubernetes, 10, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None);
        assert!(!d.is_without_waiting());
        assert_eq!(d.target_for_future(), Some(ClusterId(1)));
    }

    #[test]
    fn nearest_ready_first_splits_fast_and_best() {
        let mut s = NearestReadyFirst;
        // nearest (id 0) not ready; farther (id 1) ready
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Docker, 1, false),
                view(1, ClusterKind::Docker, 8, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)), "serve now from the ready one");
        assert_eq!(d.best, Some(ClusterId(0)), "deploy at the nearest");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn nearest_ready_first_collapses_when_nearest_is_ready() {
        let mut s = NearestReadyFirst;
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Docker, 1, true),
                view(1, ClusterKind::Docker, 8, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)));
        assert_eq!(d.best, None, "BEST empty when equal to FAST");
    }

    #[test]
    fn nearest_ready_first_cloud_when_nothing_ready() {
        let mut s = NearestReadyFirst;
        let d = decide(&mut s, &[view(0, ClusterKind::Docker, 1, false)]);
        assert_eq!(d.fast, None, "forward to cloud");
        assert_eq!(d.best, Some(ClusterId(0)), "still deploy for the future");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn hybrid_prefers_docker_fast_k8s_best() {
        let mut s = HybridDockerFirst;
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Docker, 2, false),
                view(1, ClusterKind::Kubernetes, 2, false),
            ],
        );
        assert_eq!(
            d.fast,
            Some(ClusterId(0)),
            "Docker answers the first request"
        );
        assert_eq!(d.best, Some(ClusterId(1)), "K8s takes over");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn hybrid_uses_ready_instance_if_one_exists() {
        let mut s = HybridDockerFirst;
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Docker, 2, false),
                view(1, ClusterKind::Kubernetes, 5, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None, "K8s is both fast and best here");
    }

    #[test]
    fn hybrid_wasm_first_prefers_wasm_fast_container_best() {
        let mut s = HybridWasmFirst;
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Wasm, 2, false),
                view(1, ClusterKind::Docker, 2, false),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)), "wasm answers the first request");
        assert_eq!(d.best, Some(ClusterId(1)), "containers take over");
        // with a ready container instance, no split
        let d = decide(
            &mut s,
            &[
                view(0, ClusterKind::Wasm, 2, false),
                view(1, ClusterKind::Docker, 2, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None);
    }

    #[test]
    fn least_loaded_spills_under_load() {
        let mut s = LeastLoaded::default();
        let mut near = view(0, ClusterKind::Docker, 1, true);
        near.load = LoadFraction::new(0.95);
        let far = view(1, ClusterKind::Docker, 2, true);
        let d = decide(&mut s, &[near.clone(), far.clone()]);
        assert_eq!(d.fast, Some(ClusterId(1)), "saturated near cluster skipped");
        // without load, nearest wins
        near.load = LoadFraction::ZERO;
        let d2 = decide(&mut s, &[near, far]);
        assert_eq!(d2.fast, Some(ClusterId(0)));
    }

    #[test]
    fn empty_views_mean_cloud() {
        assert_eq!(decide(&mut NearestWaiting, &[]), Decision::cloud());
        assert_eq!(decide(&mut NearestReadyFirst, &[]), Decision::cloud());
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobinLocal::default();
        let picks: Vec<u32> = (0..6).map(|_| rr.pick(ServiceId(0), 3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(rr.pick(ServiceId(0), 0), 0, "no replicas → degenerate 0");
    }

    #[test]
    fn tie_break_is_lowest_id() {
        let mut s = NearestWaiting;
        let d = decide(
            &mut s,
            &[
                view(1, ClusterKind::Docker, 5, false),
                view(0, ClusterKind::Docker, 5, false),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)));
    }
}
