//! The pluggable schedulers (paper Fig. 6).
//!
//! * The **Global Scheduler** chooses the edge *cluster*. It receives the
//!   Dispatcher's view of every cluster and returns two results (paper
//!   §IV-B): **FAST** — the fastest location for the *current* request — and
//!   **BEST** — the best location for *future* requests. BEST is empty when
//!   it equals FAST; FAST empty means "forward toward the cloud".
//!   If FAST == BEST and no instance runs there yet, the Dispatcher performs
//!   on-demand deployment **with waiting** (the request is held). If BEST is
//!   non-empty and differs from FAST, deployment runs at BEST **without
//!   waiting** while the request goes to FAST (or the cloud).
//! * The **Local Scheduler** picks a specific instance inside a cluster —
//!   on Kubernetes this may be the default kube-scheduler or a custom one
//!   (the controller's annotation step writes its name into the manifest).
//!
//! The paper loads the concrete scheduler from controller configuration; here
//! the same role is played by trait objects handed to the controller.

use cluster::{ClusterKind, ServiceStatus};
use simcore::SimDuration;

use crate::catalog::ServiceId;

/// Index of a cluster in the controller's cluster list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub usize);

/// What the Dispatcher tells the Global Scheduler about one cluster
/// (paper: "the Dispatcher component … feeds the Scheduler with information
/// about the current system state").
#[derive(Debug, Clone)]
pub struct ClusterView {
    pub id: ClusterId,
    pub kind: ClusterKind,
    /// Network latency from the requesting client's ingress switch.
    pub distance: SimDuration,
    /// State of the requested service on this cluster.
    pub status: ServiceStatus,
    /// CPU load fraction (0.0–1.0) for load-aware policies.
    pub load: f64,
    /// A dispatcher state machine is mid-flight deploying this service here.
    /// Policies can use it to avoid double-deploying or to prefer a cluster
    /// that will be ready soon; the built-in paper policies ignore it (their
    /// decisions predate deployment visibility and must stay byte-identical).
    pub deploying: bool,
}

impl ClusterView {
    fn has_ready_instance(&self) -> bool {
        self.status.is_ready()
    }
}

/// The Global Scheduler's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Cluster for the *current* request; `None` = forward toward the cloud
    /// (or, when equal to `best`, wait for the deployment there).
    pub fast: Option<ClusterId>,
    /// Cluster to deploy at for *future* requests; `None` = same as `fast`.
    pub best: Option<ClusterId>,
}

impl Decision {
    /// Normalized accessor: where should future requests land?
    pub fn target_for_future(&self) -> Option<ClusterId> {
        self.best.or(self.fast)
    }

    /// Is this decision an on-demand deployment *without* waiting
    /// (deploy at BEST while the current request goes elsewhere)?
    pub fn is_without_waiting(&self) -> bool {
        self.best.is_some() && self.best != self.fast
    }
}

/// Picks the cluster(s) for a request.
pub trait GlobalScheduler: Send {
    fn name(&self) -> &'static str;

    /// Decide FAST and BEST for a request to `service` (an interned id —
    /// resolve via the catalog if a policy needs the name), given the system
    /// state. `views` is ordered by the controller's cluster list; distances
    /// are from the requesting client's switch.
    fn decide(&mut self, service: ServiceId, views: &[ClusterView]) -> Decision;
}

/// Picks an instance (replica) within a cluster.
pub trait LocalScheduler: Send {
    fn name(&self) -> &'static str;

    /// Choose a replica index in `[0, ready_replicas)`.
    fn pick(&mut self, service: ServiceId, ready_replicas: u32) -> u32;
}

// Already-boxed trait objects remain usable where an `impl GlobalScheduler`
// is expected (e.g. `ControllerBuilder::global` after a config-driven match
// produced a `Box<dyn GlobalScheduler>`).
impl GlobalScheduler for Box<dyn GlobalScheduler> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&mut self, service: ServiceId, views: &[ClusterView]) -> Decision {
        (**self).decide(service, views)
    }
}

impl LocalScheduler for Box<dyn LocalScheduler> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn pick(&mut self, service: ServiceId, ready_replicas: u32) -> u32 {
        (**self).pick(service, ready_replicas)
    }
}

// ---------------------------------------------------------------------------
// Global scheduler policies
// ---------------------------------------------------------------------------

/// The paper's *with waiting* policy: always choose the nearest eligible
/// cluster for both FAST and BEST, even if nothing runs there yet — the
/// Dispatcher will deploy and hold the request (paper Fig. 5).
#[derive(Debug, Default, Clone)]
pub struct NearestWaiting;

impl GlobalScheduler for NearestWaiting {
    fn name(&self) -> &'static str {
        "nearest-waiting"
    }

    fn decide(&mut self, _service: ServiceId, views: &[ClusterView]) -> Decision {
        let best = nearest(views, |_| true);
        Decision {
            fast: best,
            best: None,
        }
    }
}

/// The paper's *without waiting* policy (Fig. 3): FAST = nearest cluster with
/// a **ready instance** (None → the request goes to the cloud); BEST = the
/// nearest cluster overall. If they coincide, BEST is reported empty.
#[derive(Debug, Default, Clone)]
pub struct NearestReadyFirst;

impl GlobalScheduler for NearestReadyFirst {
    fn name(&self) -> &'static str {
        "nearest-ready-first"
    }

    fn decide(&mut self, _service: ServiceId, views: &[ClusterView]) -> Decision {
        let fast = nearest(views, ClusterView::has_ready_instance);
        let overall = nearest(views, |_| true);
        let best = if overall == fast { None } else { overall };
        Decision { fast, best }
    }
}

/// §VII's hybrid: respond fast via a **Docker** cluster, settle on
/// **Kubernetes** for the long run. FAST prefers (ready instance anywhere) >
/// (nearest Docker cluster, deploying with waiting); BEST is the nearest
/// Kubernetes cluster.
#[derive(Debug, Default, Clone)]
pub struct HybridDockerFirst;

impl GlobalScheduler for HybridDockerFirst {
    fn name(&self) -> &'static str {
        "hybrid-docker-first"
    }

    fn decide(&mut self, _service: ServiceId, views: &[ClusterView]) -> Decision {
        let ready = nearest(views, ClusterView::has_ready_instance);
        let docker = nearest(views, |v| v.kind == ClusterKind::Docker);
        let k8s = nearest(views, |v| v.kind == ClusterKind::Kubernetes);
        let fast = ready.or(docker).or(k8s);
        let best = if k8s == fast { None } else { k8s };
        Decision { fast, best }
    }
}

/// §VIII side-by-side operation of containers and serverless: a WebAssembly
/// runtime answers the first request (its instantiation is near-instant, so
/// even *with waiting* the request barely waits), while the BEST choice is a
/// container cluster that takes over once its instance is up — keeping the
/// flexibility/compatibility containers offer for the steady state.
#[derive(Debug, Default, Clone)]
pub struct HybridWasmFirst;

impl GlobalScheduler for HybridWasmFirst {
    fn name(&self) -> &'static str {
        "hybrid-wasm-first"
    }

    fn decide(&mut self, _service: ServiceId, views: &[ClusterView]) -> Decision {
        let ready = nearest(views, ClusterView::has_ready_instance);
        let wasm = nearest(views, |v| v.kind == ClusterKind::Wasm);
        let container = nearest(views, |v| {
            matches!(v.kind, ClusterKind::Docker | ClusterKind::Kubernetes)
        });
        let fast = ready.or(wasm).or(container);
        let best = if container == fast { None } else { container };
        Decision { fast, best }
    }
}

/// Load-aware ablation policy: like [`NearestWaiting`] but weighs distance by
/// the cluster's CPU load, spilling to farther clusters when the near one is
/// saturated.
#[derive(Debug, Clone)]
pub struct LeastLoaded {
    /// How strongly load inflates effective distance (0 = ignore load).
    pub load_weight: f64,
}

impl Default for LeastLoaded {
    fn default() -> Self {
        LeastLoaded { load_weight: 2.0 }
    }
}

impl GlobalScheduler for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn decide(&mut self, _service: ServiceId, views: &[ClusterView]) -> Decision {
        let best = views
            .iter()
            .min_by(|a, b| {
                let score =
                    |v: &ClusterView| v.distance.as_secs_f64() * (1.0 + self.load_weight * v.load);
                score(a).total_cmp(&score(b)).then(a.id.cmp(&b.id))
            })
            .map(|v| v.id);
        Decision {
            fast: best,
            best: None,
        }
    }
}

fn nearest(views: &[ClusterView], pred: impl Fn(&ClusterView) -> bool) -> Option<ClusterId> {
    views
        .iter()
        .filter(|v| pred(v))
        .min_by(|a, b| a.distance.cmp(&b.distance).then(a.id.cmp(&b.id)))
        .map(|v| v.id)
}

// ---------------------------------------------------------------------------
// Local scheduler policies
// ---------------------------------------------------------------------------

/// Round-robin over ready replicas.
#[derive(Debug, Default, Clone)]
pub struct RoundRobinLocal {
    counter: u64,
}

impl LocalScheduler for RoundRobinLocal {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, _service: ServiceId, ready_replicas: u32) -> u32 {
        if ready_replicas == 0 {
            return 0;
        }
        let pick = (self.counter % ready_replicas as u64) as u32;
        self.counter += 1;
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: usize, kind: ClusterKind, distance_ms: u64, ready: bool) -> ClusterView {
        ClusterView {
            id: ClusterId(id),
            kind,
            distance: SimDuration::from_millis(distance_ms),
            status: ServiceStatus {
                images_cached: true,
                created: ready,
                desired_replicas: ready as u32,
                ready_replicas: ready as u32,
                endpoint: None,
            },
            load: 0.0,
            deploying: false,
        }
    }

    #[test]
    fn nearest_waiting_picks_closest_regardless_of_state() {
        let mut s = NearestWaiting;
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Docker, 5, false),
                view(1, ClusterKind::Docker, 1, false),
                view(2, ClusterKind::Kubernetes, 10, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None);
        assert!(!d.is_without_waiting());
        assert_eq!(d.target_for_future(), Some(ClusterId(1)));
    }

    #[test]
    fn nearest_ready_first_splits_fast_and_best() {
        let mut s = NearestReadyFirst;
        // nearest (id 0) not ready; farther (id 1) ready
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Docker, 1, false),
                view(1, ClusterKind::Docker, 8, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)), "serve now from the ready one");
        assert_eq!(d.best, Some(ClusterId(0)), "deploy at the nearest");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn nearest_ready_first_collapses_when_nearest_is_ready() {
        let mut s = NearestReadyFirst;
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Docker, 1, true),
                view(1, ClusterKind::Docker, 8, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)));
        assert_eq!(d.best, None, "BEST empty when equal to FAST");
    }

    #[test]
    fn nearest_ready_first_cloud_when_nothing_ready() {
        let mut s = NearestReadyFirst;
        let d = s.decide(ServiceId(0), &[view(0, ClusterKind::Docker, 1, false)]);
        assert_eq!(d.fast, None, "forward to cloud");
        assert_eq!(d.best, Some(ClusterId(0)), "still deploy for the future");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn hybrid_prefers_docker_fast_k8s_best() {
        let mut s = HybridDockerFirst;
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Docker, 2, false),
                view(1, ClusterKind::Kubernetes, 2, false),
            ],
        );
        assert_eq!(
            d.fast,
            Some(ClusterId(0)),
            "Docker answers the first request"
        );
        assert_eq!(d.best, Some(ClusterId(1)), "K8s takes over");
        assert!(d.is_without_waiting());
    }

    #[test]
    fn hybrid_uses_ready_instance_if_one_exists() {
        let mut s = HybridDockerFirst;
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Docker, 2, false),
                view(1, ClusterKind::Kubernetes, 5, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None, "K8s is both fast and best here");
    }

    #[test]
    fn hybrid_wasm_first_prefers_wasm_fast_container_best() {
        let mut s = HybridWasmFirst;
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Wasm, 2, false),
                view(1, ClusterKind::Docker, 2, false),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)), "wasm answers the first request");
        assert_eq!(d.best, Some(ClusterId(1)), "containers take over");
        // with a ready container instance, no split
        let d = s.decide(
            ServiceId(0),
            &[
                view(0, ClusterKind::Wasm, 2, false),
                view(1, ClusterKind::Docker, 2, true),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(1)));
        assert_eq!(d.best, None);
    }

    #[test]
    fn least_loaded_spills_under_load() {
        let mut s = LeastLoaded::default();
        let mut near = view(0, ClusterKind::Docker, 1, true);
        near.load = 0.95;
        let far = view(1, ClusterKind::Docker, 2, true);
        let d = s.decide(ServiceId(0), &[near.clone(), far.clone()]);
        assert_eq!(d.fast, Some(ClusterId(1)), "saturated near cluster skipped");
        // without load, nearest wins
        near.load = 0.0;
        let d2 = s.decide(ServiceId(0), &[near, far]);
        assert_eq!(d2.fast, Some(ClusterId(0)));
    }

    #[test]
    fn empty_views_mean_cloud() {
        assert_eq!(
            NearestWaiting.decide(ServiceId(0), &[]),
            Decision {
                fast: None,
                best: None
            }
        );
        assert_eq!(
            NearestReadyFirst.decide(ServiceId(0), &[]),
            Decision {
                fast: None,
                best: None
            }
        );
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobinLocal::default();
        let picks: Vec<u32> = (0..6).map(|_| rr.pick(ServiceId(0), 3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(rr.pick(ServiceId(0), 0), 0, "no replicas → degenerate 0");
    }

    #[test]
    fn tie_break_is_lowest_id() {
        let mut s = NearestWaiting;
        let d = s.decide(
            ServiceId(0),
            &[
                view(1, ClusterKind::Docker, 5, false),
                view(0, ClusterKind::Docker, 5, false),
            ],
        );
        assert_eq!(d.fast, Some(ClusterId(0)));
    }
}
